//! A small hand-rolled Rust lexer: enough of the language to answer the
//! questions the rules ask — "what identifier is this, on what line, at what
//! brace depth, inside which function, inside a `#[cfg(test)]` region or not" —
//! without pulling in syn/proc-macro2 (the workspace builds from std alone).
//!
//! The lexer strips comments from the token stream but keeps two per-line maps
//! derived from them: `// SAFETY:` justifications (consumed by the unsafe
//! audit) and `// pd-analysis: allow(<rule>) -- <reason>` escape hatches
//! (consumed by every rule). String/char/raw-string/lifetime literals are
//! tokenized as opaque units so their contents can never be mistaken for code.

use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Ident,
    Int,
    Float,
    Str,
    Char,
    Lifetime,
    Punct,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
    /// Brace depth *before* this token is applied (so `{` carries the depth of
    /// the block it opens minus one, matching how humans point at code).
    pub depth: u32,
    /// True when the token sits inside a `#[test]` fn or `#[cfg(test)]` item.
    pub in_test: bool,
    /// Index into [`SourceFile::fns`] of the innermost enclosing `fn`, if any.
    pub func: Option<usize>,
}

/// One lexed file plus the comment-derived side tables the rules consume.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes, e.g. `crates/common/src/wire.rs`.
    pub rel_path: String,
    pub tokens: Vec<Token>,
    /// Names of `fn` items in source order; `Token::func` indexes into this.
    pub fns: Vec<String>,
    /// line -> rules allowed on that line and the next.
    pub allows: HashMap<u32, Vec<String>>,
    /// Lines carrying a `pd-analysis:` directive that failed to parse.
    pub malformed_allows: Vec<u32>,
    /// Lines whose comment text contains `SAFETY:`.
    pub safety_lines: HashSet<u32>,
    /// Every line that carries (part of) a comment — lets rules walk a
    /// contiguous comment block upward from a code line.
    pub comment_lines: HashSet<u32>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, source: &str) -> SourceFile {
        let mut lx = Lexer::new(source);
        lx.run();
        let mut file = SourceFile {
            rel_path: rel_path.to_string(),
            tokens: lx.tokens,
            fns: Vec::new(),
            allows: lx.allows,
            malformed_allows: lx.malformed_allows,
            safety_lines: lx.safety_lines,
            comment_lines: lx.comment_lines,
        };
        annotate(&mut file);
        file
    }

    /// True when `rule` is allowed at `line` (the directive covers its own
    /// line — trailing comments — and the line directly below it).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        let hit = |l: u32| self.allows.get(&l).is_some_and(|rules| rules.iter().any(|r| r == rule));
        hit(line) || (line > 0 && hit(line - 1))
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    allows: HashMap<u32, Vec<String>>,
    malformed_allows: Vec<u32>,
    safety_lines: HashSet<u32>,
    comment_lines: HashSet<u32>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            allows: HashMap::new(),
            malformed_allows: Vec::new(),
            safety_lines: HashSet::new(),
            comment_lines: HashSet::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn push(&mut self, kind: Kind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line, depth: 0, in_test: false, func: None });
    }

    fn run(&mut self) {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string_literal(),
                b'r' if self.peek(1) == b'"' || self.peek(1) == b'#' => {
                    if !self.try_raw_string(0) {
                        self.ident();
                    }
                }
                b'b' if self.peek(1) == b'"' => self.string_literal_prefixed(1),
                b'b' if self.peek(1) == b'\'' => self.char_literal_prefixed(1),
                b'b' if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') => {
                    if !self.try_raw_string(1) {
                        self.ident();
                    }
                }
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(),
                _ => {
                    let line = self.line;
                    let c = self.bump();
                    self.push(Kind::Punct, (c as char).to_string(), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        self.record_comment(text, line);
    }

    fn block_comment(&mut self) {
        // Nested /* */ — record each line's text for the SAFETY map.
        let mut depth = 0usize;
        let mut line = self.line;
        let mut line_start = self.pos;
        loop {
            if self.pos >= self.src.len() {
                break;
            }
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
                continue;
            }
            if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                continue;
            }
            if self.peek(0) == b'\n' {
                let text = std::str::from_utf8(&self.src[line_start..self.pos]).unwrap_or("");
                self.record_comment(text, line);
                self.bump();
                line = self.line;
                line_start = self.pos;
                continue;
            }
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[line_start..self.pos]).unwrap_or("");
        self.record_comment(text, line);
    }

    fn record_comment(&mut self, text: &str, line: u32) {
        self.comment_lines.insert(line);
        if text.contains("SAFETY:") {
            self.safety_lines.insert(line);
        }
        if let Some(rest) = text.split("pd-analysis:").nth(1) {
            // Prose that merely mentions the marker isn't a directive attempt.
            if rest.trim_start().starts_with("allow") {
                match parse_allow(rest) {
                    Some(rules) => self.allows.entry(line).or_default().extend(rules),
                    None => self.malformed_allows.push(line),
                }
            }
        }
    }

    fn string_literal(&mut self) {
        self.string_literal_prefixed(0);
    }

    fn string_literal_prefixed(&mut self, prefix: usize) {
        let line = self.line;
        for _ in 0..prefix {
            self.bump();
        }
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        self.push(Kind::Str, String::new(), line);
    }

    fn char_literal_prefixed(&mut self, prefix: usize) {
        for _ in 0..prefix {
            self.bump();
        }
        self.char_or_lifetime();
    }

    /// Raw string starting at `self.pos + prefix` (`r"…"`, `r#"…"#`, `br"…"`).
    /// Returns false (consuming nothing) if this isn't actually a raw string —
    /// e.g. the ident `r` followed by `#` in some exotic position.
    fn try_raw_string(&mut self, prefix: usize) -> bool {
        let mut probe = self.pos + prefix + 1; // past the `r`
        let mut hashes = 0usize;
        while self.src.get(probe) == Some(&b'#') {
            hashes += 1;
            probe += 1;
        }
        if self.src.get(probe) != Some(&b'"') {
            return false;
        }
        let line = self.line;
        while self.pos <= probe {
            self.bump(); // consume prefix, r, hashes, opening quote
        }
        'scan: while self.pos < self.src.len() {
            if self.bump() == b'"' {
                for i in 0..hashes {
                    if self.peek(i) != b'#' {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Kind::Str, String::new(), line);
        true
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the opening '
        if self.peek(0) == b'\\' {
            // escaped char literal: '\n', '\u{…}', '\''
            self.bump();
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump();
            self.push(Kind::Char, String::new(), line);
            return;
        }
        let start = self.pos;
        while is_ident_byte(self.peek(0)) {
            self.bump();
        }
        if self.pos > start && self.peek(0) != b'\'' {
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
            self.push(Kind::Lifetime, text.to_string(), line);
            return;
        }
        // 'x' or a non-ascii single char
        if self.pos == start && self.peek(0) != b'\'' {
            self.bump();
        }
        while self.pos < self.src.len() && self.peek(0) != b'\'' {
            self.bump();
        }
        self.bump();
        self.push(Kind::Char, String::new(), line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let mut float = false;
        let radix_prefixed = self.peek(0) == b'0'
            && (self.peek(1) == b'x' || self.peek(1) == b'b' || self.peek(1) == b'o');
        if radix_prefixed {
            self.bump();
            self.bump();
            while matches!(self.peek(0), b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_') {
                self.bump();
            }
        } else {
            while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                self.bump();
            }
        }
        if !radix_prefixed && self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            float = true;
            self.bump();
            while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                self.bump();
            }
        }
        if matches!(self.peek(0), b'e' | b'E')
            && (self.peek(1).is_ascii_digit() || matches!(self.peek(1), b'+' | b'-'))
        {
            float = true;
            self.bump();
            self.bump();
            while self.peek(0).is_ascii_digit() {
                self.bump();
            }
        }
        // Type suffix: f32/f64 force float; u8/i64/usize… stay int.
        let sfx_start = self.pos;
        while is_ident_byte(self.peek(0)) {
            self.bump();
        }
        let suffix = std::str::from_utf8(&self.src[sfx_start..self.pos]).unwrap_or("");
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        self.push(if float { Kind::Float } else { Kind::Int }, text.to_string(), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while is_ident_byte(self.peek(0)) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        self.push(Kind::Ident, text.to_string(), line);
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parse the tail of a `pd-analysis: allow(rule[, rule]) -- reason` directive.
/// Returns None when malformed (wrong shape, or no non-empty reason).
fn parse_allow(rest: &str) -> Option<Vec<String>> {
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> =
        rest[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return None;
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    Some(rules)
}

/// Second pass: brace depth, `#[cfg(test)]`/`#[test]` regions, enclosing fn.
fn annotate(file: &mut SourceFile) {
    let n = file.tokens.len();
    let mut depth: u32 = 0;
    // Stack of brace depths at which a test region opened.
    let mut test_stack: Vec<u32> = Vec::new();
    // (fn index, depth at which its body opened)
    let mut fn_stack: Vec<(usize, u32)> = Vec::new();
    let mut pending_test_attr = false;
    let mut pending_fn: Option<String> = None;
    let mut paren_depth: i32 = 0;

    let mut i = 0;
    while i < n {
        let (kind, text) = (file.tokens[i].kind, file.tokens[i].text.clone());
        file.tokens[i].depth = depth;
        file.tokens[i].in_test = !test_stack.is_empty();
        file.tokens[i].func = fn_stack.last().map(|&(idx, _)| idx);

        match kind {
            Kind::Punct => match text.as_str() {
                "#" => {
                    // Attribute: scan the balanced [ … ]; an inner attr (#![…])
                    // never marks a following item.
                    let inner = matches!(file.tokens.get(i + 1), Some(t) if t.text == "!");
                    let open = if inner { i + 2 } else { i + 1 };
                    if matches!(file.tokens.get(open), Some(t) if t.text == "[") {
                        let mut bal = 0i32;
                        let mut j = open;
                        let mut saw_test = false;
                        let mut saw_not = false;
                        while j < n {
                            match file.tokens[j].text.as_str() {
                                "[" => bal += 1,
                                "]" => {
                                    bal -= 1;
                                    if bal == 0 {
                                        break;
                                    }
                                }
                                "test" => saw_test = true,
                                "not" => saw_not = true,
                                _ => {}
                            }
                            file.tokens[j].depth = depth;
                            file.tokens[j].in_test = !test_stack.is_empty();
                            file.tokens[j].func = fn_stack.last().map(|&(idx, _)| idx);
                            j += 1;
                        }
                        if j < n {
                            file.tokens[j].depth = depth;
                            file.tokens[j].in_test = !test_stack.is_empty();
                            file.tokens[j].func = fn_stack.last().map(|&(idx, _)| idx);
                        }
                        if !inner && saw_test && !saw_not {
                            pending_test_attr = true;
                        }
                        i = j + 1;
                        continue;
                    }
                }
                "(" => paren_depth += 1,
                ")" => paren_depth -= 1,
                "{" => {
                    if pending_test_attr && paren_depth == 0 {
                        // The marked item's body: everything inside is test code.
                        test_stack.push(depth);
                        pending_test_attr = false;
                        file.tokens[i].in_test = true;
                    }
                    if paren_depth == 0 {
                        if let Some(name) = pending_fn.take() {
                            file.fns.push(name);
                            fn_stack.push((file.fns.len() - 1, depth));
                            file.tokens[i].func = Some(file.fns.len() - 1);
                        }
                    }
                    depth += 1;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    if fn_stack.last().map(|&(_, d)| d) == Some(depth) {
                        fn_stack.pop();
                    }
                }
                // `#[cfg(test)] use …;` — an item with no body clears the mark.
                ";" if pending_test_attr && paren_depth == 0 => pending_test_attr = false,
                _ => {}
            },
            Kind::Ident if text == "fn" => {
                if let Some(next) = file.tokens.get(i + 1) {
                    if next.kind == Kind::Ident {
                        pending_fn = Some(next.text.clone());
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_carry_lines_and_depth() {
        let f = SourceFile::parse("x.rs", "fn a() {\n    let x = 1;\n}\n");
        let x = f.tokens.iter().find(|t| t.text == "x").unwrap();
        assert_eq!(x.line, 2);
        assert_eq!(x.depth, 1);
        assert_eq!(f.fns, vec!["a"]);
        assert_eq!(x.func, Some(0));
    }

    #[test]
    fn strings_and_comments_never_produce_idents() {
        let f = SourceFile::parse(
            "x.rs",
            "fn a() { let s = \"unwrap() panic!\"; /* unwrap */ // unwrap\n }",
        );
        assert!(!f.tokens.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let f = SourceFile::parse("x.rs", "fn a<'a>(x: &'a str) { let r = r#\"un\"wrap\"#; }");
        assert!(f.tokens.iter().any(|t| t.kind == Kind::Lifetime && t.text == "a"));
        assert!(!f.tokens.iter().any(|t| t.text == "wrap"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        let unwraps: Vec<bool> =
            f.tokens.iter().filter(|t| t.text == "unwrap").map(|t| t.in_test).collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn allow_directives_parse_and_cover_next_line() {
        let src = "// pd-analysis: allow(lock-order) -- serialized on purpose\nfn a() {}\n// pd-analysis: allow(bad\nfn b() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allowed("lock-order", 1));
        assert!(f.allowed("lock-order", 2));
        assert!(!f.allowed("lock-order", 3));
        assert_eq!(f.malformed_allows, vec![3]);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let f = SourceFile::parse("x.rs", "// pd-analysis: allow(decode-panic)\nfn a() {}\n");
        assert!(!f.allowed("decode-panic", 1));
        assert_eq!(f.malformed_allows, vec![1]);
    }

    #[test]
    fn safety_lines_recorded() {
        let f = SourceFile::parse("x.rs", "// SAFETY: bounded by caller\nunsafe { }\n");
        assert!(f.safety_lines.contains(&1));
    }

    #[test]
    fn number_suffixes() {
        let f = SourceFile::parse("x.rs", "fn a() { let x = 1f64; let y = 2u8; let z = 0.5; }");
        let kinds: Vec<Kind> = f
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, Kind::Int | Kind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds, vec![Kind::Float, Kind::Int, Kind::Float]);
    }
}
