//! `pd-analysis` — the workspace's static-analysis pass.
//!
//! Five rule classes turn the repo's prose correctness contracts into
//! machine-checked invariants (see ARCHITECTURE.md "Enforced invariants"):
//!
//! | rule              | contract it encodes                                      |
//! |-------------------|----------------------------------------------------------|
//! | `decode-panic`    | hostile bytes never panic a decode surface (PR 3/4/7/9)  |
//! | `wire-drift`      | codec changes require a `FRAME_VERSION` bump (PR 4–9)    |
//! | `lock-order`      | no lock cycles, no locks held across rpc calls (PR 2/6)  |
//! | `float-exactness` | float folds route through `FloatSum`/`DenseFloat` (PR 2/8)|
//! | `unsafe-audit`    | every `unsafe` carries a `// SAFETY:` justification      |
//!
//! Escape hatch, per site: `// pd-analysis: allow(<rule>) -- <reason>` on the
//! offending line or the line above. The reason is mandatory.
//!
//! Run it: `cargo run -p pd-analysis` (add `-- --bless` to regenerate the
//! wire fingerprint after a deliberate, version-bumped codec change). The
//! same pass runs under plain `cargo test` via `tests/static_analysis.rs`.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use lexer::SourceFile;
use rules::{floats, locks, panics, unsafety, wire_drift};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}:{}: {}", self.rule, self.file, self.line, self.message)
    }
}

/// Workspace-relative path of the committed wire fingerprint.
pub const BASELINE_REL_PATH: &str = "crates/analysis/baselines/wire_fingerprint.txt";

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// All production `.rs` sources: `src/` of the root package and of every
/// crate under `crates/` (tests/, benches/, examples/ are out of scope — the
/// rules guard shipped code).
fn collect_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();
    for c in &crate_dirs {
        roots.push(c.join("src"));
    }
    for src in roots {
        collect_rs(&src, root, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // a crate without src/ (none today) is not an error
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, root, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            let text =
                std::fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
            out.push((rel, text));
        }
    }
    Ok(())
}

/// Which crate a workspace-relative source path belongs to (for the
/// unsafe-free/forbid accounting).
fn crate_of(rel_path: &str) -> Option<String> {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        return rest.split('/').next().map(|c| format!("pd-{c}"));
    }
    if rel_path.starts_with("src/") {
        return Some("powerdrill".to_string());
    }
    None
}

/// Compute the live wire fingerprint from the codec files on disk.
pub fn compute_fingerprint(root: &Path) -> Result<wire_drift::Fingerprint, String> {
    let mut parsed = Vec::new();
    for rel in wire_drift::CODEC_FILES {
        let path = root.join(rel);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        parsed.push(SourceFile::parse(rel, &text));
    }
    let refs: Vec<&SourceFile> = parsed.iter().collect();
    Ok(wire_drift::fingerprint(&refs))
}

/// Load the committed golden fingerprint.
pub fn load_baseline(root: &Path) -> Result<wire_drift::Fingerprint, String> {
    let path = root.join(BASELINE_REL_PATH);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Ok(wire_drift::Fingerprint::parse(&text))
}

/// Regenerate the committed golden from the live tree.
pub fn bless(root: &Path) -> Result<(), String> {
    let fp = compute_fingerprint(root)?;
    let path = root.join(BASELINE_REL_PATH);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    std::fs::write(&path, fp.render()).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Run every rule over the workspace and return all surviving findings.
pub fn analyze_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let sources = collect_sources(root)?;
    let mut findings = Vec::new();
    let mut edges = Vec::new();
    // crate name -> (lib file index, any unsafe seen)
    let mut crates: BTreeMap<String, (Option<usize>, bool)> = BTreeMap::new();
    let mut parsed = Vec::with_capacity(sources.len());

    for (rel, text) in &sources {
        let file = SourceFile::parse(rel, text);
        for &line in &file.malformed_allows {
            findings.push(Finding {
                rule: "allow-syntax",
                file: rel.clone(),
                line,
                message: "malformed pd-analysis directive — expected \
                          `// pd-analysis: allow(<rule>) -- <reason>` (the reason is mandatory)"
                    .to_string(),
            });
        }
        findings.extend(panics::check(&file));
        findings.extend(floats::check(&file));
        findings.extend(unsafety::check(&file));
        let (lock_findings, lock_edges) = locks::check(&file);
        findings.extend(lock_findings);
        edges.extend(lock_edges);

        if let Some(name) = crate_of(rel) {
            let entry = crates.entry(name).or_insert((None, false));
            if rel.ends_with("/lib.rs") && rel.matches('/').count() <= 3 {
                entry.0 = Some(parsed.len());
            }
            entry.1 |= unsafety::file_has_unsafe(&file);
        }
        parsed.push(file);
    }

    findings.extend(locks::check_cycles(&edges));

    for (name, (lib_idx, has_unsafe)) in &crates {
        if let Some(idx) = lib_idx {
            let lib = &parsed[*idx];
            if let Some(f) = unsafety::check_crate_forbid(name, &lib.rel_path, lib, *has_unsafe) {
                findings.push(f);
            }
        }
    }

    // Wire drift: live fingerprint vs the committed golden.
    let live = compute_fingerprint(root)?;
    match load_baseline(root) {
        Ok(golden) => findings.extend(wire_drift::check(&live, &golden)),
        Err(e) => findings.push(Finding {
            rule: wire_drift::RULE,
            file: BASELINE_REL_PATH.to_string(),
            line: 0,
            message: format!(
                "no committed wire fingerprint ({e}) — run `cargo run -p pd-analysis -- --bless` \
                 and commit the golden"
            ),
        }),
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}
