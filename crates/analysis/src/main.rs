//! CLI entry point: `cargo run -p pd-analysis [-- --bless] [-- --root <dir>]`.
//! Exits 1 when any rule has findings, printing one line per finding — the CI
//! `analysis` job and local pre-push runs share this path.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut bless = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bless" => bless = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "pd-analysis: static-analysis pass over the workspace\n\n\
                     USAGE: pd-analysis [--bless] [--root <dir>]\n\n\
                     --bless   regenerate {} from the live tree\n\
                     --root    workspace root (default: walk up from cwd)",
                    pd_analysis::BASELINE_REL_PATH
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pd-analysis: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let cwd = std::env::current_dir().expect("cwd");
    let Some(root) = root.or_else(|| pd_analysis::find_workspace_root(&cwd)) else {
        eprintln!("pd-analysis: no workspace root found above {}", cwd.display());
        return ExitCode::FAILURE;
    };

    if bless {
        return match pd_analysis::bless(&root) {
            Ok(()) => {
                println!("blessed {}", pd_analysis::BASELINE_REL_PATH);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pd-analysis: bless failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match pd_analysis::analyze_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("pd-analysis: clean (5 rule classes, 0 findings)");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("pd-analysis: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("pd-analysis: {e}");
            ExitCode::FAILURE
        }
    }
}
