//! Rule `float-exactness`: kernel/fold modules must not accumulate `f64`
//! with raw `+` / `+=`.
//!
//! The engine's bit-identical-results guarantee (PR 2's Kulisch `FloatSum`,
//! PR 8's `DenseFloat` double-double) holds only because every float
//! aggregation routes through those two types — raw `+` reassociates under
//! sharding/threading and breaks `assert_eq!` on floats across topologies.
//! This rule tracks which identifiers are provably `f64` (typed params,
//! float-literal/`as f64` lets, propagation through `let`) and flags any
//! `+`/`+=` whose operand is one of them, or a float literal.

use crate::lexer::{Kind, SourceFile};
use crate::Finding;
use std::collections::{HashMap, HashSet};

pub const RULE: &str = "float-exactness";

/// The kernel/fold modules where float math is only legal via
/// `FloatSum`/`DenseFloat`. `common/fsum.rs` is the primitive itself and
/// stays out of scope.
pub const TARGET_FILES: &[&str] = &["crates/core/src/kernels.rs", "crates/core/src/exec.rs"];

pub fn check(file: &SourceFile) -> Vec<Finding> {
    if !TARGET_FILES.contains(&file.rel_path.as_str()) {
        return Vec::new();
    }
    check_file(file)
}

/// Exposed for fixtures: run the rule on any lexed file.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let sig_floats = signature_floats(file);
    let toks = &file.tokens;
    let mut findings = Vec::new();
    // Per-fn known-f64 identifiers, seeded from the signature scan.
    let mut known: HashMap<usize, HashSet<String>> = HashMap::new();

    let is_known = |known: &HashMap<usize, HashSet<String>>, func: Option<usize>, name: &str| {
        func.is_some_and(|f| known.get(&f).is_some_and(|s| s.contains(name)))
    };

    let mut i = 0;
    while i < toks.len() {
        let tok = &toks[i];
        if tok.in_test {
            i += 1;
            continue;
        }
        if let Some(f) = tok.func {
            known
                .entry(f)
                .or_insert_with(|| sig_floats.get(&file.fns[f]).cloned().unwrap_or_default());
        }

        // `let [mut] name … = <rhs up to ;>` — rhs mentioning a float literal,
        // `f64`, or a known-f64 ident marks the binding as f64.
        if tok.kind == Kind::Ident && tok.text == "let" {
            if let Some(func) = tok.func {
                let mut j = i + 1;
                if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = toks.get(j).filter(|t| t.kind == Kind::Ident) {
                    let name = name.text.clone();
                    let mut k = j + 1;
                    let mut floaty = false;
                    while k < toks.len() && toks[k].text != ";" {
                        let t = &toks[k];
                        if t.kind == Kind::Float
                            || (t.kind == Kind::Ident
                                && (t.text == "f64" || is_known(&known, Some(func), &t.text)))
                        {
                            floaty = true;
                        }
                        k += 1;
                    }
                    if floaty {
                        known.entry(func).or_default().insert(name);
                    }
                }
            }
        }

        // `+` / `+=` with a float operand.
        if tok.kind == Kind::Punct && tok.text == "+" {
            let func = tok.func;
            let prev = i.checked_sub(1).map(|p| &toks[p]);
            // Binary position only (Rust has no unary +; `+` after `(`/`,`/`=`
            // can only be a type-bound separator we don't care about).
            let binary = matches!(
                prev,
                Some(p) if p.kind == Kind::Ident
                    || p.kind == Kind::Int
                    || p.kind == Kind::Float
                    || p.text == ")"
                    || p.text == "]"
            );
            if binary {
                let prev_float = match prev {
                    Some(p) if p.kind == Kind::Float => true,
                    Some(p) if p.kind == Kind::Ident => is_known(&known, func, &p.text),
                    _ => false,
                };
                // Look through `(`/`=` (for `+=`) to the next operand.
                let mut k = i + 1;
                while toks.get(k).map(|t| t.text.as_str()) == Some("=")
                    || toks.get(k).map(|t| t.text.as_str()) == Some("(")
                {
                    k += 1;
                }
                let next_float = match toks.get(k) {
                    Some(n) if n.kind == Kind::Float => true,
                    Some(n) if n.kind == Kind::Ident => is_known(&known, func, &n.text),
                    _ => false,
                };
                if (prev_float || next_float) && !file.allowed(RULE, tok.line) {
                    let op = if toks.get(i + 1).map(|t| t.text.as_str()) == Some("=") {
                        "+="
                    } else {
                        "+"
                    };
                    findings.push(Finding {
                        rule: RULE,
                        file: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "raw f64 `{op}` in a kernel/fold module — float accumulation must \
                             route through FloatSum or DenseFloat to stay bit-identical across \
                             shard/thread topologies"
                        ),
                    });
                }
            }
        }
        i += 1;
    }
    findings
}

/// Pre-scan every `fn` signature for `name: [&][mut] f64` params, keyed by fn
/// name (signature tokens sit outside the body, so `Token::func` can't see
/// them).
fn signature_floats(file: &SourceFile) -> HashMap<String, HashSet<String>> {
    let toks = &file.tokens;
    let mut out: HashMap<String, HashSet<String>> = HashMap::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "fn" || toks[i].kind != Kind::Ident {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == Kind::Ident) else {
            i += 1;
            continue;
        };
        // Scan to the body `{` or declaration-ending `;`.
        let mut j = i + 2;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            if toks[j].text == "f64" {
                // Walk back over `&`/`mut` to the `:` and the param name.
                let mut b = j;
                while b > 0 && (toks[b - 1].text == "&" || toks[b - 1].text == "mut") {
                    b -= 1;
                }
                if b >= 2 && toks[b - 1].text == ":" && toks[b - 2].kind == Kind::Ident {
                    out.entry(name.text.clone()).or_default().insert(toks[b - 2].text.clone());
                }
            }
            j += 1;
        }
        i = j;
    }
    out
}
