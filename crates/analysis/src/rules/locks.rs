//! Rule `lock-order`: the nested-acquisition graph over `pd_common::sync`
//! lock sites must be acyclic, and no lock may be held across an rpc-layer
//! blocking call.
//!
//! Acquisitions are recognized lexically: a no-argument `.lock()` / `.read()`
//! / `.write()` call (the sync shim's entire surface — std's `Read::read` and
//! friends all take arguments, so they never match). The receiver token chain
//! (`self.shared.queue` -> `shared.queue`) names the lock. A guard bound with
//! a plain `let g = recv.lock();` lives to the end of its block or an explicit
//! `drop(g)`; any other acquisition is a temporary that dies at the end of its
//! statement. Nested acquisition A-then-B adds edge A -> B; a cycle anywhere
//! in the workspace-wide graph is a deadlock an unlucky schedule can hit.

use crate::lexer::{Kind, SourceFile};
use crate::Finding;

pub const RULE: &str = "lock-order";

/// The sync shim itself acquires std locks internally; its implementation is
/// the one place the rule must not look.
pub const EXEMPT_FILES: &[&str] = &["crates/common/src/sync.rs"];

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Calls that block on the network or another thread. Holding any lock across
/// one of these turns a slow peer into a stalled lock for every other thread.
const BLOCKING_CALLS: &[&str] = &[
    "call",
    "call_inner",
    "connect",
    "connect_with_retry",
    "connect_by",
    "write_frame",
    "read_frame",
    "read_frame_negotiated",
    "read_frame_deadline",
    "read_exact_deadline",
    "accept",
    "recv",
    "recv_timeout",
    "join",
    "sleep",
];

/// A nested-acquisition edge: while `held` was held, `acquired` was taken.
#[derive(Debug, Clone)]
pub struct Edge {
    pub held: String,
    pub acquired: String,
    pub site: String, // file:line of the inner acquisition
}

struct Guard {
    name: String,
    binding: Option<String>,
    depth: u32,
}

/// Scan one file; returns direct findings (blocking calls under a lock,
/// immediate re-acquisition) plus the acquisition edges for the global graph.
pub fn check(file: &SourceFile) -> (Vec<Finding>, Vec<Edge>) {
    if EXEMPT_FILES.contains(&file.rel_path.as_str()) {
        return (Vec::new(), Vec::new());
    }
    let mut findings = Vec::new();
    let mut edges = Vec::new();
    let toks = &file.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut current_fn: Option<usize> = None;

    for (i, tok) in toks.iter().enumerate() {
        if tok.in_test {
            continue;
        }
        if tok.func != current_fn {
            // Guards don't survive function boundaries.
            current_fn = tok.func;
            guards.clear();
        }
        match tok.kind {
            Kind::Punct => match tok.text.as_str() {
                "}" => guards.retain(|g| g.depth < tok.depth),
                ";" | "{" => {
                    guards.retain(|g| g.binding.is_some() || g.depth < tok.depth);
                }
                _ => {}
            },
            Kind::Ident => {
                let next_is =
                    |off: usize, s: &str| toks.get(i + off).map(|t| t.text == s).unwrap_or(false);
                let after_dot = i > 0 && toks[i - 1].text == ".";

                // drop(g) releases a named guard early.
                if tok.text == "drop" && next_is(1, "(") {
                    if let Some(binding) = toks.get(i + 2).filter(|t| t.kind == Kind::Ident) {
                        if next_is(3, ")") {
                            guards.retain(|g| g.binding.as_deref() != Some(&binding.text));
                        }
                    }
                    continue;
                }

                let is_acquire = ACQUIRE_METHODS.contains(&tok.text.as_str())
                    && after_dot
                    && next_is(1, "(")
                    && next_is(2, ")");
                if is_acquire {
                    let name = receiver_name(file, i - 1);
                    for g in &guards {
                        if g.name == name && !file.allowed(RULE, tok.line) {
                            findings.push(Finding {
                                rule: RULE,
                                file: file.rel_path.clone(),
                                line: tok.line,
                                message: format!(
                                    "lock `{name}` re-acquired while already held — \
                                     pd_common::sync locks are not reentrant; this deadlocks"
                                ),
                            });
                        } else if g.name != name {
                            edges.push(Edge {
                                held: g.name.clone(),
                                acquired: name.clone(),
                                site: format!("{}:{}", file.rel_path, tok.line),
                            });
                        }
                    }
                    // `let [mut] g = recv.lock();` -> named guard.
                    let binding = named_binding(file, i);
                    guards.push(Guard { name, binding, depth: tok.depth });
                    continue;
                }

                let is_blocking = BLOCKING_CALLS.contains(&tok.text.as_str())
                    && next_is(1, "(")
                    && (i == 0 || toks[i - 1].text != "fn");
                if is_blocking && !guards.is_empty() && !file.allowed(RULE, tok.line) {
                    let held: Vec<&str> = guards.iter().map(|g| g.name.as_str()).collect();
                    findings.push(Finding {
                        rule: RULE,
                        file: file.rel_path.clone(),
                        line: tok.line,
                        message: format!(
                            "blocking call `{}(..)` while holding lock(s) {} — a slow peer \
                             stalls every thread waiting on the lock; drop the guard first",
                            tok.text,
                            held.join(", ")
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    (findings, edges)
}

/// Walk back from the `.` before an acquire method, collecting the
/// `ident(.ident)*` receiver chain. `self.` is stripped so the same field
/// named from different methods unifies.
fn receiver_name(file: &SourceFile, dot_idx: usize) -> String {
    let toks = &file.tokens;
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot_idx; // toks[j] is the `.`
    loop {
        if j == 0 {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == Kind::Ident {
            parts.push(&prev.text);
            if j >= 2 && toks[j - 2].text == "." {
                j -= 2;
                continue;
            }
        }
        break;
    }
    parts.reverse();
    if parts.first() == Some(&"self") {
        parts.remove(0);
    }
    if parts.is_empty() {
        "<expr>".to_string()
    } else {
        parts.join(".")
    }
}

/// If the acquisition is the entire right-hand side of a `let` statement
/// (`let [mut] g = recv.lock();`), return the binding name.
fn named_binding(file: &SourceFile, acquire_idx: usize) -> Option<String> {
    let toks = &file.tokens;
    // Statement must end right after the `()`.
    if toks.get(acquire_idx + 3).map(|t| t.text.as_str()) != Some(";") {
        return None;
    }
    // Walk back over the receiver chain to its head ident.
    let mut j = acquire_idx - 1; // the `.`
    while j >= 2 && toks[j - 1].kind == Kind::Ident && toks[j - 2].text == "." {
        j -= 2;
    }
    if j == 0 || toks[j - 1].kind != Kind::Ident {
        return None;
    }
    let head = j - 1;
    // Expect `let [mut] <binding> =` directly before the receiver head.
    if head < 2 || toks[head - 1].text != "=" {
        return None;
    }
    let binding = toks.get(head - 2).filter(|t| t.kind == Kind::Ident)?;
    let kw = toks.get(head.checked_sub(3)?)?;
    if kw.text == "let" || (kw.text == "mut" && head >= 4 && toks[head - 4].text == "let") {
        Some(binding.text.clone())
    } else {
        None
    }
}

/// Workspace-wide cycle detection over the collected edges.
pub fn check_cycles(edges: &[Edge]) -> Vec<Finding> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut graph: BTreeMap<&str, BTreeMap<&str, &str>> = BTreeMap::new();
    for e in edges {
        graph.entry(&e.held).or_default().entry(&e.acquired).or_insert(&e.site);
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<&str>> = BTreeSet::new();
    let starts: Vec<&str> = graph.keys().copied().collect();
    for start in starts {
        // DFS from each node looking for a path back to it.
        let mut stack = vec![(start, vec![start])];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            let Some(nexts) = graph.get(node) else {
                continue;
            };
            for (&next, &site) in nexts {
                if next == start {
                    let mut key: Vec<&str> = path.clone();
                    key.sort_unstable();
                    key.dedup();
                    if reported.insert(key) {
                        findings.push(Finding {
                            rule: RULE,
                            file: site.split(':').next().unwrap_or("").to_string(),
                            line: site.rsplit(':').next().and_then(|l| l.parse().ok()).unwrap_or(0),
                            message: format!(
                                "lock-order cycle: {} -> {} (edge observed at {}) — two threads \
                                 taking these locks in opposite orders deadlock",
                                path.join(" -> "),
                                start,
                                site
                            ),
                        });
                    }
                } else if seen.insert(next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    findings
}
