pub mod floats;
pub mod locks;
pub mod panics;
pub mod unsafety;
pub mod wire_drift;
