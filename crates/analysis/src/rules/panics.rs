//! Rule `decode-panic`: declared decode surfaces must be panic-free.
//!
//! The frame fuzzers (PR 3/4/7/9) assert "hostile bytes never panic the
//! reader" dynamically; this rule makes the same contract lexical: inside the
//! decode surfaces listed below, `unwrap()`, `expect(…)`, `panic!`-family
//! macros, `assert!`-family macros and `[…]` indexing are all findings unless
//! the code sits in a `#[cfg(test)]` region or carries an inline allow.

use crate::lexer::{Kind, SourceFile};
use crate::Finding;

pub const RULE: &str = "decode-panic";

/// A decode surface: a file, optionally narrowed to a set of functions.
/// `fns: None` means the whole file is a decode surface.
pub struct Surface {
    pub path: &'static str,
    pub fns: Option<&'static [&'static str]>,
}

/// The surfaces named by the contract. `wire.rs` and the two codec files are
/// decode-or-encode throughout, so the whole file is held to the standard;
/// `delta.rs`/`bloom.rs`/`rpc.rs` mix decode paths with construction-time
/// code, so only the read-side functions are in scope.
pub const DECODE_SURFACES: &[Surface] = &[
    Surface { path: "crates/common/src/wire.rs", fns: None },
    Surface { path: "crates/core/src/codec.rs", fns: None },
    Surface { path: "crates/sql/src/codec.rs", fns: None },
    Surface { path: "crates/encoding/src/delta.rs", fns: Some(&["decode", "validate"]) },
    Surface { path: "crates/encoding/src/bloom.rs", fns: Some(&["decode"]) },
    Surface {
        path: "crates/dist/src/rpc.rs",
        fns: Some(&[
            "decode",
            "parse",
            "decode_body",
            "read_frame",
            "read_frame_negotiated",
            "read_frame_deadline",
            "read_exact_deadline",
        ]),
    },
];

const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Keywords that may legally precede `[` without it being an indexing
/// expression (slice patterns, `for x in [..]`, `return [..]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "box", "as", "break",
    "continue", "loop", "where", "dyn", "impl", "const", "static", "type", "fn", "use", "pub",
    "crate", "super",
];

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let Some(surface) = DECODE_SURFACES.iter().find(|s| s.path == file.rel_path) else {
        return Vec::new();
    };
    check_surface(file, surface.fns)
}

/// Exposed separately so fixtures can exercise the fn-scoped mode directly.
pub fn check_surface(file: &SourceFile, fns: Option<&[&str]>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.in_test {
            continue;
        }
        if let Some(fns) = fns {
            let in_scope =
                tok.func.map(|idx| fns.contains(&file.fns[idx].as_str())).unwrap_or(false);
            if !in_scope {
                continue;
            }
        }
        let next = toks.get(i + 1);
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let mut flag = |what: &str| {
            if !file.allowed(RULE, tok.line) {
                findings.push(Finding {
                    rule: RULE,
                    file: file.rel_path.clone(),
                    line: tok.line,
                    message: format!(
                        "{what} in a decode surface — hostile bytes must yield Err, never a panic"
                    ),
                });
            }
        };
        match tok.kind {
            Kind::Ident => {
                let is_call = matches!(next, Some(n) if n.text == "(");
                let after_dot = matches!(prev, Some(p) if p.text == ".");
                if is_call && after_dot && (tok.text == "unwrap" || tok.text == "expect") {
                    flag(&format!(".{}()", tok.text));
                } else if PANIC_MACROS.contains(&tok.text.as_str())
                    && matches!(next, Some(n) if n.text == "!")
                {
                    flag(&format!("{}!", tok.text));
                }
            }
            Kind::Punct if tok.text == "[" => {
                // `expr[i]` indexing: `[` directly after an ident (that is not
                // a keyword), a closing bracket, or a closing paren.
                let indexes = match prev {
                    Some(p) if p.kind == Kind::Ident => {
                        !NON_INDEX_KEYWORDS.contains(&p.text.as_str())
                    }
                    Some(p) if p.text == "]" || p.text == ")" || p.text == "?" => true,
                    _ => false,
                };
                if indexes {
                    flag("[..] indexing");
                }
            }
            _ => {}
        }
    }
    findings
}
