//! Rule `unsafe-audit`: every `unsafe` outside test code needs a
//! `// SAFETY:` comment within the five lines above it (or on the same
//! line), and every crate the pass proves unsafe-free must say so with
//! `#![forbid(unsafe_code)]` so it stays that way.

use crate::lexer::{Kind, SourceFile};
use crate::Finding;

pub const RULE: &str = "unsafe-audit";

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for tok in &file.tokens {
        if tok.in_test || tok.kind != Kind::Ident || tok.text != "unsafe" {
            continue;
        }
        // Accept `SAFETY:` on the same line or anywhere in the contiguous
        // comment block directly above it.
        let mut l = tok.line;
        let mut justified = file.safety_lines.contains(&l);
        while !justified && l > 1 && file.comment_lines.contains(&(l - 1)) {
            l -= 1;
            justified = file.safety_lines.contains(&l);
        }
        if !justified && !file.allowed(RULE, tok.line) {
            findings.push(Finding {
                rule: RULE,
                file: file.rel_path.clone(),
                line: tok.line,
                message: "`unsafe` without a `// SAFETY:` comment — state the invariant that \
                          makes this sound, directly above the block"
                    .to_string(),
            });
        }
    }
    findings
}

/// True when the lexed lib.rs carries `#![forbid(unsafe_code)]`.
pub fn has_forbid_unsafe(lib: &SourceFile) -> bool {
    let toks = &lib.tokens;
    toks.iter().enumerate().any(|(i, t)| {
        t.text == "forbid"
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
            && toks.get(i + 2).map(|n| n.text.as_str()) == Some("unsafe_code")
    })
}

/// Crate-level check, driven by the workspace walker: a crate with zero
/// `unsafe` tokens anywhere in its sources must declare the forbid.
pub fn check_crate_forbid(
    crate_name: &str,
    lib_rel_path: &str,
    lib: &SourceFile,
    crate_has_unsafe: bool,
) -> Option<Finding> {
    if crate_has_unsafe || has_forbid_unsafe(lib) {
        return None;
    }
    Some(Finding {
        rule: RULE,
        file: lib_rel_path.to_string(),
        line: 1,
        message: format!(
            "crate `{crate_name}` is unsafe-free — add `#![forbid(unsafe_code)]` to its lib.rs \
             so the compiler keeps it that way"
        ),
    })
}

/// True when any token in the file is a non-test `unsafe`.
pub fn file_has_unsafe(file: &SourceFile) -> bool {
    file.tokens.iter().any(|t| t.kind == Kind::Ident && t.text == "unsafe")
}
