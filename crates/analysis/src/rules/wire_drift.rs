//! Rule `wire-drift`: the wire format may only change together with a
//! `FRAME_VERSION` bump.
//!
//! The fingerprint captures, from every codec file: the `FRAME_VERSION`
//! value, every `const NAME: u8 = <int>` tag constant, and a token hash of
//! every `impl Encode for T` / `impl Decode for T` body. The fingerprint is
//! diffed against the committed golden (`crates/analysis/baselines/
//! wire_fingerprint.txt`); a mismatch with an *unchanged* version is drift —
//! some peer on the old version would misparse the new frames. A mismatch
//! with a *bumped* version just means the golden is stale: regenerate with
//! `cargo run -p pd-analysis -- --bless`.

use crate::lexer::{Kind, SourceFile};
use crate::Finding;

pub const RULE: &str = "wire-drift";

/// Files whose constants and codec impls define the wire format.
pub const CODEC_FILES: &[&str] = &[
    "crates/common/src/wire.rs",
    "crates/core/src/codec.rs",
    "crates/sql/src/codec.rs",
    "crates/encoding/src/delta.rs",
    "crates/encoding/src/bloom.rs",
    "crates/dist/src/rpc.rs",
];

#[derive(Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// The `FRAME_VERSION` constant, if found.
    pub frame_version: Option<u64>,
    /// Sorted `tag <file> <NAME> = <value>` and `layout <file> <Trait><Type> = <hash>` lines.
    pub lines: Vec<String>,
}

impl Fingerprint {
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# pd-analysis wire fingerprint (rule: wire-drift)\n");
        out.push_str("# Any diff here without a FRAME_VERSION bump is wire drift.\n");
        out.push_str("# After bumping FRAME_VERSION, regenerate with:\n");
        out.push_str("#   cargo run -p pd-analysis -- --bless\n");
        out.push_str(&format!("frame_version = {}\n", self.frame_version.unwrap_or(0)));
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    pub fn parse(text: &str) -> Fingerprint {
        let mut frame_version = None;
        let mut lines = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(v) = line.strip_prefix("frame_version = ") {
                frame_version = v.trim().parse().ok();
            } else {
                lines.push(line.to_string());
            }
        }
        lines.sort();
        Fingerprint { frame_version, lines }
    }
}

/// Extract the fingerprint from already-lexed codec files.
pub fn fingerprint(files: &[&SourceFile]) -> Fingerprint {
    let mut frame_version = None;
    let mut lines = Vec::new();
    for file in files {
        extract_tags(file, &mut frame_version, &mut lines);
        extract_layouts(file, &mut lines);
    }
    lines.sort();
    Fingerprint { frame_version, lines }
}

/// `const NAME: u8 = <int>;` outside test regions. `u8` scoping keeps
/// unrelated constants (sizes, depths) out of the wire contract.
fn extract_tags(file: &SourceFile, frame_version: &mut Option<u64>, lines: &mut Vec<String>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if toks[i].in_test || toks[i].text != "const" {
            continue;
        }
        let pat = |off: usize| toks.get(i + off).map(|t| t.text.as_str()).unwrap_or("");
        if pat(2) == ":" && pat(3) == "u8" && pat(4) == "=" {
            let name = pat(1);
            let Some(value) = toks.get(i + 5).filter(|t| t.kind == Kind::Int) else {
                continue;
            };
            if pat(6) != ";" {
                continue;
            }
            let parsed: Option<u64> = value.text.replace('_', "").parse().ok();
            let Some(v) = parsed else { continue };
            if name == "FRAME_VERSION" {
                *frame_version = Some(v);
            }
            lines.push(format!("tag {} {} = {}", file.rel_path, name, v));
        }
    }
}

/// Hash the token stream of each `impl Encode for T` / `impl Decode for T`
/// body. Comments and whitespace don't affect the hash; any token change —
/// field order, a new push, a widened integer — does.
fn extract_layouts(file: &SourceFile, lines: &mut Vec<String>) {
    let toks = &file.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].in_test || toks[i].text != "impl" {
            i += 1;
            continue;
        }
        // Scan the header (up to the body `{`) for `Encode for` / `Decode for`.
        let mut j = i + 1;
        let mut trait_name: Option<&str> = None;
        let mut for_at: Option<usize> = None;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            if toks[j].text == "for" && j > i + 1 {
                let prev = toks[j - 1].text.as_str();
                if prev == "Encode" || prev == "Decode" {
                    trait_name = Some(if prev == "Encode" { "Encode" } else { "Decode" });
                    for_at = Some(j);
                }
            }
            j += 1;
        }
        let (Some(trait_name), Some(for_at), true) = (trait_name, for_at, j < toks.len()) else {
            i = j + 1;
            continue;
        };
        if toks[j].text != "{" {
            i = j + 1;
            continue;
        }
        let type_name: String = toks[for_at + 1..j].iter().map(|t| t.text.as_str()).collect();
        // Hash the balanced body.
        let mut bal = 0i32;
        let mut k = j;
        let mut hash = Fnv::new();
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => bal += 1,
                "}" => {
                    bal -= 1;
                    if bal == 0 {
                        break;
                    }
                }
                _ => {}
            }
            hash.write(toks[k].text.as_bytes());
            hash.write(&[0xff]); // token separator
            k += 1;
        }
        lines.push(format!(
            "layout {} {}<{}> = {:016x}",
            file.rel_path,
            trait_name,
            type_name,
            hash.finish()
        ));
        i = k + 1;
    }
}

/// Diff the live fingerprint against the committed golden.
pub fn check(live: &Fingerprint, golden: &Fingerprint) -> Vec<Finding> {
    if live == golden {
        return Vec::new();
    }
    let mut delta = String::new();
    for l in &golden.lines {
        if !live.lines.contains(l) {
            delta.push_str(&format!("\n  - {l}"));
        }
    }
    for l in &live.lines {
        if !golden.lines.contains(l) {
            delta.push_str(&format!("\n  + {l}"));
        }
    }
    let finding = |message: String| Finding {
        rule: RULE,
        file: "crates/analysis/baselines/wire_fingerprint.txt".to_string(),
        line: 0,
        message,
    };
    if live.frame_version == golden.frame_version {
        vec![finding(format!(
            "wire format changed but FRAME_VERSION is still {:?} — a peer on the old version \
             would misparse these frames; bump FRAME_VERSION in crates/common/src/wire.rs, then \
             run `cargo run -p pd-analysis -- --bless`{delta}",
            golden.frame_version
        ))]
    } else {
        vec![finding(format!(
            "FRAME_VERSION bumped ({:?} -> {:?}) but the committed fingerprint is stale — run \
             `cargo run -p pd-analysis -- --bless` and commit the regenerated golden{delta}",
            golden.frame_version, live.frame_version
        ))]
    }
}

/// FNV-1a, 64-bit — deterministic across runs and platforms, unlike
/// `DefaultHasher`.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}
