//! Fixture tests: every rule class must catch a seeded violation, respect
//! `#[cfg(test)]` regions, and honor the inline allow escape hatch. These
//! fixtures are the proof that a clean `cargo run -p pd-analysis` means
//! something — a rule that can't fail here enforces nothing.

use pd_analysis::lexer::SourceFile;
use pd_analysis::rules::{floats, locks, panics, unsafety, wire_drift};

fn parse(rel: &str, src: &str) -> SourceFile {
    SourceFile::parse(rel, src)
}

// --- rule 1: decode-panic --------------------------------------------------

/// A path inside the real surface table, whole-file scope.
const WIRE: &str = "crates/common/src/wire.rs";

#[test]
fn decode_panic_catches_unwrap_expect_and_panic() {
    let src = r#"
fn decode(buf: &[u8]) -> u8 {
    let a = buf.first().unwrap();
    let b = buf.last().expect("non-empty");
    if *a == 0 { panic!("zero"); }
    assert!(*b != 0);
    *a
}
"#;
    let findings = panics::check(&parse(WIRE, src));
    let kinds: Vec<&str> = findings.iter().map(|f| f.message.split(' ').next().unwrap()).collect();
    assert_eq!(kinds, vec![".unwrap()", ".expect()", "panic!", "assert!"]);
}

#[test]
fn decode_panic_catches_indexing() {
    let src = "fn decode(buf: &[u8]) -> u8 { buf[0] }\n";
    let findings = panics::check(&parse(WIRE, src));
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("indexing"));
}

#[test]
fn decode_panic_ignores_cfg_test_regions() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t(buf: &[u8]) { buf[0]; x.unwrap(); }\n}\n";
    assert!(panics::check(&parse(WIRE, src)).is_empty());
}

#[test]
fn decode_panic_respects_fn_scoped_surfaces() {
    // rpc.rs is fn-scoped: `decode` is a surface, `encode_only` is not.
    let rpc = "crates/dist/src/rpc.rs";
    let src = "fn decode(b: &[u8]) -> u8 { b[0] }\nfn encode_only(b: &[u8]) -> u8 { b[0] }\n";
    let findings = panics::check(&parse(rpc, src));
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 1);
}

#[test]
fn decode_panic_honors_inline_allow() {
    let src = "fn decode(b: &[u8]) -> u8 {\n    // pd-analysis: allow(decode-panic) -- bounds checked by caller\n    b[0]\n}\n";
    assert!(panics::check(&parse(WIRE, src)).is_empty());
}

#[test]
fn decode_panic_outside_surface_files_is_ignored() {
    let src = "fn decode(b: &[u8]) -> u8 { b[0] }\n";
    assert!(panics::check(&parse("crates/core/src/exec.rs", src)).is_empty());
}

// --- rule 2: wire-drift ----------------------------------------------------

fn fp_of(src: &str) -> wire_drift::Fingerprint {
    let f = parse("crates/dist/src/rpc.rs", src);
    wire_drift::fingerprint(&[&f])
}

const CODEC_V5: &str = "
pub const FRAME_VERSION: u8 = 5;
const REQ_PING: u8 = 0;
impl Encode for Request {
    fn encode(&self, out: &mut Vec<u8>) { out.push(REQ_PING); }
}
";

#[test]
fn wire_drift_fails_on_tag_change_without_version_bump() {
    let golden = fp_of(CODEC_V5);
    let drifted = fp_of(&CODEC_V5.replace("REQ_PING: u8 = 0", "REQ_PING: u8 = 9"));
    let findings = wire_drift::check(&drifted, &golden);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("FRAME_VERSION is still"));
}

#[test]
fn wire_drift_fails_on_layout_change_without_version_bump() {
    let golden = fp_of(CODEC_V5);
    let drifted =
        fp_of(&CODEC_V5.replace("out.push(REQ_PING);", "out.push(REQ_PING); out.push(0);"));
    let findings = wire_drift::check(&drifted, &golden);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("misparse"));
}

#[test]
fn wire_drift_with_version_bump_reports_stale_golden() {
    let golden = fp_of(CODEC_V5);
    let bumped = fp_of(
        &CODEC_V5
            .replace("FRAME_VERSION: u8 = 5", "FRAME_VERSION: u8 = 6")
            .replace("REQ_PING: u8 = 0", "REQ_PING: u8 = 9"),
    );
    let findings = wire_drift::check(&bumped, &golden);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("--bless"));
}

#[test]
fn wire_drift_clean_when_identical() {
    assert!(wire_drift::check(&fp_of(CODEC_V5), &fp_of(CODEC_V5)).is_empty());
}

#[test]
fn wire_drift_comment_changes_do_not_drift() {
    let commented = CODEC_V5.replace("out.push(REQ_PING);", "out.push(REQ_PING); // the tag\n");
    assert!(wire_drift::check(&fp_of(&commented), &fp_of(CODEC_V5)).is_empty());
}

#[test]
fn wire_fingerprint_render_parse_round_trips() {
    let fp = fp_of(CODEC_V5);
    let reparsed = wire_drift::Fingerprint::parse(&fp.render());
    assert_eq!(fp, reparsed);
}

// --- rule 3: lock-order ----------------------------------------------------

#[test]
fn lock_order_catches_cycles() {
    let src = "
fn ab(&self) { let g = self.a.lock(); self.b.lock(); }
fn ba(&self) { let g = self.b.lock(); self.a.lock(); }
";
    let (findings, edges) = locks::check(&parse("crates/dist/src/x.rs", src));
    assert!(findings.is_empty());
    let cycles = locks::check_cycles(&edges);
    assert_eq!(cycles.len(), 1);
    assert!(cycles[0].message.contains("cycle"));
}

#[test]
fn lock_order_catches_blocking_call_under_lock() {
    let src = "fn q(&self) { let g = self.conn.lock(); self.client.call(req); }\n";
    let (findings, _) = locks::check(&parse("crates/dist/src/x.rs", src));
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("blocking call"));
}

#[test]
fn lock_order_drop_releases_named_guard() {
    let src = "fn q(&self) { let g = self.conn.lock(); drop(g); self.client.call(req); }\n";
    let (findings, _) = locks::check(&parse("crates/dist/src/x.rs", src));
    assert!(findings.is_empty());
}

#[test]
fn lock_order_temporary_guard_dies_at_statement_end() {
    let src = "fn q(&self) { let n = *self.count.lock(); self.client.call(req); }\n";
    let (findings, _) = locks::check(&parse("crates/dist/src/x.rs", src));
    assert!(findings.is_empty());
}

#[test]
fn lock_order_catches_reentrant_acquisition() {
    let src = "fn q(&self) { let g = self.m.lock(); let h = self.m.lock(); }\n";
    let (findings, _) = locks::check(&parse("crates/dist/src/x.rs", src));
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("re-acquired"));
}

#[test]
fn lock_order_honors_inline_allow() {
    let src = "fn q(&self) {\n    // pd-analysis: allow(lock-order) -- serialized on purpose\n    self.conn.lock().call(req);\n}\n";
    let (findings, _) = locks::check(&parse("crates/dist/src/x.rs", src));
    assert!(findings.is_empty());
}

#[test]
fn lock_order_nested_acquisition_in_one_order_is_no_cycle() {
    let src = "fn ab(&self) { let g = self.a.lock(); self.b.lock(); }\n";
    let (findings, edges) = locks::check(&parse("crates/dist/src/x.rs", src));
    assert!(findings.is_empty());
    assert_eq!(edges.len(), 1);
    assert!(locks::check_cycles(&edges).is_empty());
}

// --- rule 4: float-exactness -----------------------------------------------

const KERNELS: &str = "crates/core/src/kernels.rs";

#[test]
fn float_exactness_catches_plus_eq_accumulation() {
    let src =
        "fn fold(vals: &[f64]) {\n    let mut acc = 0.0;\n    for v in vals { acc += 1.0; }\n}\n";
    let findings = floats::check(&parse(KERNELS, src));
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("+="));
}

#[test]
fn float_exactness_catches_param_addition() {
    let src = "fn mid(a: f64, b: f64) -> f64 { a + b }\n";
    let findings = floats::check(&parse(KERNELS, src));
    assert_eq!(findings.len(), 1);
}

#[test]
fn float_exactness_tracks_known_floats_through_lets() {
    let src = "fn f(x: i64) {\n    let y = x as f64;\n    let z = y + y;\n}\n";
    let findings = floats::check(&parse(KERNELS, src));
    assert_eq!(findings.len(), 1);
}

#[test]
fn float_exactness_ignores_integer_math_and_other_files() {
    let int_src = "fn f(a: u64, b: u64) -> u64 { a + b }\n";
    assert!(floats::check(&parse(KERNELS, int_src)).is_empty());
    let float_src = "fn mid(a: f64, b: f64) -> f64 { a + b }\n";
    assert!(floats::check(&parse("crates/common/src/fsum.rs", float_src)).is_empty());
}

#[test]
fn float_exactness_honors_inline_allow() {
    let src = "fn mid(a: f64, b: f64) -> f64 {\n    // pd-analysis: allow(float-exactness) -- compensated below\n    a + b\n}\n";
    assert!(floats::check(&parse(KERNELS, src)).is_empty());
}

// --- rule 5: unsafe-audit --------------------------------------------------

#[test]
fn unsafe_audit_catches_bare_unsafe() {
    let src = "fn f() { unsafe { std::mem::transmute::<u8, i8>(0) }; }\n";
    let findings = unsafety::check(&parse("crates/core/src/x.rs", src));
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("SAFETY"));
}

#[test]
fn unsafe_audit_accepts_safety_comment_block() {
    let src = "// SAFETY: the transmute only erases a lifetime; the borrow\n// outlives the job (see the wait loop below).\nfn f() { unsafe { x() } }\n";
    assert!(unsafety::check(&parse("crates/core/src/x.rs", src)).is_empty());
}

#[test]
fn unsafe_audit_requires_contiguous_comment_block() {
    let src = "// SAFETY: stale justification\n\nfn other() {}\nfn f() { unsafe { x() } }\n";
    assert_eq!(unsafety::check(&parse("crates/core/src/x.rs", src)).len(), 1);
}

#[test]
fn unsafe_audit_forbid_detection() {
    let with = parse("crates/common/src/lib.rs", "#![forbid(unsafe_code)]\npub mod a;\n");
    let without = parse("crates/common/src/lib.rs", "pub mod a;\n");
    assert!(unsafety::has_forbid_unsafe(&with));
    assert!(unsafety::check_crate_forbid("pd-common", "crates/common/src/lib.rs", &with, false)
        .is_none());
    let finding =
        unsafety::check_crate_forbid("pd-common", "crates/common/src/lib.rs", &without, false);
    assert!(finding.is_some_and(|f| f.message.contains("forbid(unsafe_code)")));
    // A crate with real unsafe must NOT be asked to forbid it.
    assert!(
        unsafety::check_crate_forbid("pd-core", "crates/core/src/lib.rs", &without, true).is_none()
    );
}

// --- allow-directive hygiene ----------------------------------------------

#[test]
fn allow_without_reason_is_rejected_not_honored() {
    let src = "fn decode(b: &[u8]) -> u8 {\n    // pd-analysis: allow(decode-panic)\n    b[0]\n}\n";
    let file = parse(WIRE, src);
    assert_eq!(file.malformed_allows, vec![2]);
    // And the violation still fires: a reasonless allow suppresses nothing.
    assert_eq!(panics::check(&file).len(), 1);
}
