//! The CSV baseline: parse the whole file for every query.

use crate::io_model::IoModel;
use crate::scan::{prepare, scan_execute, BackendRun};
use crate::Backend;
use pd_common::{Result, Schema};
use pd_data::csv::read_csv;
use pd_data::Table;
use std::io::BufReader;

/// Holds the serialized CSV bytes; every query re-parses them, exactly as
/// the paper's CSV backend streams the file.
pub struct CsvBackend {
    schema: Schema,
    bytes: Vec<u8>,
    io: IoModel,
}

impl CsvBackend {
    pub fn new(table: &Table, io: IoModel) -> Result<CsvBackend> {
        let mut bytes = Vec::new();
        pd_data::csv::write_csv(table, &mut bytes)?;
        Ok(CsvBackend { schema: table.schema().clone(), bytes, io })
    }

    /// Size of the serialized file.
    pub fn file_bytes(&self) -> usize {
        self.bytes.len()
    }
}

impl Backend for CsvBackend {
    fn name(&self) -> &'static str {
        "CSV"
    }

    fn execute(&self, sql: &str) -> Result<BackendRun> {
        let analyzed = prepare(sql)?;
        // Row formats must parse everything: materialize via the CSV
        // reader, then stream rows through the scan executor.
        let table = read_csv(&mut BufReader::new(&self.bytes[..]), &self.schema)?;
        scan_execute(
            &self.schema,
            table.iter_rows().map(Ok),
            &analyzed,
            self.bytes.len() as u64,
            &self.io,
        )
    }

    fn storage_bytes(&self, _sql: &str) -> Result<usize> {
        // "For CSV and record-io the entire data size is reported, since
        // these are row-wise formats" (§2.5).
        Ok(self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::Value;
    use pd_data::{generate_logs, LogsSpec};

    #[test]
    fn counts_match_direct_table_scan() {
        let table = generate_logs(&LogsSpec::scaled(500));
        let backend = CsvBackend::new(&table, IoModel::default()).unwrap();
        let run = backend.execute("SELECT COUNT(*) FROM data").unwrap();
        assert_eq!(run.result.rows[0].0[0], Value::Int(500));
        assert_eq!(run.bytes_streamed as usize, backend.file_bytes());
    }

    #[test]
    fn storage_is_whole_file_regardless_of_query() {
        let table = generate_logs(&LogsSpec::scaled(200));
        let backend = CsvBackend::new(&table, IoModel::default()).unwrap();
        let a = backend.storage_bytes("SELECT COUNT(*) FROM data").unwrap();
        let b =
            backend.storage_bytes("SELECT country, COUNT(*) FROM data GROUP BY country").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, backend.file_bytes());
    }
}
