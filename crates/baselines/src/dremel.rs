//! The Dremel-like baseline: a streaming column-store.
//!
//! Captures what the paper contrasts against (§1, §2.5): *"Dremel [...]
//! achieves this by streaming over petabytes of data in a highly
//! distributed and efficient manner"* — i.e. it reads **only the queried
//! columns** (columnar layout, generic compression) but performs **full
//! scans** of them: no import-time partitioning, no chunk skipping, no
//! dictionary-encoded group-by. Columns are stored as independently
//! compressed blocks; a query decompresses and decodes the touched columns
//! block by block and aggregates through the generic hash-table executor.

use crate::io_model::IoModel;
use crate::scan::{prepare, scan_execute, BackendRun};
use crate::Backend;
use pd_common::{DataType, Error, Result, Row, Schema, Value};
use pd_compress::{varint, CodecKind};
use pd_data::Table;

/// Rows per compressed block.
const BLOCK_ROWS: usize = 65_536;

/// One column stored as compressed blocks.
struct ColumnBlocks {
    dtype: DataType,
    /// Compressed payloads, each covering up to [`BLOCK_ROWS`] rows.
    blocks: Vec<Vec<u8>>,
    rows: usize,
}

/// The streaming column-store.
pub struct DremelBackend {
    schema: Schema,
    columns: Vec<ColumnBlocks>,
    io: IoModel,
    codec: CodecKind,
}

impl DremelBackend {
    pub fn new(table: &Table, io: IoModel) -> Result<DremelBackend> {
        let codec = CodecKind::Zippy;
        let mut columns = Vec::with_capacity(table.schema().len());
        for (idx, field) in table.schema().fields().iter().enumerate() {
            let raw = table.column(idx);
            let mut blocks = Vec::with_capacity(raw.len().div_ceil(BLOCK_ROWS));
            for chunk in raw.chunks(BLOCK_ROWS.max(1)) {
                let mut payload = Vec::new();
                for v in chunk {
                    encode_value(&mut payload, v);
                }
                blocks.push(codec.codec().compress(&payload));
            }
            columns.push(ColumnBlocks { dtype: field.data_type, blocks, rows: raw.len() });
        }
        Ok(DremelBackend { schema: table.schema().clone(), columns, io, codec })
    }

    /// Indices of the base columns `sql` touches.
    fn touched_columns(&self, sql: &str) -> Result<Vec<usize>> {
        let mut names = Vec::new();
        for expr in pd_core::memory::query_columns(sql)? {
            expr.referenced_columns(&mut names);
        }
        let mut idxs: Vec<usize> =
            names.iter().map(|n| self.schema.resolve(n)).collect::<Result<_>>()?;
        idxs.sort_unstable();
        idxs.dedup();
        Ok(idxs)
    }

    /// Decompress + decode one column entirely (the full scan).
    fn decode_column(&self, idx: usize) -> Result<Vec<Value>> {
        let col = &self.columns[idx];
        let codec = self.codec.codec();
        let mut out = Vec::with_capacity(col.rows);
        for block in &col.blocks {
            let payload = codec.decompress(block)?;
            let mut pos = 0;
            while pos < payload.len() {
                out.push(decode_value(&payload, &mut pos, col.dtype)?);
            }
        }
        if out.len() != col.rows {
            return Err(Error::Internal(format!(
                "column {idx} decoded {} rows, expected {}",
                out.len(),
                col.rows
            )));
        }
        Ok(out)
    }
}

impl Backend for DremelBackend {
    fn name(&self) -> &'static str {
        "Dremel"
    }

    fn execute(&self, sql: &str) -> Result<BackendRun> {
        let analyzed = prepare(sql)?;
        let touched = self.touched_columns(sql)?;
        let bytes: u64 = touched
            .iter()
            .map(|&i| self.columns[i].blocks.iter().map(Vec::len).sum::<usize>() as u64)
            .sum();

        // Materialize only the touched columns; untouched ones yield NULL
        // (the scan executor never reads them).
        let rows = self.columns.first().map_or(0, |c| c.rows);
        let mut materialized: Vec<Option<Vec<Value>>> = vec![None; self.schema.len()];
        for &i in &touched {
            materialized[i] = Some(self.decode_column(i)?);
        }
        let row_iter = (0..rows).map(move |r| {
            Ok(Row(materialized
                .iter()
                .map(|c| c.as_ref().map_or(Value::Null, |col| col[r].clone()))
                .collect()))
        });
        scan_execute(&self.schema, row_iter, &analyzed, bytes, &self.io)
    }

    fn storage_bytes(&self, sql: &str) -> Result<usize> {
        // "for Dremel [...] this reflects only the columns present in the
        // individual queries" (§2.5).
        Ok(self
            .touched_columns(sql)?
            .iter()
            .map(|&i| self.columns[i].blocks.iter().map(Vec::len).sum::<usize>())
            .sum())
    }
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(x) => varint::write_i64(out, *x),
        Value::Float(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::Str(s) => {
            varint::write_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Null => unreachable!("tables hold no NULLs"),
    }
}

fn decode_value(bytes: &[u8], pos: &mut usize, dtype: DataType) -> Result<Value> {
    match dtype {
        DataType::Int => Ok(Value::Int(varint::read_i64(bytes, pos)?)),
        DataType::Float => {
            let raw = bytes
                .get(*pos..*pos + 8)
                .ok_or_else(|| Error::Data("dremel: truncated float".into()))?;
            *pos += 8;
            Ok(Value::Float(f64::from_le_bytes(raw.try_into().expect("8 bytes"))))
        }
        DataType::Str => {
            let len = varint::read_u64(bytes, pos)? as usize;
            let raw = bytes
                .get(*pos..*pos + len)
                .ok_or_else(|| Error::Data("dremel: truncated string".into()))?;
            *pos += len;
            Ok(Value::Str(
                std::str::from_utf8(raw)
                    .map_err(|_| Error::Data("dremel: invalid UTF-8".into()))?
                    .to_owned(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_data::{generate_logs, LogsSpec};

    fn backend(rows: usize) -> (Table, DremelBackend) {
        let table = generate_logs(&LogsSpec::scaled(rows));
        let backend = DremelBackend::new(&table, IoModel::default()).unwrap();
        (table, backend)
    }

    #[test]
    fn agrees_with_row_backends() {
        let (table, dremel) = backend(600);
        let csv = crate::CsvBackend::new(&table, IoModel::default()).unwrap();
        for sql in [
            "SELECT country, COUNT(*) c FROM data GROUP BY country ORDER BY c DESC LIMIT 10",
            "SELECT date(timestamp) d, COUNT(*), SUM(latency) FROM data GROUP BY d ORDER BY d ASC LIMIT 10",
            "SELECT table_name, COUNT(*) c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10",
            "SELECT country, COUNT(*) c FROM data WHERE latency > 400.0 GROUP BY country ORDER BY c DESC",
        ] {
            let a = dremel.execute(sql).unwrap();
            let b = csv.execute(sql).unwrap();
            assert_eq!(a.result, b.result, "query: {sql}");
        }
    }

    #[test]
    fn reads_only_touched_columns() {
        let (_, dremel) = backend(600);
        let narrow =
            dremel.storage_bytes("SELECT country, COUNT(*) FROM data GROUP BY country").unwrap();
        let wide = dremel
            .storage_bytes(
                "SELECT country, table_name, COUNT(*), SUM(latency) FROM data GROUP BY country, table_name",
            )
            .unwrap();
        assert!(narrow < wide, "narrow {narrow} vs wide {wide}");
        let run = dremel.execute("SELECT country, COUNT(*) FROM data GROUP BY country").unwrap();
        assert_eq!(run.bytes_streamed as usize, narrow);
    }

    #[test]
    fn columnar_compression_beats_row_formats() {
        let (table, dremel) = backend(2_000);
        let csv = crate::CsvBackend::new(&table, IoModel::default()).unwrap();
        let q3 =
            "SELECT table_name, COUNT(*) c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10";
        // Table 1: Dremel loads 90 MB where CSV streams 573 MB.
        assert!(dremel.storage_bytes(q3).unwrap() < csv.storage_bytes(q3).unwrap() / 2);
    }

    #[test]
    fn virtual_expressions_work() {
        let (_, dremel) = backend(300);
        let run = dremel
            .execute("SELECT hour(timestamp) h, COUNT(*) FROM data GROUP BY h ORDER BY h ASC")
            .unwrap();
        assert!(!run.result.rows.is_empty());
    }
}
