//! The disk-streaming cost model of §2.5.
//!
//! *"it is reasonable to assume a streaming rate of at least 100 MB/second
//! for pure I/O during these experiments."* The experiments flush the OS
//! cache before each run, so a backend's first access streams its whole
//! working set at this rate. [`IoModel`] turns bytes into modeled time so
//! the benches can report both measured CPU latency and the
//! disk-inclusive latency the paper tabulates.

use std::time::Duration;

/// Linear streaming-cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoModel {
    /// Sustained streaming bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Fixed per-request overhead (seek + request dispatch).
    pub seek: Duration,
}

impl Default for IoModel {
    /// The paper's 100 MB/s with a spinning-disk seek.
    fn default() -> Self {
        IoModel { bandwidth: 100.0 * 1024.0 * 1024.0, seek: Duration::from_millis(8) }
    }
}

impl IoModel {
    pub fn new(bandwidth_mb_per_s: f64) -> IoModel {
        IoModel { bandwidth: bandwidth_mb_per_s * 1024.0 * 1024.0, ..Default::default() }
    }

    /// Modeled time to stream `bytes` in one sequential request.
    pub fn stream_time(&self, bytes: u64) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        self.seek + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Modeled time for `requests` scattered reads totalling `bytes`.
    pub fn scattered_time(&self, bytes: u64, requests: u64) -> Duration {
        if bytes == 0 && requests == 0 {
            return Duration::ZERO;
        }
        self.seek * (requests.max(1) as u32)
            + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_mb_takes_about_a_second() {
        let model = IoModel::default();
        let t = model.stream_time(100 * 1024 * 1024);
        assert!(t >= Duration::from_secs(1));
        assert!(t < Duration::from_millis(1100));
    }

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(IoModel::default().stream_time(0), Duration::ZERO);
        assert_eq!(IoModel::default().scattered_time(0, 0), Duration::ZERO);
    }

    #[test]
    fn scattered_reads_pay_per_seek() {
        let model = IoModel::default();
        let one = model.scattered_time(1024 * 1024, 1);
        let many = model.scattered_time(1024 * 1024, 100);
        assert!(many > one * 20);
    }

    #[test]
    fn bandwidth_scales() {
        let slow = IoModel::new(10.0).stream_time(10 * 1024 * 1024);
        let fast = IoModel::new(1000.0).stream_time(10 * 1024 * 1024);
        assert!(slow > fast);
    }
}
