//! The comparator backends of Table 1 (§2.5).
//!
//! The paper compares its data structures against three baselines, all of
//! which stream the data and aggregate with generic hash tables:
//!
//! - **CSV** ([`csv_backend`]) — a row-wise text format; the whole file is
//!   parsed for every query;
//! - **record-io** ([`recordio_backend`]) — a row-wise binary format; the
//!   whole file is decoded for every query;
//! - **Dremel-like** ([`dremel`]) — a streaming column-store: per-column
//!   compressed blocks, so only the queried columns are read, but every
//!   block is decompressed and scanned (no partitioning, no skipping, no
//!   dictionary group-by).
//!
//! All three share [`scan::scan_execute`], a deliberately "traditional"
//! row-at-a-time evaluator (expression interpreter + hash-table grouping) —
//! reusing pd-core's aggregation states and finalization so results are
//! bit-identical with the column-store and any difference in the benches is
//! pure execution strategy.
//!
//! [`io_model`] converts bytes streamed into modeled disk time (the paper
//! assumes "a streaming rate of at least 100 MB/second").

#![forbid(unsafe_code)]

pub mod csv_backend;
pub mod dremel;
pub mod io_model;
pub mod recordio_backend;
pub mod scan;

pub use csv_backend::CsvBackend;
pub use dremel::DremelBackend;
pub use io_model::IoModel;
pub use recordio_backend::RecordIoBackend;
pub use scan::BackendRun;

use pd_common::Result;

/// A query backend in the Table 1 comparison.
pub trait Backend {
    /// Stable name used in benchmark output ("CSV", "rec-io", "Dremel").
    fn name(&self) -> &'static str;

    /// Execute a SQL query, reporting the result plus streaming costs.
    fn execute(&self, sql: &str) -> Result<BackendRun>;

    /// Bytes this backend must hold/stream to answer `sql` — the "Memory"
    /// column of Table 1 (full data for row formats, touched columns for
    /// the columnar one).
    fn storage_bytes(&self, sql: &str) -> Result<usize>;
}
