//! The record-io baseline: decode every binary record for every query.

use crate::io_model::IoModel;
use crate::scan::{prepare, scan_execute, BackendRun};
use crate::Backend;
use pd_common::{Result, Schema};
use pd_data::recordio::{write_recordio, RecordIoReader};
use pd_data::Table;

/// Holds the record-io bytes; queries stream records through the decoder.
pub struct RecordIoBackend {
    schema: Schema,
    bytes: Vec<u8>,
    io: IoModel,
}

impl RecordIoBackend {
    pub fn new(table: &Table, io: IoModel) -> Result<RecordIoBackend> {
        Ok(RecordIoBackend { schema: table.schema().clone(), bytes: write_recordio(table), io })
    }

    pub fn file_bytes(&self) -> usize {
        self.bytes.len()
    }
}

impl Backend for RecordIoBackend {
    fn name(&self) -> &'static str {
        "rec-io"
    }

    fn execute(&self, sql: &str) -> Result<BackendRun> {
        let analyzed = prepare(sql)?;
        let mut reader = RecordIoReader::new(&self.bytes)?;
        let rows = std::iter::from_fn(move || reader.next_record().transpose());
        scan_execute(&self.schema, rows, &analyzed, self.bytes.len() as u64, &self.io)
    }

    fn storage_bytes(&self, _sql: &str) -> Result<usize> {
        Ok(self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::Value;
    use pd_data::{generate_logs, LogsSpec};

    #[test]
    fn agrees_with_csv_backend() {
        let table = generate_logs(&LogsSpec::scaled(400));
        let csv = crate::CsvBackend::new(&table, IoModel::default()).unwrap();
        let rio = RecordIoBackend::new(&table, IoModel::default()).unwrap();
        let sql = "SELECT country, COUNT(*) c, SUM(latency) FROM data GROUP BY country ORDER BY c DESC LIMIT 5";
        let a = csv.execute(sql).unwrap();
        let b = rio.execute(sql).unwrap();
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn binary_format_is_smaller_than_csv() {
        let table = generate_logs(&LogsSpec::scaled(400));
        let csv = crate::CsvBackend::new(&table, IoModel::default()).unwrap();
        let rio = RecordIoBackend::new(&table, IoModel::default()).unwrap();
        // The paper's Table 1: rec-io 551 MB vs CSV 573 MB — close, binary
        // slightly smaller.
        assert!(rio.file_bytes() < csv.file_bytes());
    }

    #[test]
    fn filters_work() {
        let table = generate_logs(&LogsSpec::scaled(400));
        let rio = RecordIoBackend::new(&table, IoModel::default()).unwrap();
        let run = rio.execute("SELECT COUNT(*) FROM data WHERE country = 'US'").unwrap();
        let n = run.result.rows[0].0[0].as_int().unwrap();
        assert!(n > 0 && n < 400);
        assert_eq!(run.result.rows[0].0[0], Value::Int(n));
    }
}
