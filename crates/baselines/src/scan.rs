//! The shared row-at-a-time scan executor.
//!
//! This is the "traditional" evaluation strategy the paper contrasts with:
//! every row flows through an expression interpreter and a generic hash
//! table keyed by the group values ("more generic implementations which use
//! hash-tables and can cope with multiple group-by fields", §2.5). The
//! aggregation states and finalization are pd-core's, so a baseline and the
//! column-store return identical rows for identical queries.

use crate::io_model::IoModel;
use pd_common::{Error, FloatSum, FxHashMap, Result, Row, Value};
use pd_core::exec::{finalize, AggState, PartialResult, QueryResult};
use pd_core::KmvSketch;
use pd_sql::{analyze, eval_expr, parse_query, truthy, AggFunc, AnalyzedQuery, RowContext};
use std::time::{Duration, Instant};

/// Effectively-exact sketch size for the baselines' COUNT DISTINCT: they
/// pay for a full hash set, as real systems do.
const EXACT_DISTINCT_M: usize = 1 << 20;

/// Outcome of one backend execution.
#[derive(Debug, Clone)]
pub struct BackendRun {
    pub result: QueryResult,
    /// Bytes the backend streamed/decoded to answer the query.
    pub bytes_streamed: u64,
    /// Measured CPU time.
    pub cpu_time: Duration,
    /// `cpu_time` + modeled cold-cache disk time for `bytes_streamed`.
    pub total_time: Duration,
}

/// Row source context: resolves columns by schema index.
pub struct SchemaRow<'a> {
    pub schema: &'a pd_common::Schema,
    pub row: &'a Row,
}

impl RowContext for SchemaRow<'_> {
    fn column(&self, name: &str) -> Result<Value> {
        let idx = self.schema.resolve(name)?;
        Ok(self.row.0[idx].clone())
    }
}

/// Execute `analyzed` by scanning `rows`; `bytes_streamed` feeds the I/O
/// model.
pub fn scan_execute(
    schema: &pd_common::Schema,
    rows: impl Iterator<Item = Result<Row>>,
    analyzed: &AnalyzedQuery,
    bytes_streamed: u64,
    io: &IoModel,
) -> Result<BackendRun> {
    let started = Instant::now();
    let mut groups: FxHashMap<Box<[Value]>, Vec<AggState>> = FxHashMap::default();

    for row in rows {
        let row = row?;
        let ctx = SchemaRow { schema, row: &row };
        if let Some(filter) = &analyzed.filter {
            if !truthy(&eval_expr(filter, &ctx)?) {
                continue;
            }
        }
        let key: Box<[Value]> =
            analyzed.keys.iter().map(|k| eval_expr(k, &ctx)).collect::<Result<_>>()?;
        let states = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                let fresh: Vec<AggState> = analyzed
                    .aggs
                    .iter()
                    .map(|agg| empty_state(agg, schema))
                    .collect::<Result<_>>()?;
                groups.entry(key).or_insert(fresh)
            }
        };
        for (agg, state) in analyzed.aggs.iter().zip(states.iter_mut()) {
            let arg = match &agg.arg {
                Some(a) => Some(eval_expr(a, &ctx)?),
                None => None,
            };
            update_state(state, arg.as_ref())?;
        }
    }

    let result = finalize(analyzed, PartialResult { groups })?;
    let cpu_time = started.elapsed();
    Ok(BackendRun {
        result,
        bytes_streamed,
        cpu_time,
        total_time: cpu_time + io.stream_time(bytes_streamed),
    })
}

/// Build the empty aggregation state for one aggregate, typing SUM by the
/// argument's schema type when it is a bare column (expressions default to
/// float).
fn empty_state(agg: &pd_sql::AggExpr, schema: &pd_common::Schema) -> Result<AggState> {
    if agg.distinct {
        return Ok(AggState::Distinct(KmvSketch::new(EXACT_DISTINCT_M)));
    }
    Ok(match agg.func {
        AggFunc::Count => AggState::Count(0),
        AggFunc::Sum => {
            let is_int = agg
                .arg
                .as_ref()
                .and_then(|a| a.as_column())
                .and_then(|name| schema.index_of(name))
                .map(|i| schema.field(i).data_type == pd_common::DataType::Int)
                .unwrap_or(false);
            if is_int {
                AggState::SumInt(0)
            } else {
                AggState::SumFloat(Box::new(FloatSum::new()))
            }
        }
        AggFunc::Min => AggState::Min(None),
        AggFunc::Max => AggState::Max(None),
        AggFunc::Avg => AggState::Avg { sum: Box::new(FloatSum::new()), count: 0 },
    })
}

fn update_state(state: &mut AggState, arg: Option<&Value>) -> Result<()> {
    match state {
        AggState::Count(n) => *n += 1,
        AggState::SumInt(s) => {
            let v = arg
                .and_then(Value::as_int)
                .ok_or_else(|| Error::Type("SUM expected an integer".into()))?;
            *s = s.wrapping_add(v);
        }
        AggState::SumFloat(s) => {
            s.add(arg.map(Value::numeric).unwrap_or(0.0));
        }
        AggState::Min(m) => {
            let v = arg.ok_or_else(|| Error::Internal("MIN without argument".into()))?;
            if m.as_ref().is_none_or(|cur| v < cur) {
                *m = Some(v.clone());
            }
        }
        AggState::Max(m) => {
            let v = arg.ok_or_else(|| Error::Internal("MAX without argument".into()))?;
            if m.as_ref().is_none_or(|cur| v > cur) {
                *m = Some(v.clone());
            }
        }
        AggState::Avg { sum, count } => {
            sum.add(arg.map(Value::numeric).unwrap_or(0.0));
            *count += 1;
        }
        AggState::Distinct(sketch) => {
            let v = arg.ok_or_else(|| Error::Internal("DISTINCT without argument".into()))?;
            sketch.offer(pd_common::fx_hash64(v));
        }
    }
    Ok(())
}

/// Parse + analyze, rejecting queries no backend can serve.
pub fn prepare(sql: &str) -> Result<AnalyzedQuery> {
    let analyzed = analyze(&parse_query(sql)?)?;
    if analyzed.table.is_none() {
        return Err(Error::Unsupported("baselines execute single-table queries".into()));
    }
    Ok(analyzed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::{DataType, Schema};
    use pd_data::Table;

    fn sample() -> Table {
        let schema = Schema::of(&[("k", DataType::Str), ("v", DataType::Int)]);
        let mut t = Table::new(schema);
        for i in 0..100i64 {
            t.push_row(Row(vec![Value::from(["a", "b", "c"][(i % 3) as usize]), Value::Int(i)]))
                .unwrap();
        }
        t
    }

    fn run(sql: &str) -> BackendRun {
        let t = sample();
        let analyzed = prepare(sql).unwrap();
        scan_execute(t.schema(), t.iter_rows().map(Ok), &analyzed, 1024, &IoModel::default())
            .unwrap()
    }

    #[test]
    fn group_by_counts() {
        let run = run("SELECT k, COUNT(*) c FROM t GROUP BY k ORDER BY k ASC");
        let rows = &run.result.rows;
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, vec![Value::from("a"), Value::Int(34)]);
        assert_eq!(rows[1].0, vec![Value::from("b"), Value::Int(33)]);
        assert_eq!(rows[2].0, vec![Value::from("c"), Value::Int(33)]);
    }

    #[test]
    fn aggregates_and_filter() {
        let run = run("SELECT k, SUM(v), MIN(v), MAX(v), AVG(v) FROM t WHERE v >= 10 GROUP BY k ORDER BY k ASC");
        let rows = &run.result.rows;
        assert_eq!(rows.len(), 3);
        // Group "a": v in {12, 15, ..., 99} (multiples of 3 ≥ 12).
        let a = &rows[0].0;
        assert_eq!(a[2], Value::Int(12));
        assert_eq!(a[3], Value::Int(99));
    }

    #[test]
    fn count_distinct_exact() {
        let run = run("SELECT COUNT(DISTINCT k) FROM t");
        assert_eq!(run.result.rows[0].0[0], Value::Int(3));
    }

    #[test]
    fn io_model_adds_time() {
        let run = run("SELECT COUNT(*) FROM t");
        assert!(run.total_time >= run.cpu_time);
        assert_eq!(run.bytes_streamed, 1024);
    }

    #[test]
    fn union_queries_rejected() {
        assert!(prepare(
            "SELECT a, SUM(x) FROM ((SELECT a, SUM(x) x FROM s1 GROUP BY a) UNION ALL (SELECT a, SUM(x) x FROM s2 GROUP BY a)) GROUP BY a"
        )
        .is_err());
    }
}
