//! Codec micro-benchmarks (§3 "Generic Compression Algorithm", §5 "Other
//! Compression Algorithms"): compression and decompression throughput on a
//! realistic column payload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pd_bench::logs_table;
use pd_compress::CodecKind;
use pd_core::{BuildOptions, DataStore};
use std::hint::black_box;

fn column_payload() -> Vec<u8> {
    let table = logs_table(50_000);
    let store = DataStore::build(&table, &BuildOptions::default()).expect("store");
    let col = store.column("table_name").expect("column");
    let mut payload = col.dict.to_bytes();
    for chunk in &col.chunks {
        payload.extend_from_slice(&chunk.to_bytes());
    }
    payload
}

fn bench_codecs(c: &mut Criterion) {
    let payload = column_payload();
    let mut group = c.benchmark_group("codecs");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.sample_size(10);
    for kind in [CodecKind::Rle, CodecKind::Zippy, CodecKind::Lzf, CodecKind::Deflate] {
        let codec = kind.codec();
        group.bench_with_input(BenchmarkId::new("compress", codec.name()), &payload, |b, p| {
            b.iter(|| black_box(codec.compress(p)));
        });
        let compressed = codec.compress(&payload);
        group.bench_with_input(
            BenchmarkId::new("decompress", codec.name()),
            &compressed,
            |b, p| {
                b.iter(|| black_box(codec.decompress(p).expect("decompress")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
