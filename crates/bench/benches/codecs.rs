//! Codec micro-benchmarks (§3 "Generic Compression Algorithm", §5 "Other
//! Compression Algorithms"): compression and decompression throughput on a
//! realistic column payload.

use pd_bench::{logs_table, mb, Bench};
use pd_compress::CodecKind;
use pd_core::{BuildOptions, DataStore};
use std::hint::black_box;

fn column_payload() -> Vec<u8> {
    let table = logs_table(50_000);
    let store = DataStore::build(&table, &BuildOptions::default()).expect("store");
    let col = store.column("table_name").expect("column");
    let mut payload = col.dict.to_bytes();
    for chunk in &col.chunks {
        payload.extend_from_slice(&chunk.to_bytes());
    }
    payload
}

fn main() {
    let payload = column_payload();
    println!("payload: {:.2} MB", mb(payload.len()));
    let bench = Bench::new("codecs").samples(5);
    for kind in [CodecKind::Rle, CodecKind::Zippy, CodecKind::Lzf, CodecKind::Deflate] {
        let codec = kind.codec();
        bench.case_throughput(&format!("compress/{}", codec.name()), payload.len() as u64, || {
            black_box(codec.compress(&payload));
        });
        let compressed = codec.compress(&payload);
        bench.case_throughput(
            &format!("decompress/{}", codec.name()),
            payload.len() as u64,
            || {
                black_box(codec.decompress(&compressed).expect("decompress"));
            },
        );
    }
}
