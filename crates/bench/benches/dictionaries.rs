//! Dictionary lookups (§3 "Optimize Global-Dictionaries"): sorted array vs
//! the 4-bit trie, in both directions, plus element access across
//! representations.

use pd_bench::Bench;
use pd_encoding::{Elements, ElementsMode, SortedStrDict, TrieDict};
use std::hint::black_box;

fn names(n: usize) -> Vec<String> {
    let mut v: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "logs.team_{:02}.dataset_{:03}.2011-{:02}-{:02}",
                i % 23,
                i % 301,
                i % 12 + 1,
                i % 28 + 1
            )
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn main() {
    let values = names(120_000);
    let refs: Vec<&str> = values.iter().map(String::as_str).collect();
    let sorted = SortedStrDict::from_sorted(values.iter().map(|s| s.as_str().into()).collect())
        .expect("sorted dict");
    let trie = TrieDict::from_sorted(&refs).expect("trie");
    let probes: Vec<&str> = refs.iter().step_by(7).copied().collect();

    let bench = Bench::new("dictionaries").samples(10);
    bench.case_throughput("id_of/sorted_array", probes.len() as u64, || {
        for p in &probes {
            black_box(sorted.id_of(p));
        }
    });
    bench.case_throughput("id_of/trie", probes.len() as u64, || {
        for p in &probes {
            black_box(trie.id_of(p));
        }
    });

    let ids: Vec<u32> = (0..sorted.len()).step_by(7).collect();
    bench.case_throughput("value/sorted_array", ids.len() as u64, || {
        for &id in &ids {
            black_box(sorted.value(id));
        }
    });
    bench.case_throughput("value/trie", ids.len() as u64, || {
        for &id in &ids {
            black_box(trie.value(id));
        }
    });

    // Element access across representations.
    let bench = Bench::new("elements_get").samples(10);
    const ROWS: usize = 500_000;
    for distinct in [1u32, 2, 200, 60_000] {
        let ids: Vec<u32> = (0..ROWS).map(|i| i as u32 % distinct).collect();
        let elements = Elements::encode(&ids, distinct, ElementsMode::Optimized);
        bench.case_throughput(elements.repr_name(), ROWS as u64, || {
            let mut sum = 0u64;
            elements.for_each(|id| sum += u64::from(id));
            black_box(sum);
        });
    }
}
