//! Dictionary lookups (§3 "Optimize Global-Dictionaries"): sorted array vs
//! the 4-bit trie, in both directions, plus element access across
//! representations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pd_encoding::{Elements, ElementsMode, SortedStrDict, TrieDict};
use std::hint::black_box;

fn names(n: usize) -> Vec<String> {
    let mut v: Vec<String> = (0..n)
        .map(|i| format!("logs.team_{:02}.dataset_{:03}.2011-{:02}-{:02}", i % 23, i % 301, i % 12 + 1, i % 28 + 1))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn bench_dictionaries(c: &mut Criterion) {
    let values = names(120_000);
    let refs: Vec<&str> = values.iter().map(String::as_str).collect();
    let sorted = SortedStrDict::from_sorted(values.iter().map(|s| s.as_str().into()).collect())
        .expect("sorted dict");
    let trie = TrieDict::from_sorted(&refs).expect("trie");
    let probes: Vec<&str> = refs.iter().step_by(7).copied().collect();

    let mut group = c.benchmark_group("dictionaries");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.sample_size(20);

    group.bench_function("id_of/sorted_array", |b| {
        b.iter(|| {
            for p in &probes {
                black_box(sorted.id_of(p));
            }
        });
    });
    group.bench_function("id_of/trie", |b| {
        b.iter(|| {
            for p in &probes {
                black_box(trie.id_of(p));
            }
        });
    });
    let ids: Vec<u32> = (0..sorted.len()).step_by(7).collect();
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench_function("value/sorted_array", |b| {
        b.iter(|| {
            for &id in &ids {
                black_box(sorted.value(id));
            }
        });
    });
    group.bench_function("value/trie", |b| {
        b.iter(|| {
            for &id in &ids {
                black_box(trie.value(id));
            }
        });
    });
    group.finish();

    // Element access across representations.
    let mut group = c.benchmark_group("elements_get");
    const ROWS: usize = 500_000;
    group.throughput(Throughput::Elements(ROWS as u64));
    group.sample_size(20);
    for distinct in [1u32, 2, 200, 60_000] {
        let ids: Vec<u32> = (0..ROWS).map(|i| i as u32 % distinct).collect();
        let elements = Elements::encode(&ids, distinct, ElementsMode::Optimized);
        group.bench_function(elements.repr_name().to_string(), |b| {
            b.iter(|| {
                let mut sum = 0u64;
                elements.for_each(|id| sum += u64::from(id));
                black_box(sum)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dictionaries);
criterion_main!(benches);
