//! The §2.4 inner-loop claim: `counts[elements[row]]++` over a dense array
//! vs a generic hash-table group-by (what "more generic implementations"
//! pay).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pd_common::FxHashMap;
use pd_encoding::{Elements, ElementsMode};
use std::hint::black_box;

const ROWS: usize = 1_000_000;

fn ids(distinct: u32) -> Vec<u32> {
    (0..ROWS).map(|i| (i as u32).wrapping_mul(2_654_435_761) % distinct).collect()
}

fn bench_groupby(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupby");
    group.throughput(Throughput::Elements(ROWS as u64));
    group.sample_size(20);

    for distinct in [25u32, 1_000, 100_000] {
        let raw = ids(distinct);
        let elements = Elements::encode(&raw, distinct, ElementsMode::Optimized);

        group.bench_function(format!("counts_array/{distinct}"), |b| {
            b.iter(|| {
                let mut counts = vec![0u64; distinct as usize];
                elements.for_each(|id| counts[id as usize] += 1);
                black_box(counts)
            });
        });

        group.bench_function(format!("hash_table/{distinct}"), |b| {
            b.iter(|| {
                let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
                elements.for_each(|id| *counts.entry(id).or_insert(0) += 1);
                black_box(counts)
            });
        });

        // What the row-wise baselines pay: hashing the string value.
        let strings: Vec<String> = raw.iter().map(|id| format!("table_name_{id:06}")).collect();
        group.bench_function(format!("hash_table_strings/{distinct}"), |b| {
            b.iter(|| {
                let mut counts: FxHashMap<&str, u64> = FxHashMap::default();
                for s in &strings {
                    *counts.entry(s.as_str()).or_insert(0) += 1;
                }
                black_box(counts)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_groupby);
criterion_main!(benches);
