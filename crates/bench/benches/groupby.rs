//! The §2.4 inner-loop claim: `counts[elements[row]]++` over a dense array
//! vs a generic hash-table group-by (what "more generic implementations"
//! pay).

use pd_bench::Bench;
use pd_common::FxHashMap;
use pd_encoding::{Elements, ElementsMode};
use std::hint::black_box;

const ROWS: usize = 1_000_000;

fn ids(distinct: u32) -> Vec<u32> {
    (0..ROWS).map(|i| (i as u32).wrapping_mul(2_654_435_761) % distinct).collect()
}

fn main() {
    let bench = Bench::new("groupby").samples(10);

    for distinct in [25u32, 1_000, 100_000] {
        let raw = ids(distinct);
        let elements = Elements::encode(&raw, distinct, ElementsMode::Optimized);

        bench.case_throughput(&format!("counts_array/{distinct}"), ROWS as u64, || {
            let mut counts = vec![0u64; distinct as usize];
            elements.for_each(|id| counts[id as usize] += 1);
            black_box(counts);
        });

        bench.case_throughput(&format!("hash_table/{distinct}"), ROWS as u64, || {
            let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
            elements.for_each(|id| *counts.entry(id).or_insert(0) += 1);
            black_box(counts);
        });

        // What the row-wise baselines pay: hashing the string value.
        let strings: Vec<String> = raw.iter().map(|id| format!("table_name_{id:06}")).collect();
        bench.case_throughput(&format!("hash_table_strings/{distinct}"), ROWS as u64, || {
            let mut counts: FxHashMap<&str, u64> = FxHashMap::default();
            for s in &strings {
                *counts.entry(s.as_str()).or_insert(0) += 1;
            }
            black_box(counts);
        });
    }
}
