//! Streaming ingest vs full rebuild: the cost of refreshing a live §4
//! serving tree when ~1% of the table is new.
//!
//! Two ways to get new rows into a running RPC cluster:
//!
//! 1. **full rebuild** — [`Cluster::rebuild`] respawns every worker
//!    process and re-ships the *entire* table as `Load` frames;
//! 2. **delta append** — [`Cluster::append`] keeps the processes alive
//!    and ships only the new chunks plus dictionary deltas (`Append`
//!    frames), bumping the epoch in place.
//!
//! Because existing dictionary codes are stable under append, both paths
//! must produce bit-identical answers — asserted here, along with the two
//! numbers that justify the delta path (also asserted, so the bench-smoke
//! CI job turns a regression into a red build): on a ~1%-changed table the
//! append must ship **strictly fewer bytes** and complete **strictly
//! faster** than the rebuild.
//!
//! Like `rpc_tree`, the worker binary is resolved via the library's own
//! lookup; without it the bench prints a note and exits cleanly instead of
//! failing (`cargo bench` does not build other crates' bin targets).

use pd_bench::{fmt_duration, json_line, logs_table, measure, Stats};
use pd_core::BuildOptions;
use pd_dist::{Cluster, ClusterConfig, RpcConfig, Transport, TreeShape, WorkerAddr};
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let rows = pd_bench::rows_from_env_or(100_000);
    if pd_dist::process::resolve_worker_bin(None).is_err() {
        println!(
            "NOTE: pd-dist-worker binary not found (build it or set PD_DIST_WORKER_BIN); \
             skipping incremental_rebuild"
        );
        return;
    }

    // The §6 production recipe, shrunk with the dataset like `experiments`.
    let shards = (rows / 62_500).clamp(2, 8);
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = (rows / shards / 120).clamp(200, 50_000);
    }
    let config = ClusterConfig {
        shards,
        replication: false,
        shard_cache: 0,
        threads: 1,
        tree: TreeShape { fanout: 4 },
        build,
        transport: Transport::Rpc(RpcConfig {
            worker_bin: None,
            budget: Duration::from_secs(60),
            addr: WorkerAddr::Unix,
            compress: false,
        }),
        ..Default::default()
    };

    // ~1% of the table arrives as new rows.
    let full = logs_table(rows);
    let delta_rows = (rows / 100).max(500).min(rows / 2);
    let base = full.select_rows(&(0..rows - delta_rows).collect::<Vec<_>>());
    let delta = full.select_rows(&((rows - delta_rows)..rows).collect::<Vec<_>>());
    let sql = "SELECT country, COUNT(*) as c, SUM(latency) as s FROM logs \
               GROUP BY country ORDER BY c DESC LIMIT 10";

    let trials = if pd_bench::quick() { 2 } else { 3 };
    let mut append_times = Vec::new();
    let mut rebuild_times = Vec::new();
    let mut append_bytes = 0u64;
    let mut rebuild_bytes = 0u64;
    for trial in 0..trials {
        // Delta path: live tree, ship only the new rows.
        let mut appended = Cluster::build(&base, &config).expect("cluster");
        let mut outcome = None;
        append_times.push(measure(|| {
            outcome = Some(appended.append(&delta).expect("append"));
        }));
        append_bytes = outcome.expect("measured").bytes_shipped;

        // Full path: respawn the tree over base + delta.
        let mut rebuilt = Cluster::build(&base, &config).expect("cluster");
        rebuild_times.push(measure(|| {
            rebuilt.rebuild(&full).expect("rebuild");
        }));
        rebuild_bytes = rebuilt.shipped_bytes();

        // Both refreshed clusters must answer bit-identically.
        if trial == 0 {
            let a = appended.query(sql).expect("appended query");
            let b = rebuilt.query(sql).expect("rebuilt query");
            assert_eq!(
                a.result, b.result,
                "append and rebuild must agree bit-identically on the refreshed table"
            );
            assert_eq!(a.stats.rows_total, rows as u64);
        }
        black_box((&appended, &rebuilt));
    }
    append_times.sort_unstable();
    rebuild_times.sort_unstable();
    let append_stats = Stats { min: append_times[0], median: append_times[append_times.len() / 2] };
    let rebuild_stats =
        Stats { min: rebuild_times[0], median: rebuild_times[rebuild_times.len() / 2] };

    println!(
        "=== incremental rebuild ({rows} rows, {delta_rows}-row delta, {shards} shards, unix rpc) ===\n\
         delta append : {}  shipping {append_bytes} bytes\n\
         full rebuild : {}  shipping {rebuild_bytes} bytes\n\
         -> {:.1}x faster, {:.1}x fewer bytes",
        fmt_duration(append_stats.min),
        fmt_duration(rebuild_stats.min),
        rebuild_stats.min.as_secs_f64() / append_stats.min.as_secs_f64().max(1e-9),
        rebuild_bytes as f64 / append_bytes.max(1) as f64,
    );
    assert!(
        append_bytes < rebuild_bytes,
        "a ~1% delta append must ship strictly fewer bytes than a full rebuild: \
         {append_bytes} vs {rebuild_bytes}"
    );
    assert!(
        append_stats.min < rebuild_stats.min,
        "a ~1% delta append must complete strictly faster than a full rebuild: \
         {} vs {}",
        fmt_duration(append_stats.min),
        fmt_duration(rebuild_stats.min),
    );
    json_line(
        "incremental_rebuild",
        "delta_append",
        append_stats,
        &[
            ("bytes", append_bytes.to_string()),
            ("rows", delta_rows.to_string()),
            ("rebuild_bytes", rebuild_bytes.to_string()),
        ],
    );
    json_line("incremental_rebuild", "full_rebuild", rebuild_stats, &[]);
}
