//! Compressed-domain kernel speed: the raw-speed claims behind
//! `KernelConfig`, asserted — not just printed — so a regression that
//! makes a "fast path" slower than the materializing baseline fails the
//! bench run itself.
//!
//! Three claims:
//!
//! 1. run-aware counting over run-heavy codes (`for_each_run`) beats the
//!    row-at-a-time loop (`for_each`) — strictly;
//! 2. the dense-float double-double group-by beats the materializing
//!    kernel end-to-end on a high-cardinality float `SUM`/`AVG` — strictly
//!    (the materializing path demotes to hash groups at this cardinality,
//!    the dense-float path keeps the flat-array loop);
//! 3. the dictionary→f64 table is built once per (column, chunk) and
//!    *not* once per aggregate — `SUM(x) + AVG(x)` costs exactly
//!    `chunk_count` builds (asserted via `pd_core::float_table_builds`).

use pd_bench::{logs_table, measure_stats, rows_from_env_or, Bench};
use pd_core::{execute, BuildOptions, DataStore, ExecContext, KernelConfig};
use pd_encoding::{Elements, ElementsMode};
use pd_sql::{analyze, parse_query};
use std::hint::black_box;

const ROWS: usize = 1_000_000;

/// Run-heavy codes, the reordered-store profile: runs of ~64 equal codes,
/// 1000 distinct values (u16 representation).
fn run_heavy_ids(distinct: u32, run: usize) -> Vec<u32> {
    (0..ROWS).map(|i| ((i / run) as u32).wrapping_mul(2_654_435_761) % distinct).collect()
}

fn main() {
    let bench = Bench::new("kernel_compressed").samples(10);

    // 1. Run-aware count vs row-at-a-time count on the same storage.
    let distinct = 1_000u32;
    for run in [64usize, 8] {
        let elements =
            Elements::encode(&run_heavy_ids(distinct, run), distinct, ElementsMode::Optimized);
        let row_wise =
            bench.case_throughput(&format!("count_rowwise/run{run}"), ROWS as u64, || {
                let mut counts = vec![0u64; distinct as usize];
                elements.for_each(|id| counts[id as usize] += 1);
                black_box(counts);
            });
        let run_aware = bench.case_throughput(&format!("count_runs/run{run}"), ROWS as u64, || {
            let mut counts = vec![0u64; distinct as usize];
            elements.for_each_run(|id, n| counts[id as usize] += n as u64);
            black_box(counts);
        });
        // The strict claim is for run-heavy data (the reordered-store
        // profile the fast path targets); the short-run case is recorded
        // to show the crossover, not asserted — run discovery there costs
        // about what it saves.
        if run == 64 {
            assert!(
                run_aware < row_wise,
                "run-aware count must beat the row loop on run-{run} data: \
                 {run_aware:?} vs {row_wise:?}"
            );
        }
    }

    // 2..3. End-to-end: a high-cardinality float group-by, dense-float on
    // vs fully materializing, same store, single thread.
    let rows = rows_from_env_or(200_000);
    let table = logs_table(rows);
    let store = DataStore::build(&table, &BuildOptions::production(&["user", "country"])).unwrap();
    let chunks = store.chunk_count() as u64;
    let sql = "SELECT user, SUM(latency) s, AVG(latency) a FROM data GROUP BY user";
    let analyzed = analyze(&parse_query(sql).unwrap()).unwrap();
    let ctx = |kernels: KernelConfig| ExecContext { threads: 1, kernels, ..Default::default() };

    let builds_before = pd_core::float_table_builds();
    execute(&store, &analyzed, &ctx(KernelConfig::default())).unwrap();
    let builds = pd_core::float_table_builds() - builds_before;
    assert_eq!(
        builds, chunks,
        "SUM(x)+AVG(x) must build one float table per chunk, not one per aggregate"
    );

    let timed = |name: &str, kernels: KernelConfig| {
        let stats = measure_stats(10, || {
            black_box(execute(&store, &analyzed, &ctx(kernels)).unwrap());
        });
        pd_bench::json_line("kernel_compressed", name, stats, &[]);
        println!("{name:<42} {:>12}", pd_bench::fmt_duration(stats.min));
        stats.min
    };
    let materializing = timed("float_groupby_materializing", KernelConfig::materializing());
    let dense = timed("float_groupby_dense", KernelConfig::default());
    assert!(
        dense < materializing,
        "dense-float group-by must beat the materializing kernel: \
         {dense:?} vs {materializing:?}"
    );

    // Run-aware end-to-end too, on the shape it targets: a global float
    // aggregate folds whole runs into the exact accumulator.
    let global =
        analyze(&parse_query("SELECT COUNT(*) c, SUM(latency) s FROM data").unwrap()).unwrap();
    let timed_global = |name: &str, kernels: KernelConfig| {
        let stats = measure_stats(10, || {
            black_box(execute(&store, &global, &ctx(kernels)).unwrap());
        });
        pd_bench::json_line("kernel_compressed", name, stats, &[]);
        println!("{name:<42} {:>12}", pd_bench::fmt_duration(stats.min));
        stats.min
    };
    timed_global("global_sum_materializing", KernelConfig::materializing());
    timed_global("global_sum_runs", KernelConfig::default());
}
