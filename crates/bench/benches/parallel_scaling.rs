//! Morsel-driven scaling curves: the paper's Table 1 queries at 1 / 2 / 4
//! / 8 worker threads, plus the dictionary-code kernels against a generic
//! per-row loop.
//!
//! The interesting numbers are the speedup columns: chunk scans are
//! embarrassingly parallel (immutable chunks, mergeable states), so the
//! group-by-heavy queries should approach linear scaling until the merge
//! and finalize phases dominate.

use pd_bench::experiments::{paper_partition, QUERIES};
use pd_bench::{fmt_duration, json_line, logs_table, measure_n, measure_stats, Bench};
use pd_core::{execute, BuildOptions, DataStore, ExecContext};
use pd_sql::{analyze, parse_query};
use std::hint::black_box;

fn main() {
    let rows = pd_bench::rows_from_env_or(500_000);
    let table = logs_table(rows);
    let mut options = BuildOptions::reordered(paper_partition(rows));
    if let Some(spec) = &mut options.partition {
        // Enough chunks that 8 workers stay busy.
        spec.max_chunk_rows = (rows / 64).clamp(500, 50_000);
    }
    let store = DataStore::build(&table, &options).expect("store");
    println!(
        "dataset: {rows} rows in {} chunks (threshold {})",
        store.chunk_count(),
        options.partition.as_ref().map_or(0, |s| s.max_chunk_rows)
    );
    let cores = pd_core::scheduler::available_threads();
    println!("detected core count: {cores}");
    let check_speedups = cores > 1;
    if !check_speedups {
        println!(
            "WARNING: available_parallelism() == 1 — parallel speedups cannot manifest \
             on this machine; speedup sanity checks are skipped (expect ~1.0x everywhere). \
             Re-run on multi-core hardware for meaningful scaling curves."
        );
    }
    let mut violations: Vec<String> = Vec::new();
    // With at least `cores` real cores, `threads` workers should never be
    // dramatically *slower* than sequential (generous 1.5x margin: these
    // are µs-scale queries where scheduling noise is visible).
    let mut check =
        |name: &str, threads: usize, t1: std::time::Duration, t: std::time::Duration| {
            if check_speedups && threads <= cores && t.as_secs_f64() > 1.5 * t1.as_secs_f64() {
                violations.push(format!(
                    "{name}: {threads} threads took {} vs {} sequential",
                    fmt_duration(t),
                    fmt_duration(t1)
                ));
            }
        };

    // Query latency by thread count (uncached: no result cache, so every
    // run scans).
    println!("\n=== Table 1 queries by thread count ===");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}  {:>9} {:>9}",
        "query", "1 thread", "2 threads", "4 threads", "8 threads", "x4", "x8"
    );
    for (name, sql) in QUERIES {
        let analyzed = analyze(&parse_query(sql).expect("parse")).expect("analyze");
        let time = |threads: usize| {
            let ctx = ExecContext { threads, ..Default::default() };
            measure_stats(5, || {
                black_box(execute(&store, &analyzed, &ctx).expect("query"));
            })
        };
        let s1 = time(1);
        let s2 = time(2);
        let s4 = time(4);
        let s8 = time(8);
        let (t1, t2, t4, t8) = (s1.min, s2.min, s4.min, s8.min);
        check(name, 2, t1, t2);
        check(name, 4, t1, t4);
        check(name, 8, t1, t8);
        println!(
            "{name:<8} {:>12} {:>12} {:>12} {:>12}  {:>8.2}x {:>8.2}x",
            fmt_duration(t1),
            fmt_duration(t2),
            fmt_duration(t4),
            fmt_duration(t8),
            t1.as_secs_f64() / t4.as_secs_f64().max(1e-12),
            t1.as_secs_f64() / t8.as_secs_f64().max(1e-12),
        );
        for (threads, stats) in [(1, s1), (2, s2), (4, s4), (8, s8)] {
            json_line("parallel_scaling", &format!("{name}/threads{threads}"), stats, &[]);
        }
    }

    // A group-by-heavy filtered query: partial chunks exercise the mask +
    // kernel path at every thread count.
    println!("\n=== filtered group-by by thread count ===");
    let sql = "SELECT table_name, COUNT(*) as c, SUM(latency) as s FROM data WHERE latency > 100.0 GROUP BY table_name ORDER BY c DESC LIMIT 10";
    let analyzed = analyze(&parse_query(sql).expect("parse")).expect("analyze");
    let mut t1 = None;
    for threads in [1usize, 2, 4, 8] {
        let ctx = ExecContext { threads, ..Default::default() };
        let t = measure_n(5, || {
            black_box(execute(&store, &analyzed, &ctx).expect("query"));
        });
        let sequential = *t1.get_or_insert(t);
        let speedup = sequential.as_secs_f64() / t.as_secs_f64().max(1e-12);
        check("filtered", threads, sequential, t);
        println!("threads {threads}: {:>12}   ({speedup:.2}x)", fmt_duration(t));
    }

    // Kernel vs generic loop: the dictionary-code counts-array against a
    // per-row closure over the same chunk data.
    println!();
    let bench = Bench::new("kernel_vs_generic").samples(10);
    let col = store.column("table_name").expect("column");
    let total_rows: u64 = col.chunks.iter().map(|c| c.len() as u64).sum();
    bench.case_throughput("kernel/counts_array_codes", total_rows, || {
        for chunk in &col.chunks {
            let mut counts = vec![0u64; chunk.dict.len() as usize];
            // The monomorphized view loop the executor's kernels use.
            match chunk.codes() {
                pd_encoding::CodesView::Const { len } => counts[0] += len as u64,
                pd_encoding::CodesView::Bits(bits) => {
                    let ones = bits.count_ones() as u64;
                    counts[1] += ones;
                    counts[0] += bits.len() as u64 - ones;
                }
                pd_encoding::CodesView::U8(v) => {
                    for &id in v {
                        counts[id as usize] += 1;
                    }
                }
                pd_encoding::CodesView::U16(v) => {
                    for &id in v {
                        counts[id as usize] += 1;
                    }
                }
                pd_encoding::CodesView::U32(v) => {
                    for &id in v {
                        counts[id as usize] += 1;
                    }
                }
            }
            black_box(&counts);
        }
    });
    bench.case_throughput("generic/per_row_get", total_rows, || {
        for chunk in &col.chunks {
            let mut counts = vec![0u64; chunk.dict.len() as usize];
            for row in 0..chunk.len() {
                counts[chunk.elements.get(row) as usize] += 1;
            }
            black_box(&counts);
        }
    });
    bench.case_throughput("generic/value_hashmap", total_rows, || {
        use pd_common::FxHashMap;
        for chunk in &col.chunks {
            let mut counts: FxHashMap<pd_common::Value, u64> = FxHashMap::default();
            for row in 0..chunk.len() {
                let v = col.dict.value(chunk.dict.global_id_of(chunk.elements.get(row)));
                *counts.entry(v).or_insert(0) += 1;
            }
            black_box(&counts);
        }
    });

    if check_speedups {
        if violations.is_empty() {
            println!("\nspeedup sanity checks passed ({cores} cores)");
        } else {
            // Warn by default: 5-sample µs-scale measurements are noisy on
            // loaded machines. `PD_BENCH_STRICT=1` turns this into a hard
            // failure for controlled perf-CI environments.
            println!(
                "\nWARNING: parallel execution slower than sequential on a {cores}-core \
                 machine:\n  {}",
                violations.join("\n  ")
            );
            let strict = std::env::var("PD_BENCH_STRICT").is_ok_and(|v| v == "1");
            assert!(!strict, "PD_BENCH_STRICT=1: treating speedup warnings as failures");
        }
    }
}
