//! The cost of the real §4 process split: in-process shard fan-out vs the
//! RPC computation tree (spawned `pd-dist-worker` leaves + merge servers).
//!
//! Four numbers per shard count:
//!
//! 1. **tree build** — spawning, loading and wiring the worker processes
//!    (the price the in-process cluster never pays);
//! 2. **cold query** — first execution over each transport;
//! 3. **warm query** — steady state, where the RPC gap isolates the wire:
//!    serialization + framing + socket hops + worker queueing;
//! 4. **wire bytes** — the serialized size of one shard's partial result,
//!    the §4 payload that flows up the tree.
//!
//! The worker binary is resolved like the library does (explicit env /
//! sibling of the executable); when it is not built the RPC columns are
//! skipped with a note instead of failing — `cargo bench` does not build
//! other crates' bin targets.

use pd_bench::{fmt_duration, logs_table, measure, measure_n, TablePrinter};
use pd_common::wire;
use pd_core::{execute_partial, BuildOptions, DataStore, ExecContext};
use pd_dist::{Cluster, ClusterConfig, RpcConfig, Transport, TreeShape};
use pd_sql::{analyze, parse_query};
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let rows = std::env::var("PD_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(100_000);
    let table = logs_table(rows);
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = (rows / 64).clamp(500, 50_000);
    }
    let sql = "SELECT country, COUNT(*) as c, SUM(latency) as s FROM logs \
               WHERE table_name = 'Searches' GROUP BY country ORDER BY c DESC LIMIT 10";

    // One shard's partial on the wire: what every tree edge carries (an
    // unfiltered two-aggregate group-by, so every group key, count and
    // float-sum superaccumulator is present).
    let store = DataStore::build(&table, &build).expect("store");
    let unfiltered = "SELECT country, COUNT(*) as c, SUM(latency) as s FROM logs GROUP BY country";
    let analyzed = analyze(&parse_query(unfiltered).expect("parse")).expect("analyze");
    let ctx = ExecContext { threads: 1, ..Default::default() };
    let (partial, _) = execute_partial(&store, &analyzed, &ctx).expect("partial");
    let wire_bytes = wire::to_bytes(&partial).len();
    println!(
        "dataset: {rows} rows; one shard's {}-group partial on the wire: {wire_bytes} bytes",
        partial.groups.len()
    );

    let worker_available = pd_dist::process::resolve_worker_bin(None).is_ok();
    if !worker_available {
        println!(
            "NOTE: pd-dist-worker binary not found (build it or set PD_DIST_WORKER_BIN); \
             skipping the rpc columns"
        );
    }

    println!("\n=== transport comparison (fanout 4 ⇒ merge servers appear at 8 shards) ===");
    let printer = TablePrinter::new(
        &["shards", "transport", "tree build", "cold query", "warm query"],
        &[6, 10, 10, 10, 10],
    );
    for shards in [1usize, 4, 8] {
        for transport_name in ["in-process", "rpc"] {
            if transport_name == "rpc" && !worker_available {
                continue;
            }
            let transport = match transport_name {
                "in-process" => Transport::InProcess,
                _ => Transport::Rpc(RpcConfig {
                    worker_bin: None,
                    deadline: Duration::from_secs(60),
                }),
            };
            let config = ClusterConfig {
                shards,
                replication: false,
                shard_cache: 0,
                threads: 1,
                tree: TreeShape { fanout: 4 },
                build: build.clone(),
                transport,
                ..Default::default()
            };
            let mut cluster = None;
            let build_time = measure(|| {
                cluster = Some(Cluster::build(&table, &config).expect("cluster"));
            });
            let cluster = cluster.expect("built");
            let cold = measure(|| {
                black_box(cluster.query(sql).expect("query"));
            });
            let warm = measure_n(5, || {
                black_box(cluster.query(sql).expect("query"));
            });
            if std::env::var("PD_BENCH_JSON").is_ok() {
                println!(
                    "{{\"group\":\"rpc_tree\",\"bench\":\"shards{shards}/{transport_name}\",\
                     \"ns_per_iter\":{}}}",
                    warm.as_nanos()
                );
            }
            printer.row(&[
                shards.to_string(),
                transport_name.to_string(),
                fmt_duration(build_time),
                fmt_duration(cold),
                fmt_duration(warm),
            ]);
        }
    }
    println!(
        "\nThe warm-query gap between the transports is the RPC boundary itself: \
         serialization, framing, socket hops and worker queueing."
    );
}
