//! The cost of the real §4 process split: in-process shard fan-out vs the
//! RPC computation tree (spawned `pd-dist-worker` leaves + merge servers)
//! over Unix sockets and loopback TCP, with frame compression on and off.
//!
//! Numbers per shard count and transport:
//!
//! 1. **tree build** — spawning, loading and wiring the worker processes
//!    (the price the in-process cluster never pays);
//! 2. **cold query** — first execution over each transport;
//! 3. **warm query** — steady state, where the RPC gap isolates the wire:
//!    serialization + framing + socket hops + worker queueing;
//! 4. **wire bytes** — the serialized size of one shard's partial result
//!    raw vs compressed (`pd-compress` Zippy): the §4 payload that flows
//!    up the tree is dominated by `FloatSum` superaccumulator limbs,
//!    which are mostly zero, so the ratio must come out ≥ 2× (asserted —
//!    the bench-smoke CI job turns a regression into a red build).
//!
//! The worker binary is resolved like the library does (explicit env /
//! sibling of the executable); when it is not built the RPC columns are
//! skipped with a note instead of failing — `cargo bench` does not build
//! other crates' bin targets. Worker processes sit in `ReapGuard`s inside
//! the cluster's `ProcessTree`, so a panicking measurement reaps its
//! children on unwind instead of leaking them into later suites.

use pd_bench::{fmt_duration, json_line, logs_table, measure_stats, TablePrinter};
use pd_common::wire;
use pd_compress::CodecKind;
use pd_core::{execute_partial, BuildOptions, DataStore, ExecContext};
use pd_dist::{Cluster, ClusterConfig, RpcConfig, Transport, TreeShape, WorkerAddr};
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let rows = pd_bench::rows_from_env_or(100_000);
    let table = logs_table(rows);
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = (rows / 64).clamp(500, 50_000);
    }
    // Restricted to a value the generator actually produces: the previous
    // `table_name = 'Searches'` matched nothing in the logs table, so
    // restriction-aware pre-skip pruned the whole tree at the root and the
    // "query" columns timed the prune instead of real execution.
    let sql = "SELECT table_name, COUNT(*) as c, SUM(latency) as s FROM logs \
               WHERE country = 'US' GROUP BY table_name ORDER BY c DESC LIMIT 10";

    // One shard's partial on the wire: what every tree edge carries (an
    // unfiltered two-aggregate group-by, so every group key, count and
    // float-sum superaccumulator is present), raw and compressed.
    let store = DataStore::build(&table, &build).expect("store");
    let unfiltered = "SELECT country, COUNT(*) as c, SUM(latency) as s FROM logs GROUP BY country";
    let analyzed =
        pd_sql::analyze(&pd_sql::parse_query(unfiltered).expect("parse")).expect("analyze");
    let ctx = ExecContext { threads: 1, ..Default::default() };
    let (partial, _) = execute_partial(&store, &analyzed, &ctx).expect("partial");
    let wire_bytes = wire::to_bytes(&partial);
    let codec = CodecKind::Zippy.codec();
    let compress_stats = measure_stats(5, || {
        black_box(codec.compress(&wire_bytes));
    });
    let compressed = codec.compress(&wire_bytes);
    assert_eq!(codec.decompress(&compressed).expect("round trip"), wire_bytes);
    let ratio = wire_bytes.len() as f64 / compressed.len().max(1) as f64;
    println!(
        "dataset: {rows} rows; one shard's {}-group partial on the wire: {} bytes raw, \
         {} bytes compressed ({ratio:.1}x, compressed in {})",
        partial.groups.len(),
        wire_bytes.len(),
        compressed.len(),
        fmt_duration(compress_stats.median),
    );
    json_line(
        "rpc_tree",
        "partial_compression",
        compress_stats,
        &[
            ("bytes", wire_bytes.len().to_string()),
            ("compressed_bytes", compressed.len().to_string()),
            ("ratio", format!("{ratio:.3}")),
        ],
    );
    assert!(
        ratio >= 2.0,
        "FloatSum-limb-dominated partials must compress ≥2x, got {ratio:.2}x \
         ({} -> {} bytes)",
        wire_bytes.len(),
        compressed.len()
    );

    let worker_available = pd_dist::process::resolve_worker_bin(None).is_ok();
    if !worker_available {
        println!(
            "NOTE: pd-dist-worker binary not found (build it or set PD_DIST_WORKER_BIN); \
             skipping the rpc columns"
        );
    }

    let transports: Vec<(&str, Transport)> = vec![
        ("in-process", Transport::InProcess),
        ("unix", rpc(WorkerAddr::Unix, false)),
        ("unix+z", rpc(WorkerAddr::Unix, true)),
        ("tcp", rpc(WorkerAddr::loopback(), false)),
        ("tcp+z", rpc(WorkerAddr::loopback(), true)),
    ];
    let shard_counts: &[usize] = if pd_bench::quick() { &[1, 4] } else { &[1, 4, 8] };

    println!("\n=== transport comparison (fanout 4 ⇒ merge servers appear at 8 shards) ===");
    let printer = TablePrinter::new(
        &["shards", "transport", "tree build", "cold query", "warm query"],
        &[6, 10, 10, 10, 10],
    );
    for &shards in shard_counts {
        for (transport_name, transport) in &transports {
            if !matches!(transport, Transport::InProcess) && !worker_available {
                continue;
            }
            let config = ClusterConfig {
                shards,
                replication: false,
                shard_cache: 0,
                threads: 1,
                tree: TreeShape { fanout: 4 },
                build: build.clone(),
                transport: transport.clone(),
                ..Default::default()
            };
            let mut cluster = None;
            let build_time = pd_bench::measure(|| {
                cluster = Some(Cluster::build(&table, &config).expect("cluster"));
            });
            let cluster = cluster.expect("built");
            let cold = pd_bench::measure(|| {
                black_box(cluster.query(sql).expect("query"));
            });
            let warm_stats = measure_stats(5, || {
                black_box(cluster.query(sql).expect("query"));
            });
            json_line("rpc_tree", &format!("shards{shards}/{transport_name}"), warm_stats, &[]);
            printer.row(&[
                shards.to_string(),
                transport_name.to_string(),
                fmt_duration(build_time),
                fmt_duration(cold),
                fmt_duration(warm_stats.min),
            ]);
        }
    }
    println!(
        "\nThe warm-query gap between the transports is the RPC boundary itself: \
         serialization, framing, socket hops and worker queueing; the +z columns \
         show what per-frame compression costs (CPU) and saves (bytes moved)."
    );

    // Worker-side result caches: a warm drill-down over RPC answers from
    // the frontier nodes' own caches — at 8 shards and fanout 4 those are
    // two merge servers, so the 8 leaf partials (the FloatSum-heavy
    // payloads measured above) never cross a socket at all. The
    // bytes-not-shipped figure uses a *measured* representative leaf
    // partial: the same query executed over one shard's worth of rows.
    if worker_available {
        let shards = 8usize;
        let leaf_rows = {
            let mut sub = pd_data::Table::new(table.schema().clone());
            for r in 0..table.len() / shards {
                sub.push_row(table.row(r)).expect("leaf sample");
            }
            sub
        };
        let leaf_store = DataStore::build(&leaf_rows, &build).expect("leaf store");
        let warm_analyzed =
            pd_sql::analyze(&pd_sql::parse_query(sql).expect("parse")).expect("analyze");
        let (leaf_partial, _) =
            execute_partial(&leaf_store, &warm_analyzed, &ctx).expect("leaf partial");
        let leaf_partial_bytes = wire::to_bytes(&leaf_partial).len();

        let config = ClusterConfig {
            shards,
            replication: false,
            shard_cache: 1024,
            threads: 1,
            tree: TreeShape { fanout: 4 },
            build: build.clone(),
            transport: rpc(WorkerAddr::Unix, false),
            ..Default::default()
        };
        let cluster = Cluster::build(&table, &config).expect("cached cluster");
        let cold = pd_bench::measure(|| {
            black_box(cluster.query(sql).expect("cold query"));
        });
        let warm_outcome = cluster.query(sql).expect("warm query");
        let hits = warm_outcome.worker_cache_hits();
        assert!(hits > 0, "a repeated query over rpc must report worker-cache hits, got {hits}");
        let covered = warm_outcome.stats.rows_cached == warm_outcome.stats.rows_total;
        let bytes_not_shipped = shards * leaf_partial_bytes;
        let warm_stats = measure_stats(5, || {
            black_box(cluster.query(sql).expect("warm query"));
        });
        println!(
            "\n=== warm rpc with worker-side caches (8 shards, fanout 4) ===\n\
             cold {} -> warm {} | {hits} frontier cache hits per warm query \
             (all rows cached: {covered}); ~{bytes_not_shipped} bytes of leaf \
             partials not shipped ({} bytes per measured leaf partial x {shards} edges)",
            fmt_duration(cold),
            fmt_duration(warm_stats.min),
            leaf_partial_bytes,
        );
        json_line(
            "rpc_tree",
            "warm_cached_rpc",
            warm_stats,
            &[
                ("worker_cache_hits", hits.to_string()),
                ("leaf_partial_bytes", leaf_partial_bytes.to_string()),
                ("bytes_not_shipped", bytes_not_shipped.to_string()),
            ],
        );
    }

    // Chunk-granular pruning on the wire: a lexicographic `table_name`
    // window that neither the leaf-local skip analysis (trie dictionaries
    // cannot rank range bounds — every chunk reads Opaque and scans) nor
    // the shard envelope (the distinct set degrades past the cap and the
    // min/max straddles the window) can refute. Only the shipped per-chunk
    // value-space zone maps prune here, so the layered cluster must scan
    // strictly fewer rows than the shard-only pruner for a bit-identical
    // result — measured over compressed TCP, the multi-host transport.
    if worker_available {
        // Mid-envelope window over the `logs.<team>.<dataset>_<k>` names:
        // maps/revenue teams, with ads..youtube neighbours on both sides.
        let drill = "SELECT table_name, COUNT(*) as c, SUM(latency) as s FROM logs \
                     WHERE table_name >= 'logs.m' AND table_name < 'logs.s' \
                     GROUP BY table_name ORDER BY c DESC LIMIT 10";
        // Partitioned table_name-major (the drill-down field), so chunk
        // zone maps carry tight name envelopes.
        let mut drill_build = BuildOptions::production(&["table_name", "country"]);
        if let Some(spec) = &mut drill_build.partition {
            spec.max_chunk_rows = (rows / 64).clamp(500, 50_000);
        }
        let cluster_with = |chunk_pruning: bool| {
            Cluster::build(
                &table,
                &ClusterConfig {
                    shards: 4,
                    replication: false,
                    shard_cache: 0,
                    threads: 1,
                    tree: TreeShape { fanout: 4 },
                    build: drill_build.clone(),
                    transport: rpc(WorkerAddr::loopback(), true),
                    chunk_pruning,
                    ..Default::default()
                },
            )
            .expect("drill-down cluster")
        };
        let layered = cluster_with(true);
        let shard_only = cluster_with(false);
        let layered_outcome = layered.query(drill).expect("layered drill-down");
        let shard_outcome = shard_only.query(drill).expect("shard-only drill-down");
        assert_eq!(
            layered_outcome.result, shard_outcome.result,
            "pruning may only move work, never change a row"
        );
        assert!(
            layered_outcome.stats.rows_scanned < shard_outcome.stats.rows_scanned,
            "chunk zone maps must cut the drill-down scan below the shard-only \
             pruner: {} vs {} rows scanned",
            layered_outcome.stats.rows_scanned,
            shard_outcome.stats.rows_scanned,
        );
        let frames_not_sent = layered_outcome.stats.subtrees_pruned;
        let layered_stats = measure_stats(5, || {
            black_box(layered.query(drill).expect("layered drill-down"));
        });
        let shard_stats = measure_stats(5, || {
            black_box(shard_only.query(drill).expect("shard-only drill-down"));
        });
        println!(
            "\n=== chunk-pruned drill-down (4 shards, tcp+z; table_name in ['logs.m','logs.s')) ===\n\
             layered {} ({} of {} rows scanned, {} chunks pruned remotely, \
             {frames_not_sent} frames not sent) vs shard-only {} ({} rows scanned)",
            fmt_duration(layered_stats.min),
            layered_outcome.stats.rows_scanned,
            layered_outcome.stats.rows_total,
            layered_outcome.stats.chunks_pruned_remote,
            fmt_duration(shard_stats.min),
            shard_outcome.stats.rows_scanned,
        );
        json_line(
            "rpc_tree",
            "chunk_pruned_drilldown",
            layered_stats,
            &[
                ("rows_scanned", layered_outcome.stats.rows_scanned.to_string()),
                ("rows_scanned_shard_only", shard_outcome.stats.rows_scanned.to_string()),
                ("chunks_pruned_remote", layered_outcome.stats.chunks_pruned_remote.to_string()),
                ("frames_not_sent", frames_not_sent.to_string()),
            ],
        );
        json_line("rpc_tree", "shard_only_drilldown", shard_stats, &[]);
    }

    // Hedged replica racing vs a real straggling primary process: shard
    // 0's primary sleeps far past the hedge delay every query, so the
    // replica answers the race and end-to-end latency stays well under the
    // injected straggle — the old per-hop-deadline design would have
    // waited the whole deadline out instead.
    if worker_available {
        let straggle = Duration::from_millis(800);
        let config = ClusterConfig {
            shards: 2,
            replication: true,
            shard_cache: 0,
            threads: 1,
            tree: TreeShape { fanout: 4 },
            build: build.clone(),
            transport: rpc(WorkerAddr::Unix, false),
            ..Default::default()
        };
        let cluster = Cluster::build(&table, &config).expect("hedged cluster");
        // One healthy query first: the hedge delay then derives from the
        // *measured* queue-delay tail instead of the cold-start fallback.
        cluster.query(sql).expect("healthy warm-up");
        cluster.inject_worker_delay(0, straggle).expect("delay knob");
        let outcome = cluster.query(sql).expect("hedged query");
        assert!(
            outcome.hedges.contains(&0),
            "the straggling primary must be recorded as hedged: {:?}",
            outcome.hedges
        );
        let hedged_stats = measure_stats(3, || {
            black_box(cluster.query(sql).expect("hedged query"));
        });
        assert!(
            hedged_stats.median < straggle,
            "hedged latency must beat the injected straggler delay: {} vs {}",
            fmt_duration(hedged_stats.median),
            fmt_duration(straggle),
        );
        println!(
            "\n=== hedged straggler (2 shards, replicated; shard 0's primary sleeps {}) ===\n\
             hedged query {} — the replica answers long before the straggler would",
            fmt_duration(straggle),
            fmt_duration(hedged_stats.median),
        );
        json_line(
            "rpc_tree",
            "hedged_straggler",
            hedged_stats,
            &[
                ("straggle_ms", straggle.as_millis().to_string()),
                ("hedged_shards", outcome.hedges.len().to_string()),
            ],
        );
    }
}

fn rpc(addr: WorkerAddr, compress: bool) -> Transport {
    Transport::Rpc(RpcConfig { worker_bin: None, budget: Duration::from_secs(60), addr, compress })
}
