//! Shard fan-out scaling and shard-cache hit rates (§4/§6).
//!
//! Three measurements:
//!
//! 1. **Fan-out scaling** — one drill-down query at 1/2/4/8 shards ×
//!    1/2/4 fan-out threads. On multi-core hardware the concurrent fan-out
//!    should track the shard count until the merge dominates; on one core
//!    it measures the (small) scheduling overhead of the shared pool.
//! 2. **Shard-cache hits** — the same query cold vs warm: the warm path
//!    serves every shard partial from the root's cache.
//! 3. **Drill-down replay** — the §6 workload with the cache on vs off,
//!    reporting total latency and the hit count.

use pd_bench::{fmt_duration, json_line, logs_table, measure_stats, TablePrinter};
use pd_core::{scheduler, BuildOptions};
use pd_dist::{Cluster, ClusterConfig, DrillDownWorkload, WorkloadSpec};
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let rows = pd_bench::rows_from_env_or(200_000);
    let table = logs_table(rows);
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        spec.max_chunk_rows = (rows / 64).clamp(500, 50_000);
    }
    let cores = scheduler::available_threads();
    println!("dataset: {rows} rows; detected core count: {cores}");
    if cores == 1 {
        println!(
            "WARNING: available_parallelism() == 1 — fan-out concurrency cannot speed \
             anything up here; re-measure on multi-core hardware"
        );
    }

    let sql = "SELECT country, COUNT(*) as c, SUM(latency) as s FROM logs \
               WHERE table_name = 'Searches' GROUP BY country ORDER BY c DESC LIMIT 10";

    println!("\n=== fan-out scaling (uncached query latency) ===");
    let printer = TablePrinter::new(&["shards", "1 thread", "2 threads", "4 threads"], &[6; 4]);
    for shards in [1usize, 2, 4, 8] {
        let mut cells: Vec<String> = vec![shards.to_string()];
        for threads in [1usize, 2, 4] {
            let cluster = Cluster::build(
                &table,
                &ClusterConfig {
                    shards,
                    threads,
                    shard_cache: 0, // every run scans
                    build: build.clone(),
                    ..Default::default()
                },
            )
            .expect("cluster");
            let stats = measure_stats(5, || {
                black_box(cluster.query(sql).expect("query"));
            });
            json_line("shard_fanout", &format!("shards{shards}/threads{threads}"), stats, &[]);
            cells.push(fmt_duration(stats.min));
        }
        printer.row(&cells);
    }

    println!("\n=== shard-cache: cold vs warm (4 shards) ===");
    let cluster = Cluster::build(
        &table,
        &ClusterConfig { shards: 4, build: build.clone(), ..Default::default() },
    )
    .expect("cluster");
    let cold = pd_bench::measure(|| {
        black_box(cluster.query(sql).expect("query"));
    });
    let warm_stats = measure_stats(5, || {
        black_box(cluster.query(sql).expect("query"));
    });
    let warm = warm_stats.min;
    let outcome = cluster.query(sql).expect("query");
    println!("cold (scans):      {:>12}", fmt_duration(cold));
    println!(
        "warm (cache hits): {:>12}   ({:.1}x, {} of {} shards from cache)",
        fmt_duration(warm),
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-12),
        outcome.shard_cache_hits,
        cluster.shard_count(),
    );
    assert_eq!(outcome.shard_cache_hits, 4, "warm queries must hit every shard partial");
    json_line("shard_cache", "cold", pd_bench::Stats { min: cold, median: cold }, &[]);
    json_line("shard_cache", "warm", warm_stats, &[]);

    println!("\n=== drill-down replay: shard cache on vs off ===");
    let workload = DrillDownWorkload::generate(
        &table,
        &WorkloadSpec { clicks: 10, queries_per_click: 10, max_drill_depth: 4, seed: 3 },
    )
    .expect("workload");
    let replay = |shard_cache: usize| -> (Duration, usize) {
        let cluster = Cluster::build(
            &table,
            &ClusterConfig { shards: 4, shard_cache, build: build.clone(), ..Default::default() },
        )
        .expect("cluster");
        let mut total = Duration::ZERO;
        let mut hits = 0;
        for click in &workload.clicks {
            for sql in &click.queries {
                let outcome = cluster.query(sql).expect("query");
                total += outcome.stats.elapsed;
                hits += outcome.shard_cache_hits;
            }
        }
        (total, hits)
    };
    let (off_total, off_hits) = replay(0);
    let (on_total, on_hits) = replay(1024);
    println!(
        "{} queries | cache off: {} | cache on: {} ({on_hits} shard hits)",
        workload.query_count(),
        fmt_duration(off_total),
        fmt_duration(on_total),
    );
    assert_eq!(off_hits, 0);
    assert!(on_hits > 0, "the drill-down replay must hit the shard cache");
    json_line(
        "shard_cache",
        "drilldown_replay_hits",
        pd_bench::Stats { min: on_total, median: on_total },
        &[("elements", on_hits.to_string())],
    );
}
