//! Count-distinct (§5) and cache-policy microbenchmarks.

use pd_bench::Bench;
use pd_common::fx_hash64;
use pd_core::{CachePolicy, KmvSketch, TieredCache};
use std::hint::black_box;

fn main() {
    const N: u64 = 500_000;
    let hashes: Vec<u64> = (0..N).map(|i| fx_hash64(&i)).collect();

    let bench = Bench::new("count_distinct").samples(5);
    for m in [1024usize, 4096, 16384] {
        bench.case_throughput(&format!("kmv_m{m}"), N, || {
            let mut sketch = KmvSketch::new(m);
            for &h in &hashes {
                sketch.offer(h);
            }
            black_box(sketch.estimate());
        });
    }
    bench.case_throughput("exact_hashset", N, || {
        let set: pd_common::FxHashSet<u64> = hashes.iter().copied().collect();
        black_box(set.len());
    });

    let bench = Bench::new("cache_touch").samples(5);
    for policy in [CachePolicy::Lru, CachePolicy::TwoQ, CachePolicy::Arc] {
        let cache = TieredCache::new(policy, 1 << 20, 1 << 19);
        let keys: Vec<_> = (0..256u32).map(|i| (std::sync::Arc::<str>::from("col"), i)).collect();
        bench.case_throughput(&format!("{policy:?}"), 10_000, || {
            for i in 0..10_000u32 {
                let key = &keys[(i % 256) as usize];
                black_box(cache.touch(key, 8 << 10, 2 << 10));
            }
        });
    }
}
