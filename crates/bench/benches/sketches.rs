//! Count-distinct (§5) and cache-policy microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pd_common::fx_hash64;
use pd_core::{CachePolicy, KmvSketch, TieredCache};
use std::hint::black_box;

fn bench_sketch(c: &mut Criterion) {
    const N: u64 = 500_000;
    let hashes: Vec<u64> = (0..N).map(|i| fx_hash64(&i)).collect();

    let mut group = c.benchmark_group("count_distinct");
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);
    for m in [1024usize, 4096, 16384] {
        group.bench_function(format!("kmv_m{m}"), |b| {
            b.iter(|| {
                let mut sketch = KmvSketch::new(m);
                for &h in &hashes {
                    sketch.offer(h);
                }
                black_box(sketch.estimate())
            });
        });
    }
    group.bench_function("exact_hashset", |b| {
        b.iter(|| {
            let set: pd_common::FxHashSet<u64> = hashes.iter().copied().collect();
            black_box(set.len())
        });
    });
    group.finish();

    let mut group = c.benchmark_group("cache_touch");
    group.throughput(Throughput::Elements(10_000));
    group.sample_size(10);
    for policy in [CachePolicy::Lru, CachePolicy::TwoQ, CachePolicy::Arc] {
        group.bench_function(format!("{policy:?}"), |b| {
            let cache = TieredCache::new(policy, 1 << 20, 1 << 19);
            let keys: Vec<_> = (0..256u32).map(|i| (std::sync::Arc::from("col"), i)).collect();
            b.iter(|| {
                for i in 0..10_000u32 {
                    let key = &keys[(i % 256) as usize];
                    black_box(cache.touch(key, 8 << 10, 2 << 10));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sketch);
criterion_main!(benches);
