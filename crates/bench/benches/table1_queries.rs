//! Table 1 as a micro-benchmark: the three paper queries against every
//! backend (50K rows so a bench run stays quick; the experiments binary
//! scales to 5M).

use pd_baselines::{Backend, CsvBackend, DremelBackend, IoModel, RecordIoBackend};
use pd_bench::experiments::QUERIES;
use pd_bench::{logs_table, Bench};
use pd_core::{query, BuildOptions, DataStore};
use std::hint::black_box;

fn main() {
    let table = logs_table(50_000);
    let io = IoModel::default();
    let csv = CsvBackend::new(&table, io).expect("csv");
    let rio = RecordIoBackend::new(&table, io).expect("recordio");
    let dremel = DremelBackend::new(&table, io).expect("dremel");
    let store = DataStore::build(&table, &BuildOptions::basic()).expect("store");
    let _ = query(&store, QUERIES[1].1).expect("materialize date(timestamp)");

    let bench = Bench::new("table1").samples(3);
    for (name, sql) in QUERIES {
        let backends: Vec<&dyn Backend> = vec![&csv, &rio, &dremel];
        for backend in backends {
            bench.case(&format!("{}/{name}", backend.name()), || {
                black_box(backend.execute(sql).expect("query"));
            });
        }
        bench.case(&format!("PowerDrill/{name}"), || {
            black_box(query(&store, sql).expect("query"));
        });
    }
}
