//! Table 1 as a criterion bench: the three paper queries against every
//! backend (50K rows so a bench run stays quick; the experiments binary
//! scales to 5M).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pd_baselines::{Backend, CsvBackend, DremelBackend, IoModel, RecordIoBackend};
use pd_bench::experiments::QUERIES;
use pd_bench::logs_table;
use pd_core::{query, BuildOptions, DataStore};
use std::hint::black_box;

fn bench_backends(c: &mut Criterion) {
    let table = logs_table(50_000);
    let io = IoModel::default();
    let csv = CsvBackend::new(&table, io).expect("csv");
    let rio = RecordIoBackend::new(&table, io).expect("recordio");
    let dremel = DremelBackend::new(&table, io).expect("dremel");
    let store = DataStore::build(&table, &BuildOptions::basic()).expect("store");
    let _ = query(&store, QUERIES[1].1).expect("materialize date(timestamp)");

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for (name, sql) in QUERIES {
        let backends: Vec<&dyn Backend> = vec![&csv, &rio, &dremel];
        for backend in backends {
            group.bench_with_input(
                BenchmarkId::new(backend.name(), name),
                &sql,
                |b, sql| b.iter(|| black_box(backend.execute(sql).expect("query"))),
            );
        }
        group.bench_with_input(BenchmarkId::new("PowerDrill", name), &sql, |b, sql| {
            b.iter(|| black_box(query(&store, sql).expect("query")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
