//! Regenerate the paper's tables and figures.
//!
//! ```bash
//! cargo run -p pd-bench --release --bin experiments -- all
//! PD_ROWS=5000000 cargo run -p pd-bench --release --bin experiments -- table1
//! ```

use pd_bench::experiments;
use pd_bench::rows_from_env;

const USAGE: &str = "usage: experiments <subcommand> [rows]

subcommands:
  table1          Table 1  — CSV / record-io / Dremel / Basic latency+memory
  table2          Table 2  — optimized element encodings
  table3          Table 3  — Zippy on each encoding
  table4          Table 4  — step-wise summary
  trie            §3 text  — trie dictionary sizes
  reorder         §3 text  — row reordering compression factors
  codecs          §5       — Zippy / LZF / deflate / huffman / RLE comparison
  count_distinct  §5       — KMV sketch accuracy & speed
  cache           §5       — LRU vs 2Q vs ARC under scan pollution
  production      §6       — skipped/cached/scanned + disk-free fractions
  figure5         Figure 5 — latency vs bytes loaded from disk
  distributed     §4       — shard scaling, replication, tree depth
  partitioning    §2.2     — chunk threshold ablation
  elements        §3       — element encoding ablation
  subdicts        §5       — sub-dictionaries + Bloom filters
  all             everything above

rows default to $PD_ROWS or 500000.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let rows = args.get(1).and_then(|v| v.parse().ok()).unwrap_or_else(rows_from_env);

    match cmd.as_str() {
        "table1" => experiments::table1(rows),
        "table2" => experiments::table2(rows),
        "table3" => experiments::table3(rows),
        "table4" => experiments::table4(rows),
        "trie" => experiments::trie(rows),
        "reorder" => experiments::reorder(rows),
        "codecs" => experiments::codecs(rows),
        "count_distinct" => experiments::count_distinct(rows),
        "cache" => experiments::cache(rows),
        "production" => experiments::production(rows),
        "figure5" => experiments::figure5(rows),
        "distributed" => experiments::distributed(rows),
        "partitioning" => experiments::partitioning(rows),
        "elements" => experiments::elements(rows),
        "subdicts" => experiments::subdicts(rows),
        "all" => experiments::all(rows),
        other => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}
