//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each function prints the measured numbers next to the paper's published
//! ones (measured on 5M rows of Google's logs on 2008-era hardware — the
//! *shape* is what should match, not the absolute values).

use crate::harness::{logs_table, mb, measure_n, TablePrinter};
use pd_baselines::{Backend, CsvBackend, DremelBackend, IoModel, RecordIoBackend};
use pd_compress::CodecKind;
use pd_core::memory::{compressed_chunks_for_query, compressed_for_query, report_for_query};
use pd_core::{
    query, BuildOptions, CachePolicy, DataStore, ExecContext, PartitionSpec, TieredCache,
};
use pd_data::Table;
use pd_dist::{
    run_production, Cluster, ClusterConfig, DrillDownWorkload, LoadModel, TreeShape, WorkloadSpec,
};
use pd_encoding::{Elements, ElementsMode, PackedInts, SubDictIndex, SubDictLayout};
use pd_sql::{analyze, parse_query};
use std::sync::Arc;
use std::time::Duration;

pub const Q1: &str =
    "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;";
pub const Q2: &str = "SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data GROUP BY date ORDER BY date ASC LIMIT 10;";
pub const Q3: &str =
    "SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10;";

pub const QUERIES: [(&str, &str); 3] = [("Q1", Q1), ("Q2", Q2), ("Q3", Q3)];

/// The paper's partitioning for these logs (§3: "we use the field order
/// country, table_name and we set the threshold [...] to 50'000 rows").
pub fn paper_partition(rows: usize) -> PartitionSpec {
    // Keep roughly the paper's chunk-count-to-row ratio when scaling down
    // (5M rows / 50'000 ≈ 150 chunks).
    let threshold = (rows / 100).clamp(500, 50_000);
    PartitionSpec::new(&["country", "table_name"], threshold)
}

fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1000.0;
    if ms < 10.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.0}")
    }
}

/// Table 1: latency and memory of CSV, record-io, Dremel-like, and the
/// basic data structures.
pub fn table1(rows: usize) {
    println!("\n=== Table 1: CSV vs record-io vs Dremel vs Basic ({rows} rows) ===");
    println!("paper (5M rows): latency ms  CSV 55099/75207/71778 | rec-io 27134/50587/39235 | Dremel 7874/18191/48628 | Basic 20/2144/686");
    println!("paper (5M rows): memory MB   CSV 573.3 | rec-io 551.1 | Dremel 27.9/60.4/90.8 | Basic 20.0/41.5/91.2\n");

    let table = logs_table(rows);
    let io = IoModel::default();
    let csv = CsvBackend::new(&table, io).expect("csv backend");
    let rio = RecordIoBackend::new(&table, io).expect("recordio backend");
    let dremel = DremelBackend::new(&table, io).expect("dremel backend");
    let store = DataStore::build(&table, &BuildOptions::basic()).expect("basic store");
    // Materialize Q2's virtual field up front, as the paper does ("we
    // assume that this has happened before computing Query 2").
    let _ = query(&store, Q2).expect("warmup");

    let printer = TablePrinter::new(
        &["backend", "Q1 ms", "Q2 ms", "Q3 ms", "Q1 MB", "Q2 MB", "Q3 MB"],
        &[8, 9, 9, 9, 8, 8, 8],
    );
    let backends: Vec<&dyn Backend> = vec![&csv, &rio, &dremel];
    for backend in backends {
        let mut lat = Vec::new();
        let mut mem = Vec::new();
        for (_, sql) in QUERIES {
            let t = measure_n(2, || {
                backend.execute(sql).expect("backend query");
            });
            lat.push(fmt_ms(t));
            mem.push(format!("{:.1}", mb(backend.storage_bytes(sql).expect("storage"))));
        }
        printer.row(&[backend.name(), &lat[0], &lat[1], &lat[2], &mem[0], &mem[1], &mem[2]]);
    }
    let mut lat = Vec::new();
    let mut mem = Vec::new();
    for (_, sql) in QUERIES {
        let t = measure_n(3, || {
            query(&store, sql).expect("store query");
        });
        lat.push(fmt_ms(t));
        mem.push(format!("{:.1}", mb(report_for_query(&store, sql).expect("report").total())));
    }
    printer.row(&["Basic", &lat[0], &lat[1], &lat[2], &mem[0], &mem[1], &mem[2]]);
}

/// Table 2: memory with optimized element encodings (elements-only and
/// overall).
pub fn table2(rows: usize) {
    println!("\n=== Table 2: element encodings ({rows} rows) ===");
    println!("paper (5M): elements MB Basic 20.00/40.73/24.21 | Chunks 20.07/47.26/24.29 | OptCols 0.08/22.26/14.29");
    println!("paper (5M): overall  MB Basic 20.00/41.45/91.23 | Chunks 20.07/47.99/91.32 | OptCols 0.08/22.99/81.32\n");

    let table = logs_table(rows);
    let spec = paper_partition(rows);
    let variants = [
        ("Basic", BuildOptions::basic()),
        ("Chunks", BuildOptions::chunked(spec.clone())),
        ("OptCols", BuildOptions::optcols(spec)),
    ];
    let printer = TablePrinter::new(
        &["variant", "elems Q1", "elems Q2", "elems Q3", "all Q1", "all Q2", "all Q3"],
        &[8, 9, 9, 9, 9, 9, 9],
    );
    for (name, options) in variants {
        let store = DataStore::build(&table, &options).expect("store");
        let mut elems = Vec::new();
        let mut all = Vec::new();
        for (_, sql) in QUERIES {
            let report = report_for_query(&store, sql).expect("report");
            elems.push(format!("{:.2}", mb(report.elements_and_chunk_dicts())));
            all.push(format!("{:.2}", mb(report.total())));
        }
        printer.row(&[name, &elems[0], &elems[1], &elems[2], &all[0], &all[1], &all[2]]);
    }
}

/// Table 3: applying Zippy to the individual encodings.
pub fn table3(rows: usize) {
    println!("\n=== Table 3: Zippy on each encoding ({rows} rows) ===");
    println!("paper (5M): compressed MB Basic 3.02/17.35/17.70 | Chunks 0.28/16.34/12.19 | OptCols 0.04/16.32/12.19 | OptDicts 0.04/16.32/12.40\n");

    let table = logs_table(rows);
    let spec = paper_partition(rows);
    let variants = [
        ("Basic", BuildOptions::basic()),
        ("Chunks", BuildOptions::chunked(spec.clone())),
        ("OptCols", BuildOptions::optcols(spec.clone())),
        ("OptDicts", BuildOptions::optdicts(spec)),
    ];
    let printer = TablePrinter::new(
        &["variant", "raw Q1", "raw Q2", "raw Q3", "zip Q1", "zip Q2", "zip Q3"],
        &[8, 9, 9, 9, 9, 9, 9],
    );
    for (name, options) in variants {
        let store = DataStore::build(&table, &options).expect("store");
        let mut raw = Vec::new();
        let mut zip = Vec::new();
        for (_, sql) in QUERIES {
            raw.push(format!("{:.2}", mb(report_for_query(&store, sql).expect("report").total())));
            zip.push(format!(
                "{:.2}",
                mb(compressed_for_query(&store, sql, CodecKind::Zippy).expect("compress"))
            ));
        }
        printer.row(&[name, &raw[0], &raw[1], &raw[2], &zip[0], &zip[1], &zip[2]]);
    }
}

/// Table 4: the complete step-wise summary.
pub fn table4(rows: usize) {
    println!("\n=== Table 4: step-wise optimization summary ({rows} rows) ===");
    println!("paper (5M) MB: Dremel 27.94/60.37/90.79 | Basic 20.00/41.45/91.23 | Chunks 20.07/47.99/91.32 | OptCols 0.08/22.99/81.32 | OptDicts 0.08/22.98/17.66 | Zippy 0.04/16.32/12.40 | Reorder 0.03/12.13/5.63\n");

    let table = logs_table(rows);
    let spec = paper_partition(rows);
    let printer = TablePrinter::new(&["variant", "Q1 MB", "Q2 MB", "Q3 MB"], &[8, 10, 10, 10]);

    // Dremel reference row (compressed columnar storage of touched columns).
    let dremel = DremelBackend::new(&table, IoModel::default()).expect("dremel");
    let d: Vec<String> = QUERIES
        .iter()
        .map(|(_, sql)| format!("{:.2}", mb(dremel.storage_bytes(sql).expect("storage"))))
        .collect();
    printer.row(&["Dremel", &d[0], &d[1], &d[2]]);

    let variants = [
        ("Basic", BuildOptions::basic()),
        ("Chunks", BuildOptions::chunked(spec.clone())),
        ("OptCols", BuildOptions::optcols(spec.clone())),
        ("OptDicts", BuildOptions::optdicts(spec.clone())),
    ];
    for (name, options) in variants {
        let store = DataStore::build(&table, &options).expect("store");
        let r: Vec<String> = QUERIES
            .iter()
            .map(|(_, sql)| {
                format!("{:.2}", mb(report_for_query(&store, sql).expect("report").total()))
            })
            .collect();
        printer.row(&[name, &r[0], &r[1], &r[2]]);
    }

    // Zippy + Reorder rows are compressed sizes.
    let optdicts = DataStore::build(&table, &BuildOptions::optdicts(spec.clone())).expect("store");
    let z: Vec<String> = QUERIES
        .iter()
        .map(|(_, sql)| {
            format!(
                "{:.2}",
                mb(compressed_for_query(&optdicts, sql, CodecKind::Zippy).expect("zip"))
            )
        })
        .collect();
    printer.row(&["Zippy", &z[0], &z[1], &z[2]]);

    let reordered = DataStore::build(&table, &BuildOptions::reordered(spec)).expect("store");
    let r: Vec<String> = QUERIES
        .iter()
        .map(|(_, sql)| {
            format!(
                "{:.2}",
                mb(compressed_for_query(&reordered, sql, CodecKind::Zippy).expect("zip"))
            )
        })
        .collect();
    printer.row(&["Reorder", &r[0], &r[1], &r[2]]);
}

/// §3 text: the trie shrinks the table_name global dictionary (67.03 MB →
/// 3.37 MB in the paper) and Q3's overall footprint (81.32 → 17.66 MB).
pub fn trie(rows: usize) {
    println!("\n=== Trie dictionaries ({rows} rows) ===");
    println!("paper (5M): table_name dict 67.03 MB -> 3.37 MB; Q3 overall 81.32 MB -> 17.66 MB\n");

    let table = logs_table(rows);
    let spec = paper_partition(rows);
    let sorted = DataStore::build(&table, &BuildOptions::optcols(spec.clone())).expect("store");
    let trie = DataStore::build(&table, &BuildOptions::optdicts(spec)).expect("store");
    let s = report_for_query(&sorted, Q3).expect("report");
    let t = report_for_query(&trie, Q3).expect("report");
    let printer = TablePrinter::new(&["dict", "table_name dict MB", "Q3 overall MB"], &[8, 20, 15]);
    printer.row(&[
        "sorted",
        &format!("{:.2}", mb(s.dict_bytes())),
        &format!("{:.2}", mb(s.total())),
    ]);
    printer.row(&["trie", &format!("{:.2}", mb(t.dict_bytes())), &format!("{:.2}", mb(t.total()))]);
    println!(
        "\ndict reduction: {:.1}x | overall reduction: {:.1}x (paper: 19.9x and 4.6x)",
        s.dict_bytes() as f64 / t.dict_bytes().max(1) as f64,
        s.total() as f64 / t.total().max(1) as f64
    );
}

/// §3 text: reordering improves the compressed elements + chunk dicts by
/// factors 1.2 / 1.3 / 2.8 for Q1 / Q2 / Q3.
pub fn reorder(rows: usize) {
    println!("\n=== Row reordering ({rows} rows) ===");
    println!("paper (5M): compression improvement on elements+chunk-dicts 1.2x / 1.3x / 2.8x (Q1/Q2/Q3)\n");

    let table = logs_table(rows);
    let spec = paper_partition(rows);
    let plain = DataStore::build(&table, &BuildOptions::optdicts(spec.clone())).expect("store");
    let sorted = DataStore::build(&table, &BuildOptions::reordered(spec)).expect("store");
    let printer =
        TablePrinter::new(&["query", "plain KB", "reordered KB", "factor"], &[6, 12, 13, 7]);
    for (name, sql) in QUERIES {
        let a = compressed_chunks_for_query(&plain, sql, CodecKind::Zippy).expect("zip");
        let b = compressed_chunks_for_query(&sorted, sql, CodecKind::Zippy).expect("zip");
        printer.row(&[
            name,
            &format!("{:.1}", a as f64 / 1024.0),
            &format!("{:.1}", b as f64 / 1024.0),
            &format!("{:.2}x", a as f64 / b.max(1) as f64),
        ]);
    }
}

/// §5 "Other Compression Algorithms": ratio and speed of every codec over
/// real column payloads.
pub fn codecs(rows: usize) {
    println!("\n=== Codecs ({rows} rows of column payloads) ===");
    println!("paper: Huffman stage +20-30% ratio but ~10x slower; LZO variant ~10% better ratio, up to 2x faster decompression than Zippy\n");

    let table = logs_table(rows);
    let store =
        DataStore::build(&table, &BuildOptions::optdicts(paper_partition(rows))).expect("store");
    // Payload: the serialized table_name column (dict + chunks).
    let col = store.column("table_name").expect("column");
    let mut payload = col.dict.to_bytes();
    for chunk in &col.chunks {
        payload.extend_from_slice(&chunk.to_bytes());
    }
    println!("payload: {:.2} MB of dictionary + chunk data", mb(payload.len()));

    let printer =
        TablePrinter::new(&["codec", "ratio", "compress MB/s", "decompress MB/s"], &[8, 7, 14, 16]);
    for kind in CodecKind::ALL {
        if kind == CodecKind::None {
            continue;
        }
        let codec = kind.codec();
        let compressed = codec.compress(&payload);
        let t_c = measure_n(2, || {
            std::hint::black_box(codec.compress(&payload));
        });
        let t_d = measure_n(2, || {
            std::hint::black_box(codec.decompress(&compressed).expect("decompress"));
        });
        printer.row(&[
            codec.name(),
            &format!("{:.2}", payload.len() as f64 / compressed.len() as f64),
            &format!("{:.0}", mb(payload.len()) / t_c.as_secs_f64()),
            &format!("{:.0}", mb(payload.len()) / t_d.as_secs_f64()),
        ]);
    }
}

/// §5 count distinct: sketch accuracy and speed vs exact counting.
pub fn count_distinct(rows: usize) {
    println!("\n=== Approximate count distinct ({rows} rows) ===");
    println!("paper: m in the order of a couple of thousand; estimate = m/v\n");

    let table = logs_table(rows);
    let store = DataStore::build(&table, &BuildOptions::basic()).expect("store");
    let sql = "SELECT COUNT(DISTINCT table_name) FROM data";
    let analyzed = analyze(&parse_query(sql).expect("parse")).expect("analyze");

    // Exact via a saturated sketch.
    let exact_ctx = ExecContext { sketch_m: 1 << 22, ..Default::default() };
    let (exact_result, _) = pd_core::execute(&store, &analyzed, &exact_ctx).expect("exact");
    let exact = exact_result.rows[0].0[0].as_int().expect("int") as f64;
    println!("exact distinct table_names: {exact}");

    let printer = TablePrinter::new(&["m", "estimate", "error %", "time ms"], &[8, 10, 9, 9]);
    for m in [256usize, 1024, 4096, 16384] {
        let ctx = ExecContext { sketch_m: m, ..Default::default() };
        let mut est = 0.0;
        let t = measure_n(2, || {
            let (r, _) = pd_core::execute(&store, &analyzed, &ctx).expect("query");
            est = r.rows[0].0[0].as_int().expect("int") as f64;
        });
        printer.row(&[
            &m.to_string(),
            &format!("{est:.0}"),
            &format!("{:.2}", 100.0 * (est - exact).abs() / exact),
            &fmt_ms(t),
        ]);
    }
}

/// §5 cache heuristics: LRU vs 2Q vs ARC under a drill-down stream
/// polluted by one-time scans.
pub fn cache(rows: usize) {
    println!("\n=== Cache eviction policies ({rows} rows) ===");
    println!("paper: one-time scans invalidate LRU; production uses an ARC/2Q-like policy\n");

    let table = logs_table(rows);
    let store =
        DataStore::build(&table, &BuildOptions::reordered(paper_partition(rows))).expect("store");
    // Budget ~12% of the hot columns so eviction pressure is real.
    let hot_bytes = report_for_query(&store, Q1).expect("r").total()
        + report_for_query(&store, Q3).expect("r").total();
    let budget = (hot_bytes / 8).max(1 << 16);

    // Hot queries (repeated) + a periodic one-time scan over other columns.
    let hot = [Q1, Q3];
    let scans = [
        "SELECT user, COUNT(*) c FROM data GROUP BY user ORDER BY c DESC LIMIT 5",
        "SELECT country, SUM(latency) s FROM data GROUP BY country ORDER BY s DESC LIMIT 5",
        "SELECT user, MIN(timestamp), MAX(timestamp) FROM data GROUP BY user ORDER BY user ASC LIMIT 5",
        "SELECT date(timestamp) as d, AVG(latency) a FROM data GROUP BY d ORDER BY a DESC LIMIT 5",
    ];

    let printer = TablePrinter::new(&["policy", "disk MB", "decompressed MB"], &[8, 10, 16]);
    for policy in [CachePolicy::Lru, CachePolicy::TwoQ, CachePolicy::Arc] {
        let ctx = ExecContext {
            sketch_m: 0,
            threads: 0,
            result_cache: None, // isolate the data-layer caches
            tiered: Some(Arc::new(TieredCache::new(policy, budget, budget / 2))),
            kernels: Default::default(),
        };
        let mut disk = 0u64;
        let mut decompressed = 0u64;
        for round in 0..12 {
            for sql in hot {
                let a = analyze(&parse_query(sql).expect("parse")).expect("analyze");
                let (_, stats) = pd_core::execute(&store, &a, &ctx).expect("query");
                disk += stats.disk_bytes;
                decompressed += stats.decompressed_bytes;
            }
            // Every third round a one-time scan sweeps through.
            if round % 3 == 2 {
                let sql = scans[(round / 3) % scans.len()];
                let a = analyze(&parse_query(sql).expect("parse")).expect("analyze");
                let (_, stats) = pd_core::execute(&store, &a, &ctx).expect("query");
                disk += stats.disk_bytes;
                decompressed += stats.decompressed_bytes;
            }
        }
        let name = match policy {
            CachePolicy::Lru => "LRU",
            CachePolicy::TwoQ => "2Q",
            CachePolicy::Arc => "ARC",
        };
        printer.row(&[
            name,
            &format!("{:.2}", disk as f64 / (1024.0 * 1024.0)),
            &format!("{:.2}", decompressed as f64 / (1024.0 * 1024.0)),
        ]);
    }
}

/// Build the §6-style cluster for a dataset size.
fn production_cluster(table: &Table, rows: usize) -> Cluster {
    let shards = (rows / 62_500).clamp(2, 16);
    let shard_rows = rows / shards;
    let mut build = BuildOptions::production(&["country", "table_name"]);
    if let Some(spec) = &mut build.partition {
        // Keep the paper's ~120 chunks per shard when scaling down.
        spec.max_chunk_rows = (shard_rows / 120).clamp(200, 50_000);
    }
    // Shard-result caching off: §6 measures leaf-side skipping and chunk
    // caching; a root-side cache would absorb every repeated query before
    // the leaves see it (that effect is measured by `benches/shard_fanout`
    // and the ablation in `distributed`).
    Cluster::build(
        table,
        &ClusterConfig {
            shards,
            build,
            cache_budget: 512 << 20,
            shard_cache: 0,
            ..Default::default()
        },
    )
    .expect("cluster")
}

/// §6: production statistics — skipped / cached / scanned percentages,
/// disk-free query fraction, per-click latency.
pub fn production(rows: usize) {
    println!("\n=== Production workload (§6) ({rows} rows) ===");
    println!("paper: 92.41% skipped, 5.02% cached, 2.66% scanned; >70% of queries disk-free; ~20 queries per click\n");

    let table = logs_table(rows);
    let cluster = production_cluster(&table, rows);
    let workload = DrillDownWorkload::generate(
        &table,
        &WorkloadSpec { clicks: 60, queries_per_click: 20, max_drill_depth: 6, seed: 11 },
    )
    .expect("workload");
    println!(
        "replaying {} queries ({} clicks x 20) over {} shards ...",
        workload.query_count(),
        workload.clicks.len(),
        cluster.shard_count()
    );
    let report = run_production(&cluster, &workload).expect("production run");

    println!("\nrows skipped : {:6.2}%   (paper: 92.41%)", report.skipped_percent());
    println!("rows cached  : {:6.2}%   (paper:  5.02%)", report.cached_percent());
    println!("rows scanned : {:6.2}%   (paper:  2.66%)", report.scanned_percent());
    println!("disk-free queries: {:5.1}%   (paper: >70%)", 100.0 * report.disk_free_fraction());
    let avg_latency: Duration =
        report.queries.iter().map(|q| q.latency).sum::<Duration>() / report.queries.len() as u32;
    println!("avg modeled per-query latency: {avg_latency:?}   (paper: under 2 seconds per query)");
    let disk_free: Vec<&pd_dist::workload::QueryRecord> =
        report.queries.iter().filter(|q| q.stats.disk_free()).collect();
    if !disk_free.is_empty() {
        let avg: Duration =
            disk_free.iter().map(|q| q.latency).sum::<Duration>() / disk_free.len() as u32;
        println!("avg latency of disk-free queries: {avg:?}");
    }
    figure5_print(&report);
}

/// Figure 5: average latency by disk bytes loaded (log2 buckets).
pub fn figure5(rows: usize) {
    println!("\n=== Figure 5 ({rows} rows) ===");
    println!("paper: latency grows with the amount of data loaded from disk; >70% of queries load nothing\n");
    let table = logs_table(rows);
    let cluster = production_cluster(&table, rows);
    let workload = DrillDownWorkload::generate(
        &table,
        &WorkloadSpec { clicks: 30, queries_per_click: 10, max_drill_depth: 5, seed: 23 },
    )
    .expect("workload");
    let report = run_production(&cluster, &workload).expect("production run");
    figure5_print(&report);
}

fn figure5_print(report: &pd_dist::workload::ProductionReport) {
    println!("\nFigure 5: avg latency by disk bytes loaded (log2 buckets)");
    let buckets = report.figure5_buckets();
    let max_latency =
        buckets.iter().map(|(_, d, _)| d.as_secs_f64()).fold(0.0f64, f64::max).max(1e-9);
    for (bucket, latency, n) in buckets {
        let label =
            if bucket == 0 { "   none".to_owned() } else { format!(">=2^{:02}B", bucket - 1) };
        let bar = "#".repeat((latency.as_secs_f64() / max_latency * 40.0).ceil() as usize);
        println!("{label}  {:>9.3?}  {n:>4} queries  {bar}", latency);
    }
}

/// §4 ablations: tree fanout, shard scaling, replication tail latency.
pub fn distributed(rows: usize) {
    println!("\n=== Distributed execution (§4) ({rows} rows) ===");
    let table = logs_table(rows);
    let sql = "SELECT country, COUNT(*) as c, SUM(latency) as s FROM data GROUP BY country ORDER BY c DESC LIMIT 10";

    println!("\nshard scaling (replication on, warm caches):");
    let printer = TablePrinter::new(&["shards", "p50 latency", "p95 latency"], &[6, 14, 14]);
    for shards in [2usize, 4, 8, 16] {
        let mut build = BuildOptions::production(&["country", "table_name"]);
        if let Some(spec) = &mut build.partition {
            spec.max_chunk_rows = (rows / shards / 60).clamp(200, 50_000);
        }
        let cluster = Cluster::build(
            &table,
            &ClusterConfig { shards, build, shard_cache: 0, ..Default::default() },
        )
        .expect("cluster");
        for _ in 0..3 {
            cluster.query(sql).expect("warmup"); // warm chunk caches
        }
        let mut latencies: Vec<Duration> =
            (0..30).map(|_| cluster.query(sql).expect("query").latency).collect();
        latencies.sort();
        let p50 = latencies[latencies.len() / 2];
        let p95 = latencies[latencies.len() * 95 / 100];
        printer.row(&[&shards.to_string(), &format!("{p50:?}"), &format!("{p95:?}")]);
    }

    println!("\nreplication under heavy load fluctuation (warm caches):");
    let printer = TablePrinter::new(&["replication", "p50 latency", "p95 latency"], &[11, 14, 14]);
    for replication in [false, true] {
        let mut build = BuildOptions::production(&["country", "table_name"]);
        if let Some(spec) = &mut build.partition {
            spec.max_chunk_rows = (rows / 8 / 60).clamp(200, 50_000);
        }
        let cluster = Cluster::build(
            &table,
            &ClusterConfig {
                shards: 8,
                replication,
                build,
                load: LoadModel { busy_probability: 0.3, blocked_probability: 0.08, seed: 3 },
                shard_cache: 0, // hits bypass the load model being measured
                ..Default::default()
            },
        )
        .expect("cluster");
        for _ in 0..3 {
            cluster.query(sql).expect("warmup");
        }
        let mut latencies: Vec<Duration> =
            (0..40).map(|_| cluster.query(sql).expect("query").latency).collect();
        latencies.sort();
        let p50 = latencies[latencies.len() / 2];
        let p95 = latencies[latencies.len() * 95 / 100];
        printer.row(&[
            if replication { "primary+rep" } else { "primary" },
            &format!("{p50:?}"),
            &format!("{p95:?}"),
        ]);
    }

    println!("\nshard-result cache (drill-down replay, 8 shards):");
    let printer = TablePrinter::new(&["cache", "total latency", "shard hits"], &[7, 14, 10]);
    for shard_cache in [0usize, 1024] {
        let mut build = BuildOptions::production(&["country", "table_name"]);
        if let Some(spec) = &mut build.partition {
            spec.max_chunk_rows = (rows / 8 / 60).clamp(200, 50_000);
        }
        let cluster = Cluster::build(
            &table,
            &ClusterConfig { shards: 8, build, shard_cache, ..Default::default() },
        )
        .expect("cluster");
        let workload = DrillDownWorkload::generate(
            &table,
            &WorkloadSpec { clicks: 10, queries_per_click: 10, max_drill_depth: 4, seed: 5 },
        )
        .expect("workload");
        let report = run_production(&cluster, &workload).expect("replay");
        let total: Duration = report.queries.iter().map(|q| q.latency).sum();
        printer.row(&[
            if shard_cache == 0 { "off" } else { "on" },
            &format!("{total:?}"),
            &report.shard_cache_hits().to_string(),
        ]);
    }

    println!("\ntree depth by fanout (1024 leaves):");
    for fanout in [2usize, 4, 16, 64] {
        println!("  fanout {fanout:>3}: depth {}", TreeShape { fanout }.depth(1024));
    }
}

/// §2.2 ablation: chunk-size threshold sensitivity.
pub fn partitioning(rows: usize) {
    println!("\n=== Partitioning threshold ablation ({rows} rows) ===");
    println!("paper: threshold 50'000 at 5M rows (~150 chunks); smaller chunks skip more but cost memory\n");

    let table = logs_table(rows);
    let selective = "SELECT table_name, COUNT(*) c FROM data WHERE country = 'SG' GROUP BY table_name ORDER BY c DESC LIMIT 5";
    let printer = TablePrinter::new(
        &["threshold", "chunks", "skip %", "Q1 mem KB", "Q3 mem KB"],
        &[9, 7, 7, 10, 10],
    );
    for divisor in [20usize, 60, 200, 600] {
        let threshold = (rows / divisor).max(50);
        let spec = PartitionSpec::new(&["country", "table_name"], threshold);
        let store = DataStore::build(&table, &BuildOptions::reordered(spec)).expect("store");
        let (_, stats) = query(&store, selective).expect("query");
        let q1 = report_for_query(&store, Q1).expect("report").total();
        let q3 = report_for_query(&store, Q3).expect("report").total();
        printer.row(&[
            &threshold.to_string(),
            &store.chunk_count().to_string(),
            &format!("{:.1}", 100.0 * stats.skipped_fraction()),
            &format!("{:.0}", q1 as f64 / 1024.0),
            &format!("{:.0}", q3 as f64 / 1024.0),
        ]);
    }
}

/// §3 ablation: element encodings vs exact bit packing.
pub fn elements(rows: usize) {
    println!("\n=== Element encoding ablation ({rows} rows) ===");
    println!("paper uses byte-aligned widths (0 bit / bit-set / 1 / 2 / 4 bytes); exact bit packing trades alignment for size\n");

    let table = logs_table(rows);
    let store =
        DataStore::build(&table, &BuildOptions::optdicts(paper_partition(rows))).expect("store");
    let printer = TablePrinter::new(
        &["column", "basic KB", "optimized KB", "bit-packed KB"],
        &[12, 10, 13, 14],
    );
    for name in ["country", "table_name", "user"] {
        let col = store.column(name).expect("column");
        let mut basic = 0usize;
        let mut optimized = 0usize;
        let mut packed = 0usize;
        for chunk in &col.chunks {
            let ids: Vec<u32> = chunk.elements.iter().collect();
            let n = chunk.dict.len();
            basic += Elements::encode(&ids, n, ElementsMode::Basic).to_bytes().len();
            optimized += Elements::encode(&ids, n, ElementsMode::Optimized).to_bytes().len();
            let p: PackedInts = ids.iter().copied().collect();
            packed += (p.len() * p.width() as usize).div_ceil(8);
        }
        printer.row(&[
            name,
            &format!("{:.0}", basic as f64 / 1024.0),
            &format!("{:.0}", optimized as f64 / 1024.0),
            &format!("{:.0}", packed as f64 / 1024.0),
        ]);
    }
}

/// §5 "Further Optimizing the Global-Dictionaries": sub-dictionaries +
/// Bloom filters — dictionary bytes loaded per query when only a few
/// chunks are active.
pub fn subdicts(rows: usize) {
    println!("\n=== Sub-dictionaries + Bloom filters ({rows} rows) ===");
    println!("paper: \"When processing a query with few active chunks, only a few of these sub-dictionaries need to be loaded into memory\"; Bloom filters avoid loads for absent values\n");

    let table = logs_table(rows);
    let store =
        DataStore::build(&table, &BuildOptions::optdicts(paper_partition(rows))).expect("store");
    let col = store.column("table_name").expect("column");

    // Frequencies per global-id (drives the hot sub-dictionary).
    let mut freq = vec![0u64; col.dict.len() as usize];
    for chunk in &col.chunks {
        let mut counts = vec![0u64; chunk.dict.len() as usize];
        chunk.elements.for_each(|id| counts[id as usize] += 1);
        for (cid, n) in counts.iter().enumerate() {
            freq[chunk.dict.global_id_of(cid as u32) as usize] += n;
        }
    }
    let chunk_ids: Vec<Vec<u32>> = col.chunks.iter().map(|c| c.dict.iter().collect()).collect();
    let byte_size = |g: u32| col.dict.value(g).render().len() + 8;
    let index = SubDictIndex::build(&chunk_ids, &freq, byte_size, SubDictLayout::default());
    let full_dict: usize = (0..col.dict.len()).map(byte_size).sum();

    // Drill-down probes: one country restriction each (the partition's
    // first field) — the query `WHERE country = X GROUP BY table_name`
    // touches only that country's chunks, and the table_name dictionary is
    // needed only for their values. Chunks of one country are contiguous
    // (range partitioning), so they share few sub-dictionary groups.
    let country = store.column("country").expect("column");
    let mut monolithic = 0u64;
    let mut with_subdicts = 0u64;
    let mut active_total = 0usize;
    let mut probes = 0usize;
    for g in 0..country.dict.len() {
        let active: Vec<u32> = country
            .chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.dict.chunk_id_of(g).is_some())
            .map(|(i, _)| i as u32)
            .collect();
        active_total += active.len();
        probes += 1;
        // Cold model: a monolithic dictionary loads entirely; sub-dicts
        // load only the groups covering the active chunks.
        monolithic += full_dict as u64;
        with_subdicts += index.bytes_for_chunks(&active) as u64;
    }
    println!(
        "table_name dictionary: {:.2} MB total | hot sub-dict (resident): {:.3} MB | {} groups",
        mb(full_dict),
        mb(index.hot_bytes),
        index.groups.len()
    );
    println!(
        "{probes} per-country drill-down probes, avg {:.1} active chunks of {}:",
        active_total as f64 / probes as f64,
        col.chunks.len()
    );
    println!(
        "  monolithic dictionary: {:.3} MB loaded per query (cold)",
        mb((monolithic / probes as u64) as usize)
    );
    println!(
        "  sub-dictionaries     : {:.3} MB loaded per query  -> {:.1}x less",
        mb((with_subdicts / probes as u64) as usize),
        monolithic as f64 / with_subdicts.max(1) as f64,
    );

    // Bloom filters: probes for values absent from the dictionary need no
    // group loads at all.
    let false_positives =
        (0..2_000u32).filter(|i| index.may_need_group_load(col.dict.len() + 1 + i * 37)).count();
    println!(
        "  Bloom filters: {false_positives} of 2000 absent-value probes would load a group (false-positive rate {:.2}%)",
        false_positives as f64 / 20.0
    );
}

/// Run everything.
pub fn all(rows: usize) {
    table1(rows);
    table2(rows);
    table3(rows);
    table4(rows);
    trie(rows);
    reorder(rows);
    codecs(rows);
    count_distinct(rows);
    cache(rows);
    production(rows);
    distributed(rows);
    partitioning(rows);
    elements(rows);
    subdicts(rows);
}
