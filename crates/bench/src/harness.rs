//! Dataset setup, timing, table printing, and a small bench reporter.
//!
//! The bench targets under `benches/` are plain `harness = false` binaries
//! built on [`Bench`] (the container carries no external bench framework):
//! each case is warmed up once, timed over a fixed number of iterations,
//! and reported as min/mean time per iteration plus derived throughput.
//!
//! Two environment knobs drive CI:
//!
//! - `BENCH_QUICK=1` — smoke mode: datasets shrink ~10× and sample counts
//!   drop to 2, so every bench finishes in seconds while still executing
//!   its full code path (the bench-smoke CI job runs all benches this way
//!   and fails on any panic);
//! - `PD_BENCH_JSON=1` — emit one JSON line per case ([`json_line`]:
//!   `group`, `bench`, `median_ns`, `min_ns`, optional extras), which CI
//!   collects into the `BENCH_N.json` perf-trajectory artifact.

use pd_data::{generate_logs, LogsSpec, Table};
use std::time::{Duration, Instant};

/// Smoke mode: `BENCH_QUICK=1` shrinks datasets and sample counts so the
/// whole bench suite runs in CI on every push.
pub fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Row count for experiments: `PD_ROWS` overrides; otherwise `default`,
/// shrunk 10× (floor 10'000) in [`quick`] mode.
pub fn rows_from_env_or(default: usize) -> usize {
    if let Some(rows) = std::env::var("PD_ROWS").ok().and_then(|v| v.parse().ok()) {
        return rows;
    }
    if quick() {
        (default / 10).max(10_000).min(default)
    } else {
        default
    }
}

/// Row count for experiments: `PD_ROWS` env var, default 500'000.
pub fn rows_from_env() -> usize {
    rows_from_env_or(500_000)
}

/// The experiment dataset (the paper's "our own logs" profile).
pub fn logs_table(rows: usize) -> Table {
    generate_logs(&LogsSpec::scaled(rows))
}

/// Wall-clock of one invocation.
pub fn measure(mut f: impl FnMut()) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Minimum wall-clock over `n` invocations (after one warmup).
pub fn measure_n(n: usize, mut f: impl FnMut()) -> Duration {
    f();
    (0..n.max(1)).map(|_| measure(&mut f)).min().expect("n >= 1")
}

/// Per-iteration timing summary over several samples.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest sample — the least-noise number, used for display and
    /// case-vs-case comparisons.
    pub min: Duration,
    /// Median sample — the robust number the perf-trajectory record keeps.
    pub median: Duration,
}

/// Time `n` samples (after one warmup; `n` halves to 2 in [`quick`] mode)
/// and summarize.
pub fn measure_stats(n: usize, mut f: impl FnMut()) -> Stats {
    let n = if quick() { n.clamp(1, 2) } else { n.max(1) };
    f();
    let mut samples: Vec<Duration> = (0..n).map(|_| measure(&mut f)).collect();
    samples.sort_unstable();
    Stats { min: samples[0], median: samples[samples.len() / 2] }
}

/// Emit one machine-readable line for the `BENCH_N.json` trajectory (only
/// with `PD_BENCH_JSON=1`). `extras` are appended verbatim as additional
/// JSON fields, e.g. `[("bytes", "7800")]`.
pub fn json_line(group: &str, bench: &str, stats: Stats, extras: &[(&str, String)]) {
    if std::env::var("PD_BENCH_JSON").is_err() {
        return;
    }
    let mut line = format!(
        "{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"median_ns\":{},\"min_ns\":{}",
        stats.median.as_nanos(),
        stats.min.as_nanos()
    );
    for (key, value) in extras {
        line.push_str(&format!(",\"{key}\":{value}"));
    }
    line.push('}');
    println!("{line}");
}

/// Bytes → MB with the paper's two decimals.
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Minimal bench runner: named cases, per-iteration timing, throughput.
pub struct Bench {
    group: String,
    /// Samples (timed repetitions) per case.
    samples: usize,
}

impl Bench {
    pub fn new(group: &str) -> Bench {
        println!("\n=== bench: {group} ===");
        Bench { group: group.to_owned(), samples: 5 }
    }

    pub fn samples(mut self, samples: usize) -> Bench {
        self.samples = samples.max(1);
        self
    }

    /// Time `f` (one iteration per sample, one warmup) and report. Returns
    /// the minimum per-iteration time for callers that compare cases.
    pub fn case(&self, name: &str, mut f: impl FnMut()) -> Duration {
        let stats = measure_stats(self.samples, &mut f);
        self.report(name, stats, None);
        stats.min
    }

    /// Like [`Bench::case`] with an element-throughput annotation.
    pub fn case_throughput(&self, name: &str, elements: u64, mut f: impl FnMut()) -> Duration {
        let stats = measure_stats(self.samples, &mut f);
        self.report(name, stats, Some(elements));
        stats.min
    }

    fn report(&self, name: &str, stats: Stats, elements: Option<u64>) {
        let best = stats.min;
        let per_iter = best.as_secs_f64();
        let throughput = elements.map(|n| n as f64 / per_iter.max(1e-12));
        match throughput {
            Some(t) if t >= 1e6 => {
                println!("{name:<42} {:>12}  {:>10.1} Melem/s", fmt_duration(best), t / 1e6)
            }
            Some(t) => println!("{name:<42} {:>12}  {t:>10.0} elem/s", fmt_duration(best)),
            None => println!("{name:<42} {:>12}", fmt_duration(best)),
        }
        let extras: Vec<(&str, String)> =
            elements.map(|n| ("elements", n.to_string())).into_iter().collect();
        json_line(&self.group, name, stats, &extras);
    }
}

/// Human-readable duration with ~3 significant digits.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Fixed-width table printer for experiment output.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    pub fn new(headers: &[&str], widths: &[usize]) -> TablePrinter {
        let widths: Vec<usize> =
            headers.iter().zip(widths).map(|(h, w)| (*w).max(h.len())).collect();
        let printer = TablePrinter { widths };
        printer.row(headers);
        println!("{}", "-".repeat(printer.widths.iter().sum::<usize>() + 2 * printer.widths.len()));
        printer
    }

    pub fn row<S: AsRef<str>>(&self, cells: &[S]) {
        let line: Vec<String> =
            cells.iter().zip(&self.widths).map(|(c, w)| format!("{:>w$}", c.as_ref())).collect();
        println!("{}", line.join("  "));
    }
}
