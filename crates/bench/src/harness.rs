//! Dataset setup, timing and table printing.

use pd_data::{generate_logs, LogsSpec, Table};
use std::time::{Duration, Instant};

/// Row count for experiments: `PD_ROWS` env var, default 500'000.
pub fn rows_from_env() -> usize {
    std::env::var("PD_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(500_000)
}

/// The experiment dataset (the paper's "our own logs" profile).
pub fn logs_table(rows: usize) -> Table {
    generate_logs(&LogsSpec::scaled(rows))
}

/// Wall-clock of one invocation.
pub fn measure(mut f: impl FnMut()) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Minimum wall-clock over `n` invocations (after one warmup).
pub fn measure_n(n: usize, mut f: impl FnMut()) -> Duration {
    f();
    (0..n.max(1)).map(|_| measure(&mut f)).min().expect("n >= 1")
}

/// Bytes → MB with the paper's two decimals.
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Fixed-width table printer for experiment output.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    pub fn new(headers: &[&str], widths: &[usize]) -> TablePrinter {
        let widths: Vec<usize> =
            headers.iter().zip(widths).map(|(h, w)| (*w).max(h.len())).collect();
        let printer = TablePrinter { widths };
        printer.row(headers);
        println!("{}", "-".repeat(printer.widths.iter().sum::<usize>() + 2 * printer.widths.len()));
        printer
    }

    pub fn row<S: AsRef<str>>(&self, cells: &[S]) {
        let line: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{:>w$}", c.as_ref()))
            .collect();
        println!("{}", line.join("  "));
    }
}
