//! Shared harness for the experiment binary and the micro-benchmarks.
//!
//! Every table and figure of the paper's evaluation has a regenerator in
//! [`experiments`]; `cargo run -p pd-bench --release --bin experiments --
//! all` reprints them all. Dataset size defaults to 500'000 rows (the paper
//! used 5 million; set `PD_ROWS=5000000` to match). The `benches/` targets
//! are plain binaries over [`harness::Bench`] — run them with
//! `cargo bench -p pd-bench`.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;

pub use harness::{
    fmt_duration, json_line, logs_table, mb, measure, measure_n, measure_stats, quick,
    rows_from_env, rows_from_env_or, Bench, Stats, TablePrinter,
};
