//! Shared harness for the experiment binary and the criterion benches.
//!
//! Every table and figure of the paper's evaluation has a regenerator in
//! [`experiments`]; `cargo run -p pd-bench --release --bin experiments --
//! all` reprints them all. Dataset size defaults to 500'000 rows (the paper
//! used 5 million; set `PD_ROWS=5000000` to match).

pub mod experiments;
pub mod harness;

pub use harness::{logs_table, measure, measure_n, mb, rows_from_env, TablePrinter};
