//! A packed bit vector.
//!
//! Backs the 1-bit element encoding of §3 ("in case there are two distinct
//! values a bit-set suffices; resulting in ⌈n/8⌉ bytes") and the row
//! selection masks used when evaluating `WHERE` clauses chunk by chunk.

use crate::mem::HeapSize;

/// A growable, packed vector of bits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    pub fn new() -> Self {
        BitVec::default()
    }

    /// A bit vector of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let word = if value { u64::MAX } else { 0 };
        let mut v = BitVec { words: vec![word; len.div_ceil(64)], len };
        v.clear_tail();
        v
    }

    pub fn with_capacity(bits: usize) -> Self {
        BitVec { words: Vec::with_capacity(bits.div_ceil(64)), len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Read bit `i`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit index {i} out of bounds (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self &= other`. Both vectors must have equal length.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`. Both vectors must have equal length.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Flip every bit.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// `true` if no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if every bit is set.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Iterate over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The backing 64-bit words, least-significant bit first within each
    /// word. Bits at positions `>= len()` in the final word are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterate over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * 64;
            let mut rem = w;
            std::iter::from_fn(move || {
                if rem == 0 {
                    return None;
                }
                let bit = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                Some(base + bit)
            })
        })
    }

    /// Zero any bits in the final partial word beyond `len` so that
    /// `count_ones` / `none` stay correct after `negate` / `filled`.
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut v = BitVec::with_capacity(iter.size_hint().0);
        for b in iter {
            v.push(b);
        }
        v
    }
}

impl HeapSize for BitVec {
    fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut v = BitVec::new();
        for i in 0..200 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 200);
        for i in 0..200 {
            assert_eq!(v.get(i), i % 3 == 0, "bit {i}");
        }
        v.set(1, true);
        assert!(v.get(1));
        v.set(0, false);
        assert!(!v.get(0));
    }

    #[test]
    fn filled_and_counts() {
        let ones = BitVec::filled(130, true);
        assert_eq!(ones.count_ones(), 130);
        assert!(ones.all());
        assert!(!ones.none());
        let zeros = BitVec::filled(130, false);
        assert_eq!(zeros.count_ones(), 0);
        assert!(zeros.none());
    }

    #[test]
    fn negate_respects_length() {
        let mut v = BitVec::filled(70, true);
        v.negate();
        assert!(v.none());
        v.negate();
        assert_eq!(v.count_ones(), 70);
        assert!(v.all());
    }

    #[test]
    fn boolean_algebra() {
        let a: BitVec = (0..100).map(|i| i % 2 == 0).collect();
        let b: BitVec = (0..100).map(|i| i % 3 == 0).collect();
        let mut and = a.clone();
        and.and_assign(&b);
        let mut or = a.clone();
        or.or_assign(&b);
        for i in 0..100 {
            assert_eq!(and.get(i), i % 2 == 0 && i % 3 == 0);
            assert_eq!(or.get(i), i % 2 == 0 || i % 3 == 0);
        }
    }

    #[test]
    fn iter_ones_matches_get() {
        let v: BitVec = (0..300).map(|i| i % 7 == 1).collect();
        let ones: Vec<usize> = v.iter_ones().collect();
        let expect: Vec<usize> = (0..300).filter(|i| i % 7 == 1).collect();
        assert_eq!(ones, expect);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        BitVec::filled(8, false).get(8);
    }

    #[test]
    fn empty_vector_behaviour() {
        let v = BitVec::new();
        assert!(v.is_empty());
        assert!(v.none());
        assert!(v.all()); // vacuously true
        assert_eq!(v.iter_ones().count(), 0);
    }
}
