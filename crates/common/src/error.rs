//! The workspace-wide error type.

use std::fmt;

/// Errors produced anywhere in the PowerDrill workspace.
#[derive(Debug)]
pub enum Error {
    /// SQL lexing / parsing failure.
    Parse(String),
    /// Schema violation (unknown / duplicate field, arity mismatch, ...).
    Schema(String),
    /// Type error during analysis or evaluation.
    Type(String),
    /// Malformed input data (CSV / record-io decode failure, ...).
    Data(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Feature outside the supported SQL subset.
    Unsupported(String),
    /// Internal invariant violation — a bug in this library.
    Internal(String),
}

/// Workspace-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Data(m) => write!(f, "data error: {m}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        assert_eq!(Error::Parse("bad token".into()).to_string(), "parse error: bad token");
        assert_eq!(Error::Unsupported("JOIN".into()).to_string(), "unsupported: JOIN");
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: Error = io.into();
        assert!(err.to_string().contains("gone"));
        assert!(err.source().is_some());
        assert!(Error::Type("t".into()).source().is_none());
    }
}
