//! The workspace-wide error type.

use std::fmt;

/// Errors produced anywhere in the PowerDrill workspace.
#[derive(Debug)]
pub enum Error {
    /// SQL lexing / parsing failure.
    Parse(String),
    /// Schema violation (unknown / duplicate field, arity mismatch, ...).
    Schema(String),
    /// Type error during analysis or evaluation.
    Type(String),
    /// Malformed input data (CSV / record-io decode failure, ...).
    Data(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Feature outside the supported SQL subset.
    Unsupported(String),
    /// Internal invariant violation — a bug in this library.
    Internal(String),
    /// Typed RPC failure — retry / hedge / shed policy dispatches on
    /// the variant, never on message text.
    Rpc(RpcError),
}

/// The RPC failure taxonomy of the distributed tree. Every variant is a
/// *decision input*: `Deadline` and `PeerGone` are hedge/failover
/// triggers, `ConnRefused` is the only retryable connect error,
/// `Decode`/`VersionMismatch` poison the connection without retry, and
/// `Overloaded` is the admission-control shed signal surfaced to callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The per-query time budget ran out (locally or at a peer).
    Deadline(String),
    /// Connect refused — the peer is not (yet) listening; retryable
    /// with backoff while the budget lasts.
    ConnRefused(String),
    /// A frame or payload failed to decode; the connection is poisoned.
    Decode(String),
    /// The peer speaks a different frame version; never retried.
    VersionMismatch(String),
    /// The peer vanished mid-conversation (reset, EOF, broken pipe).
    PeerGone(String),
    /// Admission control shed this query before any fan-out.
    Overloaded(String),
}

impl RpcError {
    /// Wire tag, stable across releases (new variants append only).
    pub fn tag(&self) -> u8 {
        match self {
            RpcError::Deadline(_) => 0,
            RpcError::ConnRefused(_) => 1,
            RpcError::Decode(_) => 2,
            RpcError::VersionMismatch(_) => 3,
            RpcError::PeerGone(_) => 4,
            RpcError::Overloaded(_) => 5,
        }
    }

    /// The human-readable detail carried by every variant.
    pub fn message(&self) -> &str {
        match self {
            RpcError::Deadline(m)
            | RpcError::ConnRefused(m)
            | RpcError::Decode(m)
            | RpcError::VersionMismatch(m)
            | RpcError::PeerGone(m)
            | RpcError::Overloaded(m) => m,
        }
    }

    /// Rebuild a variant from its wire tag.
    pub fn from_tag(tag: u8, message: String) -> Option<RpcError> {
        Some(match tag {
            0 => RpcError::Deadline(message),
            1 => RpcError::ConnRefused(message),
            2 => RpcError::Decode(message),
            3 => RpcError::VersionMismatch(message),
            4 => RpcError::PeerGone(message),
            5 => RpcError::Overloaded(message),
            _ => return None,
        })
    }

    /// Only a refused connect is worth retrying against the same
    /// address — the peer may simply not be listening yet.
    pub fn retryable_connect(&self) -> bool {
        matches!(self, RpcError::ConnRefused(_))
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Deadline(m) => write!(f, "deadline: {m}"),
            RpcError::ConnRefused(m) => write!(f, "connection refused: {m}"),
            RpcError::Decode(m) => write!(f, "decode: {m}"),
            RpcError::VersionMismatch(m) => write!(f, "version mismatch: {m}"),
            RpcError::PeerGone(m) => write!(f, "peer gone: {m}"),
            RpcError::Overloaded(m) => write!(f, "overloaded: {m}"),
        }
    }
}

impl From<RpcError> for Error {
    fn from(e: RpcError) -> Self {
        Error::Rpc(e)
    }
}

/// Workspace-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Data(m) => write!(f, "data error: {m}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::Rpc(e) => write!(f, "rpc error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        assert_eq!(Error::Parse("bad token".into()).to_string(), "parse error: bad token");
        assert_eq!(Error::Unsupported("JOIN".into()).to_string(), "unsupported: JOIN");
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: Error = io.into();
        assert!(err.to_string().contains("gone"));
        assert!(err.source().is_some());
        assert!(Error::Type("t".into()).source().is_none());
    }

    #[test]
    fn rpc_error_tags_round_trip() {
        let all = [
            RpcError::Deadline("a".into()),
            RpcError::ConnRefused("b".into()),
            RpcError::Decode("c".into()),
            RpcError::VersionMismatch("d".into()),
            RpcError::PeerGone("e".into()),
            RpcError::Overloaded("f".into()),
        ];
        for e in all {
            let back = RpcError::from_tag(e.tag(), e.message().to_string()).unwrap();
            assert_eq!(back, e);
        }
        assert!(RpcError::from_tag(250, String::new()).is_none());
        assert!(RpcError::ConnRefused(String::new()).retryable_connect());
        assert!(!RpcError::Deadline(String::new()).retryable_connect());
        let wrapped: Error = RpcError::Deadline("budget spent".into()).into();
        assert_eq!(wrapped.to_string(), "rpc error: deadline: budget spent");
    }
}
