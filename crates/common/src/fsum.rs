//! Exact, order-independent `f64` summation.
//!
//! Floating-point addition is not associative, so a sum's last bits depend
//! on evaluation order — which chunk a row landed in, how many shards the
//! table was split into, how a merge tree was shaped. That would make
//! "parallel/distributed execution is bit-identical to sequential" an
//! impossible promise for `SUM`/`AVG` over floats. [`FloatSum`] removes the
//! order dependence at the root: it accumulates into a fixed-point
//! "superaccumulator" (a Kulisch-style long accumulator) wide enough to
//! hold any sum of `f64`s *exactly*. Integer addition is associative and
//! commutative, so any grouping of rows into chunks, shards or tree nodes
//! produces the same accumulator state, and [`FloatSum::value`] rounds the
//! exact sum to the nearest `f64` exactly once.
//!
//! Layout: a 2176-bit two's-complement integer (34 × u64 limbs, little
//! endian) where bit 0 has weight 2^-1074 (the smallest subnormal). The
//! largest finite `f64` puts its mantissa's top bit at position 2097, so
//! 2176 bits leave 78 guard bits of headroom — enough for 2^63 worst-case
//! additions without overflow. Non-finite inputs are tracked in flags with
//! the IEEE semantics of a running sum (any NaN poisons; +∞ and −∞
//! together yield NaN), which are order-independent as well.

/// Number of 64-bit limbs in the accumulator.
pub const LIMBS: usize = 34;

/// An exact sum of `f64` values; merge order never changes the result.
#[derive(Clone, PartialEq)]
pub struct FloatSum {
    /// Two's-complement fixed-point value, little endian; bit 0 = 2^-1074.
    limbs: [u64; LIMBS],
    nan: bool,
    pos_inf: bool,
    neg_inf: bool,
}

impl Default for FloatSum {
    fn default() -> Self {
        FloatSum { limbs: [0; LIMBS], nan: false, pos_inf: false, neg_inf: false }
    }
}

impl std::fmt::Debug for FloatSum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FloatSum").field(&self.value()).finish()
    }
}

impl From<f64> for FloatSum {
    fn from(x: f64) -> Self {
        let mut s = FloatSum::default();
        s.add(x);
        s
    }
}

impl FloatSum {
    pub fn new() -> FloatSum {
        FloatSum::default()
    }

    /// Add one `f64` exactly.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            if x.is_nan() {
                self.nan = true;
            } else if x > 0.0 {
                self.pos_inf = true;
            } else {
                self.neg_inf = true;
            }
            return;
        }
        if x == 0.0 {
            return;
        }
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as usize;
        let frac = bits & ((1u64 << 52) - 1);
        // x = ±mant · 2^(off − 1074) with the mantissa's bit 0 at `off`.
        let (mant, off) = if exp == 0 { (frac, 0) } else { (frac | (1u64 << 52), exp - 1) };
        let limb = off / 64;
        let sh = off % 64;
        let lo = mant << sh;
        let hi = if sh == 0 { 0 } else { mant >> (64 - sh) };
        if x > 0.0 {
            self.add_magnitude(limb, lo, hi);
        } else {
            self.sub_magnitude(limb, lo, hi);
        }
    }

    /// Add `x` exactly, `n` times — the run-aware form of [`FloatSum::add`].
    ///
    /// The accumulator is an exact two's-complement integer, so `n`
    /// repeated additions of `±mant · 2^(off − 1074)` equal one addition of
    /// `±(mant · n) · 2^(off − 1074)`: the resulting state (limbs and
    /// flags) is bit-identical to calling `add(x)` `n` times, at the cost
    /// of one 53×64-bit multiply. The ≤117-bit product still fits the 78
    /// guard bits of headroom for any `n ≤ 2^63` rows.
    pub fn add_repeated(&mut self, x: f64, n: u64) {
        if n == 0 {
            return;
        }
        if n == 1 || !x.is_finite() || x == 0.0 {
            // Flags are idempotent ORs: once is as good as n times.
            self.add(x);
            return;
        }
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as usize;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, off) = if exp == 0 { (frac, 0) } else { (frac | (1u64 << 52), exp - 1) };
        let prod = mant as u128 * n as u128;
        let limb = off / 64;
        let sh = off % 64;
        // Shift the ≤117-bit product left by `sh` across three words.
        let (p_lo, p_hi) = (prod as u64, (prod >> 64) as u64);
        let w0 = p_lo << sh;
        let (w1, w2) = if sh == 0 {
            (p_hi, 0)
        } else {
            ((p_hi << sh) | (p_lo >> (64 - sh)), p_hi >> (64 - sh))
        };
        if x > 0.0 {
            self.add_words(limb, [w0, w1, w2]);
        } else {
            self.sub_words(limb, [w0, w1, w2]);
        }
    }

    /// Merge another accumulator in (exact; order never matters).
    pub fn merge(&mut self, other: &FloatSum) {
        let mut carry = 0u64;
        for (a, &b) in self.limbs.iter_mut().zip(&other.limbs) {
            let (v, c1) = a.overflowing_add(b);
            let (v, c2) = v.overflowing_add(carry);
            *a = v;
            carry = (c1 | c2) as u64;
        }
        // The final carry wraps: two's-complement addition.
        self.nan |= other.nan;
        self.pos_inf |= other.pos_inf;
        self.neg_inf |= other.neg_inf;
    }

    /// The exact sum, rounded once to the nearest `f64` (ties to even).
    pub fn value(&self) -> f64 {
        if self.nan || (self.pos_inf && self.neg_inf) {
            return f64::NAN;
        }
        if self.pos_inf {
            return f64::INFINITY;
        }
        if self.neg_inf {
            return f64::NEG_INFINITY;
        }
        let negative = self.limbs[LIMBS - 1] >> 63 == 1;
        let mut mag = self.limbs;
        if negative {
            negate(&mut mag);
        }
        let Some(top) = (0..LIMBS).rev().find(|&i| mag[i] != 0) else {
            return 0.0;
        };
        let p = top * 64 + (63 - mag[top].leading_zeros() as usize);
        if p <= 52 {
            // At most 53 bits at the 2^-1074 scale: exactly representable
            // (subnormal range and the first normal binades), no rounding.
            let v = mag[0] as f64 * f64::from_bits(1);
            return if negative { -v } else { v };
        }
        // Round the magnitude to 53 significant bits (nearest, ties even).
        let shift = p - 52;
        let mut m = bits_at(&mag, shift) & ((1u64 << 53) - 1);
        let guard = bit_at(&mag, shift - 1);
        if guard && (any_below(&mag, shift - 1) || m & 1 == 1) {
            m += 1;
        }
        let mut p = p;
        if m == 1u64 << 53 {
            m = 1u64 << 52;
            p += 1;
        }
        // value = m · 2^(p − 52 − 1074); `m as f64` is exact (≤ 2^53) and
        // the power-of-two multiply below is exact in range, so the single
        // rounding above is the only rounding.
        let mut v = m as f64;
        let mut e = p as i64 - 52 - 1074;
        while e > 1023 {
            v *= f64::from_bits(0x7FEu64 << 52); // 2^1023
            e -= 1023;
        }
        v *= pow2(e);
        if negative {
            -v
        } else {
            v
        }
    }

    /// True when no value (or only zeros) has been added.
    pub fn is_zero(&self) -> bool {
        !self.nan && !self.pos_inf && !self.neg_inf && self.limbs.iter().all(|&l| l == 0)
    }

    /// The raw accumulator state: `(limbs, nan, pos_inf, neg_inf)`. The
    /// limb array *is* the exact sum (two's complement, little endian), so
    /// shipping it over the wire preserves the sum bit-identically.
    pub fn raw_parts(&self) -> (&[u64; LIMBS], bool, bool, bool) {
        (&self.limbs, self.nan, self.pos_inf, self.neg_inf)
    }

    /// Rebuild an accumulator from [`FloatSum::raw_parts`] output. Every
    /// limb/flag combination is a valid accumulator state, so decoding
    /// cannot produce an inconsistent sum.
    pub fn from_raw_parts(limbs: [u64; LIMBS], nan: bool, pos_inf: bool, neg_inf: bool) -> Self {
        FloatSum { limbs, nan, pos_inf, neg_inf }
    }

    fn add_magnitude(&mut self, limb: usize, lo: u64, hi: u64) {
        let (v, c) = self.limbs[limb].overflowing_add(lo);
        self.limbs[limb] = v;
        let mut idx = limb + 1;
        let (v, c1) = self.limbs[idx].overflowing_add(hi);
        let (v, c2) = v.overflowing_add(c as u64);
        self.limbs[idx] = v;
        let mut carry = c1 | c2;
        idx += 1;
        while carry && idx < LIMBS {
            let (v, c) = self.limbs[idx].overflowing_add(1);
            self.limbs[idx] = v;
            carry = c;
            idx += 1;
        }
    }

    /// Add a three-word magnitude starting at `limb` (for run products).
    fn add_words(&mut self, limb: usize, words: [u64; 3]) {
        let mut carry = false;
        let mut idx = limb;
        for &w in &words {
            let (v, c1) = self.limbs[idx].overflowing_add(w);
            let (v, c2) = v.overflowing_add(carry as u64);
            self.limbs[idx] = v;
            carry = c1 | c2;
            idx += 1;
        }
        while carry && idx < LIMBS {
            let (v, c) = self.limbs[idx].overflowing_add(1);
            self.limbs[idx] = v;
            carry = c;
            idx += 1;
        }
    }

    /// Subtract a three-word magnitude starting at `limb`.
    fn sub_words(&mut self, limb: usize, words: [u64; 3]) {
        let mut borrow = false;
        let mut idx = limb;
        for &w in &words {
            let (v, b1) = self.limbs[idx].overflowing_sub(w);
            let (v, b2) = v.overflowing_sub(borrow as u64);
            self.limbs[idx] = v;
            borrow = b1 | b2;
            idx += 1;
        }
        while borrow && idx < LIMBS {
            let (v, b) = self.limbs[idx].overflowing_sub(1);
            self.limbs[idx] = v;
            borrow = b;
            idx += 1;
        }
    }

    fn sub_magnitude(&mut self, limb: usize, lo: u64, hi: u64) {
        let (v, b) = self.limbs[limb].overflowing_sub(lo);
        self.limbs[limb] = v;
        let mut idx = limb + 1;
        let (v, b1) = self.limbs[idx].overflowing_sub(hi);
        let (v, b2) = v.overflowing_sub(b as u64);
        self.limbs[idx] = v;
        let mut borrow = b1 | b2;
        idx += 1;
        while borrow && idx < LIMBS {
            let (v, b) = self.limbs[idx].overflowing_sub(1);
            self.limbs[idx] = v;
            borrow = b;
            idx += 1;
        }
    }
}

/// Wire format: the fixed 34-limb array followed by the three non-finite
/// flags. Fixed width (no length prefix): the limb count is part of the
/// format, so a truncated frame fails in [`crate::wire::Reader::take`].
impl crate::wire::Encode for FloatSum {
    fn encode(&self, out: &mut Vec<u8>) {
        for limb in &self.limbs {
            out.extend_from_slice(&limb.to_le_bytes());
        }
        out.push(u8::from(self.nan) | u8::from(self.pos_inf) << 1 | u8::from(self.neg_inf) << 2);
    }
}

impl crate::wire::Decode for FloatSum {
    fn decode(r: &mut crate::wire::Reader<'_>) -> crate::Result<FloatSum> {
        let mut limbs = [0u64; LIMBS];
        for limb in &mut limbs {
            *limb = r.u64()?;
        }
        let flags = r.u8()?;
        if flags > 0b111 {
            return Err(crate::Error::Data(format!("wire: invalid FloatSum flags {flags:#x}")));
        }
        Ok(FloatSum::from_raw_parts(limbs, flags & 1 != 0, flags & 2 != 0, flags & 4 != 0))
    }
}

/// 2^e as an exact `f64`, for e in the representable range [-1074, 1023].
fn pow2(e: i64) -> f64 {
    debug_assert!((-1074..=1023).contains(&e));
    if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else {
        f64::from_bits(1u64 << (e + 1074))
    }
}

/// Two's-complement negation in place.
fn negate(limbs: &mut [u64; LIMBS]) {
    let mut carry = 1u64;
    for l in limbs.iter_mut() {
        let (v, c) = (!*l).overflowing_add(carry);
        *l = v;
        carry = c as u64;
    }
}

/// 64 bits of `mag` starting at bit `pos`.
fn bits_at(mag: &[u64; LIMBS], pos: usize) -> u64 {
    let limb = pos / 64;
    let sh = pos % 64;
    let lo = mag[limb] >> sh;
    let hi = if sh == 0 || limb + 1 >= LIMBS { 0 } else { mag[limb + 1] << (64 - sh) };
    lo | hi
}

fn bit_at(mag: &[u64; LIMBS], pos: usize) -> bool {
    mag[pos / 64] >> (pos % 64) & 1 == 1
}

/// Any set bit strictly below `pos`?
fn any_below(mag: &[u64; LIMBS], pos: usize) -> bool {
    let limb = pos / 64;
    let sh = pos % 64;
    if mag[..limb].iter().any(|&l| l != 0) {
        return true;
    }
    sh > 0 && mag[limb] & ((1u64 << sh) - 1) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn sum_of(values: &[f64]) -> f64 {
        let mut s = FloatSum::new();
        for &v in values {
            s.add(v);
        }
        s.value()
    }

    #[test]
    fn simple_sums_are_exact() {
        assert_eq!(sum_of(&[]), 0.0);
        assert_eq!(sum_of(&[1.5]), 1.5);
        assert_eq!(sum_of(&[1.5, 2.25]), 3.75);
        assert_eq!(sum_of(&[1.0, -1.0]), 0.0);
        assert_eq!(sum_of(&[-2.5, -3.5]), -6.0);
        assert_eq!(sum_of(&[0.1]), 0.1);
        assert_eq!(sum_of(&[f64::MAX]), f64::MAX);
        assert_eq!(sum_of(&[f64::MIN_POSITIVE]), f64::MIN_POSITIVE);
        assert_eq!(sum_of(&[5e-324]), 5e-324); // smallest subnormal
        assert_eq!(sum_of(&[-0.0]), 0.0);
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        // Naive f64 summation gets this wrong; the exact accumulator
        // recovers the tiny residue.
        assert_eq!(sum_of(&[1e100, 1.0, -1e100]), 1.0);
        assert_eq!(sum_of(&[1e308, 1e308, -1e308, -1e308]), 0.0);
        assert_eq!(sum_of(&[1.0, 1e-300, -1.0]), 1e-300);
    }

    #[test]
    fn order_never_changes_the_result() {
        let mut rng = Rng::seed_from_u64(0xf5u64);
        for _ in 0..50 {
            let n = rng.range_usize(2, 40);
            let mut values: Vec<f64> = (0..n)
                .map(|_| {
                    let m = rng.range_i64_inclusive(-1_000_000, 1_000_000) as f64;
                    let e = rng.range_i64_inclusive(-80, 80) as i32;
                    m * 2f64.powi(e)
                })
                .collect();
            let forward = sum_of(&values);
            values.reverse();
            assert_eq!(forward.to_bits(), sum_of(&values).to_bits());
            // Shuffle.
            for i in (1..values.len()).rev() {
                values.swap(i, rng.range_usize(0, i + 1));
            }
            assert_eq!(forward.to_bits(), sum_of(&values).to_bits());
        }
    }

    #[test]
    fn merge_equals_flat_accumulation() {
        let mut rng = Rng::seed_from_u64(0xf6u64);
        for _ in 0..50 {
            let n = rng.range_usize(2, 60);
            let values: Vec<f64> =
                (0..n).map(|_| rng.range_i64_inclusive(-500, 500) as f64 * 0.125).collect();
            let flat = sum_of(&values);
            // Split into arbitrary partitions, merge the partials.
            let cut = rng.range_usize(1, n);
            let mut a = FloatSum::new();
            for &v in &values[..cut] {
                a.add(v);
            }
            let mut b = FloatSum::new();
            for &v in &values[cut..] {
                b.add(v);
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge is commutative");
            assert_eq!(flat.to_bits(), ab.value().to_bits());
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 10k+ iterations: minutes under the interpreter
    fn rounding_matches_ieee_single_additions() {
        // For two addends, IEEE addition is itself correctly rounded, so
        // the accumulator must agree bit-for-bit.
        let mut rng = Rng::seed_from_u64(0xf7u64);
        for _ in 0..2_000 {
            let a = f64::from_bits(rng.next_u64() & 0x7FEF_FFFF_FFFF_FFFF);
            let b = f64::from_bits(rng.next_u64() & 0x7FEF_FFFF_FFFF_FFFF);
            let (a, b) = (a.abs(), -b.abs());
            if !a.is_finite() || !b.is_finite() {
                continue;
            }
            let expect = a + b;
            assert_eq!(
                sum_of(&[a, b]).to_bits(),
                expect.to_bits(),
                "a={a:e} b={b:e} expect={expect:e} got={:e}",
                sum_of(&[a, b])
            );
        }
    }

    #[test]
    fn ties_round_to_even() {
        // 2^53 + 1 is exactly between 2^53 and 2^53 + 2 → rounds to 2^53.
        let two53 = 9_007_199_254_740_992.0f64;
        assert_eq!(sum_of(&[two53, 1.0]), two53);
        // 2^53 + 3 is between 2^53 + 2 and 2^53 + 4 → rounds to +4 (even).
        assert_eq!(sum_of(&[two53, 1.0, 1.0, 1.0]), two53 + 4.0);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let v = sum_of(&[f64::MAX, f64::MAX]);
        assert_eq!(v, f64::INFINITY, "exact sum beyond the range rounds to +inf");
        let v = sum_of(&[f64::MIN, f64::MIN]);
        assert_eq!(v, f64::NEG_INFINITY);
        // ... but cancellation brings it back: the accumulator is exact.
        assert_eq!(sum_of(&[f64::MAX, f64::MAX, -f64::MAX]), f64::MAX);
    }

    #[test]
    fn non_finite_flags_follow_ieee() {
        assert!(sum_of(&[f64::NAN, 1.0]).is_nan());
        assert_eq!(sum_of(&[f64::INFINITY, -1e308]), f64::INFINITY);
        assert_eq!(sum_of(&[f64::NEG_INFINITY, 1e308]), f64::NEG_INFINITY);
        assert!(sum_of(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
    }

    #[test]
    fn add_repeated_is_bit_identical_to_n_adds() {
        let specials = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -1e-300,
            5e-324,
            -5e-324,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 2.0, // subnormal
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for &x in &specials {
            for n in [0u64, 1, 2, 3, 63, 64, 1000] {
                let mut repeated = FloatSum::new();
                repeated.add_repeated(x, n);
                let mut looped = FloatSum::new();
                for _ in 0..n {
                    looped.add(x);
                }
                assert_eq!(repeated, looped, "x={x:e} n={n}");
            }
        }
    }

    #[test]
    fn add_repeated_random_values_and_counts() {
        let mut rng = Rng::seed_from_u64(0xadd5);
        let mut acc = FloatSum::new();
        let mut reference = FloatSum::new();
        for _ in 0..200 {
            let x = f64::from_bits(rng.next_u64());
            let n = rng.range_usize(0, 300) as u64;
            acc.add_repeated(x, n);
            for _ in 0..n {
                reference.add(x);
            }
        }
        assert_eq!(acc, reference);
    }

    #[test]
    fn add_repeated_huge_count_stays_in_headroom() {
        // 2^40 copies of f64::MAX: far beyond f64 range, still exact.
        let mut s = FloatSum::new();
        s.add_repeated(f64::MAX, 1 << 40);
        s.add_repeated(-f64::MAX, (1 << 40) - 1);
        assert_eq!(s.value(), f64::MAX);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 10k+ iterations: minutes under the interpreter
    fn subnormal_accumulation_is_exact() {
        let tiny = 5e-324; // 2^-1074
        let mut s = FloatSum::new();
        for _ in 0..4096 {
            s.add(tiny);
        }
        assert_eq!(s.value(), tiny * 4096.0);
        for _ in 0..4096 {
            s.add(-tiny);
        }
        assert_eq!(s.value(), 0.0);
        assert!(s.is_zero());
    }
}
