//! A fast, non-cryptographic hasher.
//!
//! The paper's Query 3 (group-by over a field with several hundred thousand
//! distinct values) is dominated by hash-table work in the baseline
//! backends; SipHash would distort those measurements, so the workspace uses
//! the Fx multiply-xor construction (as used by rustc) implemented here from
//! scratch — no third-party hashing crate is allowed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-xor hasher (the `FxHasher` construction).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so that e.g. "a" and "a\0" differ.
            self.add_word(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// One-shot 64-bit hash of any hashable value.
///
/// Used by the count-distinct sketch (§5 of the paper), which needs hash
/// values that behave uniformly in `[0, 2^64)`. Fx output is strongly biased
/// in its low bits for short inputs, so we apply a final avalanche mix
/// (splitmix64 finalizer).
#[inline]
pub fn fx_hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    let mut z = h.finish().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash64("hello"), fx_hash64("hello"));
        assert_eq!(fx_hash64(&42u64), fx_hash64(&42u64));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fx_hash64("hello"), fx_hash64("hellp"));
        assert_ne!(fx_hash64(&1u64), fx_hash64(&2u64));
        assert_ne!(fx_hash64(""), fx_hash64("\0"));
        assert_ne!(fx_hash64("a"), fx_hash64("a\0"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));
        let s: FxHashSet<u32> = (0..100).collect();
        assert_eq!(s.len(), 100);
        assert!(s.contains(&99));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 10k+ iterations: minutes under the interpreter
    fn avalanche_spreads_sequential_keys() {
        // The sketch divides the hash space uniformly; sequential integers
        // must land in different high-order buckets.
        let mut buckets = [0usize; 16];
        for i in 0..16_000u64 {
            buckets[(fx_hash64(&i) >> 60) as usize] += 1;
        }
        let (min, max) =
            buckets.iter().fold((usize::MAX, 0), |(lo, hi), &b| (lo.min(b), hi.max(b)));
        assert!(max < min * 2, "buckets too skewed: {buckets:?}");
    }

    #[test]
    fn long_inputs_hash_all_bytes() {
        let a = vec![0u8; 1024];
        let mut b = a.clone();
        b[1000] = 1;
        assert_ne!(fx_hash64(&a[..]), fx_hash64(&b[..]));
    }
}
