//! Shared foundations for the PowerDrill reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace:
//!
//! - [`Value`] / [`DataType`] — the dynamically typed cell values of a table,
//! - [`Schema`] / [`Field`] — column names and types,
//! - [`Row`] — a single record,
//! - [`Error`] / [`Result`] — the workspace-wide error type,
//! - [`FxHashMap`] / [`FxHashSet`] — hash containers with a fast
//!   multiply-xor hasher (the standard SipHash is too slow for the hot
//!   group-by loops the paper benchmarks),
//! - [`BitVec`] — a packed bit vector used by the 1-bit element encoding
//!   and the per-chunk filter masks of the group-by kernels,
//! - [`HeapSize`] — uniform deep-memory accounting, which the paper's
//!   evaluation (Tables 1–4) is all about,
//! - [`FloatSum`] — exact, order-independent `f64` summation (a Kulisch
//!   superaccumulator), which makes float `SUM`/`AVG` bit-identical no
//!   matter how rows are chunked, threaded or sharded,
//! - [`sync`] — poison-free `Mutex` / `RwLock` wrappers over `std::sync`,
//! - [`rng`] — a small seedable xoshiro256++ PRNG for generators and load
//!   models (the workspace carries no external dependencies),
//! - [`wire`] — the dependency-free binary wire format ([`wire::Encode`] /
//!   [`wire::Decode`]) that carries partial results, queries and control
//!   messages across the §4 process boundary bit-identically.

#![forbid(unsafe_code)]

pub mod bitvec;
pub mod error;
pub mod fsum;
pub mod hash;
pub mod mem;
pub mod rng;
pub mod row;
pub mod schema;
pub mod sync;
pub mod value;
pub mod wire;

pub use bitvec::BitVec;
pub use error::{Error, Result, RpcError};
pub use fsum::FloatSum;
pub use hash::{fx_hash64, FxHashMap, FxHashSet, FxHasher};
pub use mem::HeapSize;
pub use row::Row;
pub use schema::{Field, Schema};
pub use value::{DataType, Value};
