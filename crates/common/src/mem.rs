//! Deep memory accounting.
//!
//! The paper's evaluation (Tables 1–4) compares the *memory footprint* of
//! the successive encodings. [`HeapSize`] reports the heap bytes owned by a
//! value — the quantity those tables measure. Total footprint of a value is
//! `size_of_val(&v) + v.heap_bytes()`.

/// Bytes of heap memory owned (deeply) by this value.
pub trait HeapSize {
    fn heap_bytes(&self) -> usize;

    /// Heap bytes plus the inline size of the value itself.
    fn total_bytes(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of::<Self>() + self.heap_bytes()
    }
}

macro_rules! impl_heapsize_inline {
    ($($t:ty),* $(,)?) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_bytes(&self) -> usize { 0 }
        })*
    };
}

impl_heapsize_inline!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, ());

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl HeapSize for str {
    fn heap_bytes(&self) -> usize {
        self.len()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for Box<[T]> {
    fn heap_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>() + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl HeapSize for Box<str> {
    fn heap_bytes(&self) -> usize {
        self.len()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_bytes)
    }
}

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<K: HeapSize, V: HeapSize, S> HeapSize for std::collections::HashMap<K, V, S> {
    fn heap_bytes(&self) -> usize {
        // Approximation: hashbrown stores (K, V) pairs plus one control byte
        // per slot at ~8/7 load factor headroom.
        let slot = std::mem::size_of::<(K, V)>() + 1;
        self.capacity() * slot
            + self.iter().map(|(k, v)| k.heap_bytes() + v.heap_bytes()).sum::<usize>()
    }
}

/// Pretty-print a byte count the way the paper's tables do (MB with two
/// decimals).
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_no_heap() {
        assert_eq!(42u64.heap_bytes(), 0);
        assert_eq!(1.5f64.heap_bytes(), 0);
        assert_eq!(true.total_bytes(), 1);
    }

    #[test]
    fn string_reports_capacity() {
        let mut s = String::with_capacity(100);
        s.push('x');
        assert_eq!(s.heap_bytes(), 100);
    }

    #[test]
    fn vec_is_deep() {
        let v = vec!["ab".to_owned(), "cdef".to_owned()];
        // capacity * sizeof(String) + 2 + 4 string bytes
        assert_eq!(v.heap_bytes(), v.capacity() * std::mem::size_of::<String>() + 6);
    }

    #[test]
    fn boxed_slice_has_no_spare_capacity() {
        let b: Box<[u32]> = vec![1u32; 10].into_boxed_slice();
        assert_eq!(b.heap_bytes(), 40);
    }

    #[test]
    fn option_and_tuple() {
        assert_eq!(None::<String>.heap_bytes(), 0);
        assert_eq!(Some("abc".to_owned()).heap_bytes(), 3);
        assert_eq!(("ab".to_owned(), 1u8).heap_bytes(), 2);
    }

    #[test]
    fn fmt_mb_matches_paper_style() {
        assert_eq!(fmt_mb(573 * 1024 * 1024 + 300 * 1024), "573.29");
        assert_eq!(fmt_mb(0), "0.00");
    }
}
