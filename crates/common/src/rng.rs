//! A small, seedable PRNG for data generation and load modeling.
//!
//! The dataset generators and the distributed load model need reproducible
//! pseudo-randomness, not cryptographic quality. This is xoshiro256++
//! (Blackman & Vigna) seeded through SplitMix64 — the standard pairing —
//! implemented here so the workspace stays dependency-free.

/// xoshiro256++, seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Deterministic construction: equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Rng {
        // SplitMix64 expansion of the seed into the full 256-bit state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Rng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Lemire's multiply-shift rejection method: unbiased without
        // division in the common case.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive on both ends).
    #[inline]
    pub fn range_i64_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi as i128 - lo as i128 + 1;
        if span > u64::MAX as i128 {
            // The full i64 range: every 64-bit pattern is a valid draw.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.range_u64(0, span as u64) as i64)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(miri, ignore)] // 10k+ iterations: minutes under the interpreter
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 10k+ iterations: minutes under the interpreter
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.range_usize(0, 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
        for _ in 0..1_000 {
            let v = rng.range_i64_inclusive(-5, 5);
            assert!((-5..=5).contains(&v));
        }
        // Inclusive ranges reach both endpoints.
        let mut hit_hi = false;
        let mut hit_lo = false;
        for _ in 0..10_000 {
            match rng.range_i64_inclusive(0, 3) {
                0 => hit_lo = true,
                3 => hit_hi = true,
                _ => {}
            }
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        const N: usize = 80_000;
        for _ in 0..N {
            counts[rng.range_usize(0, 8)] += 1;
        }
        let expect = N / 8;
        for c in counts {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 10k+ iterations: minutes under the interpreter
    fn chance_tracks_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }
}
