//! A single record.

use crate::mem::HeapSize;
use crate::value::Value;

/// One row of a table: a vector of values aligned with the schema's fields.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Row(iter.into_iter().collect())
    }
}

impl HeapSize for Value {
    fn heap_bytes(&self) -> usize {
        match self {
            Value::Str(s) => s.heap_bytes(),
            _ => 0,
        }
    }
}

impl HeapSize for Row {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let r: Row = vec![Value::Int(1), Value::Str("x".into())].into();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0), &Value::Int(1));
        assert_eq!(r.get(1).as_str(), Some("x"));
    }

    #[test]
    fn rows_order_lexicographically() {
        let a = Row::new(vec![Value::Int(1), Value::Int(9)]);
        let b = Row::new(vec![Value::Int(2), Value::Int(0)]);
        assert!(a < b);
    }

    #[test]
    fn heap_accounting_counts_strings() {
        let r = Row::new(vec![Value::Int(1), Value::Str("abcd".into())]);
        assert!(r.heap_bytes() >= 4);
    }
}
