//! Column names and types.

use crate::error::{Error, Result};
use crate::hash::FxHashMap;
use crate::value::DataType;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type }
    }
}

/// An ordered list of fields with O(1) lookup by name.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: FxHashMap<String, usize>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut by_name = FxHashMap::default();
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(Error::Schema(format!("duplicate field name `{}`", f.name)));
            }
        }
        Ok(Schema { fields, by_name })
    }

    /// Convenience constructor from `(name, type)` pairs; panics on
    /// duplicates (used in tests and generators where names are static).
    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
            .expect("static schema must not contain duplicates")
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Index of `name`, or a descriptive error naming the available fields.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            let known: Vec<&str> = self.fields.iter().map(|f| f.name.as_str()).collect();
            Error::Schema(format!("unknown field `{name}` (have: {})", known.join(", ")))
        })
    }

    /// Append a field (used when materializing virtual fields). Errors on a
    /// duplicate name.
    pub fn push(&mut self, field: Field) -> Result<usize> {
        if self.by_name.contains_key(&field.name) {
            return Err(Error::Schema(format!("duplicate field name `{}`", field.name)));
        }
        let idx = self.fields.len();
        self.by_name.insert(field.name.clone(), idx);
        self.fields.push(field);
        Ok(idx)
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

impl Eq for Schema {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_and_index() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
        assert_eq!(s.field(0).name, "a");
        assert_eq!(s.field(1).data_type, DataType::Str);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![Field::new("x", DataType::Int), Field::new("x", DataType::Str)])
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn resolve_reports_known_fields() {
        let s = Schema::of(&[("a", DataType::Int)]);
        let err = s.resolve("zz").unwrap_err();
        assert!(err.to_string().contains("zz"));
        assert!(err.to_string().contains('a'));
        assert_eq!(s.resolve("a").unwrap(), 0);
    }

    #[test]
    fn push_appends_and_rejects_duplicates() {
        let mut s = Schema::of(&[("a", DataType::Int)]);
        let idx = s.push(Field::new("b", DataType::Float)).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(s.index_of("b"), Some(1));
        assert!(s.push(Field::new("a", DataType::Int)).is_err());
    }

    #[test]
    fn schema_equality_ignores_index_map() {
        let a = Schema::of(&[("a", DataType::Int)]);
        let mut b = Schema::default();
        b.push(Field::new("a", DataType::Int)).unwrap();
        assert_eq!(a, b);
    }
}
