//! Poison-free `Mutex` / `RwLock` wrappers over `std::sync`.
//!
//! The executor's shared state (caches, the virtual-field registry) is only
//! ever mutated under short critical sections that cannot leave the
//! protected data logically inconsistent, so lock poisoning adds failure
//! modes without adding safety. These wrappers recover the guard from a
//! poisoned lock, giving the ergonomic `lock()` / `read()` / `write()`
//! guard-returning API the rest of the workspace uses.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read` / `write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }

    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7, "value remains readable after a panic");
    }
}
