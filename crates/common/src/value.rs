//! Dynamically typed cell values.
//!
//! PowerDrill stores flat (denormalized) tables whose columns are strings,
//! integers or floating point numbers (§ "Notation and Simplifying
//! Assumptions"). [`Value`] is the boxed representation used at the edges of
//! the system — import, SQL literals, query results. The store itself never
//! keeps `Value`s per row; everything is dictionary-encoded.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (timestamps, counters, ...).
    Int,
    /// 64-bit IEEE float (latencies, measures, ...).
    Float,
    /// UTF-8 string (countries, table names, search strings, ...).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STRING"),
        }
    }
}

/// A single cell value.
///
/// `Value` has a *total* order (floats are ordered with
/// [`f64::total_cmp`], `Null` sorts first, and across types the order is
/// `Null < Int < Float < Str`), so values can always be sorted into the
/// global dictionaries the paper describes in §2.3.
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing / absent value.
    Null,
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    /// The type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value used by `SUM` / `MIN` / `MAX` / `AVG` aggregations.
    /// Strings and nulls aggregate as 0 (matching the permissive behaviour
    /// of the log-analysis UI the paper describes).
    pub fn numeric(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Float(v) => *v,
            _ => 0.0,
        }
    }

    /// Render the value the way the CSV format and query results do.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Int(v) => Cow::Owned(v.to_string()),
            Value::Float(v) => Cow::Owned(format_float(*v)),
            Value::Str(s) => Cow::Borrowed(s),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

/// Format a float so that integral floats render without a trailing `.0`
/// ambiguity ever being lost: `1` becomes `"1"` only for `Int`; floats always
/// keep a fractional form so the CSV round-trip preserves types.
fn format_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{}", format_float(*v)),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Float(1.5) < Value::Float(2.5));
    }

    #[test]
    fn total_order_across_types() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(i64::MAX) < Value::Float(f64::NEG_INFINITY));
        assert!(Value::Float(f64::INFINITY) < Value::Str(String::new()));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
        assert!(Value::Float(-f64::NAN) < Value::Float(f64::NEG_INFINITY));
    }

    #[test]
    fn equality_follows_total_order() {
        assert_eq!(Value::Float(0.0).cmp(&Value::Float(-0.0)), Ordering::Greater);
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Str("x".into()), Value::Str("x".into()));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Int(4).numeric(), 4.0);
        assert_eq!(Value::Float(2.5).numeric(), 2.5);
        assert_eq!(Value::Str("zz".into()).numeric(), 0.0);
        assert_eq!(Value::Null.numeric(), 0.0);
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
    }

    #[test]
    fn render_round_trips_visually() {
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::Float(1.0).render(), "1.0");
        assert_eq!(Value::Float(1.25).render(), "1.25");
        assert_eq!(Value::Str("hi".into()).render(), "hi");
        assert_eq!(Value::Null.render(), "");
    }

    #[test]
    fn hash_distinguishes_types() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_ne!(h(&Value::Int(1)), h(&Value::Float(1.0)));
        assert_ne!(h(&Value::Null), h(&Value::Int(0)));
    }

    #[test]
    fn data_type_display() {
        assert_eq!(DataType::Int.to_string(), "INT");
        assert_eq!(DataType::Float.to_string(), "FLOAT");
        assert_eq!(DataType::Str.to_string(), "STRING");
    }
}
