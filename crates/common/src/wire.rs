//! Dependency-free binary wire format for the RPC boundary (§4).
//!
//! The computation tree runs in separate OS processes, so partial results,
//! queries and control messages cross process boundaries as bytes. This
//! module defines the encoding those bytes use: a fixed-width,
//! little-endian, length-prefixed format with no schema evolution, no
//! varints and no external crates — every field is written exactly once in
//! a fixed order, so `decode(encode(x)) == x` *bit-identically* (floats
//! travel as their IEEE bit patterns, preserving NaN payloads and signed
//! zeros; that is what lets the distributed equivalence suite assert exact
//! `assert_eq!` across the process split).
//!
//! Robustness contract: [`Decode`] implementations must return `Err` —
//! never panic, never over-allocate — on truncated or corrupt input. A
//! corrupt peer (or a bit flip on the wire) is an error to report up the
//! failover path, not a crash. Two mechanisms enforce this:
//!
//! - every length prefix is validated against the bytes actually remaining
//!   before any allocation ([`Reader::check_len`]), so a frame claiming
//!   "4 billion elements follow" fails immediately instead of allocating;
//! - recursive structures (expression trees) bound their decode depth
//!   explicitly — see `pd_sql`'s codec.
//!
//! Implementations for foundation types (`u8`…`f64`, `bool`, `String`,
//! `Option`, `Vec`, boxed slices, tuples, [`Duration`], [`Value`], [`Row`],
//! [`Schema`]) live here; domain types implement [`Encode`] / [`Decode`] in
//! their own crates ([`crate::FloatSum`] below in `fsum`, `PartialResult` /
//! aggregation states in `pd_core::codec`, restrictions and expressions in
//! `pd_sql::codec`).

use crate::error::{Error, Result, RpcError};
use crate::row::Row;
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use std::time::Duration;

// --- frame header -----------------------------------------------------------

/// Version byte of the RPC frame header. Bumped whenever the frame layout
/// *or* the protocol-message encodings change shape; peers reject frames
/// from a different version instead of mis-framing the stream. Version 3:
/// deadline budgets + hedge delay + chaos directives + node names in the
/// protocol messages, typed `Fault` responses, hedged flags in reports.
/// Version 4: chunk-granular shard metadata (per-chunk zone maps +
/// per-column Bloom filters) in `Load`/`Attach`, the `chunk_pruning` flag
/// on queries, `chunks_pruned_remote` in scan stats.
/// Version 5: the streaming-append protocol — `Append` requests carrying
/// self-contained dictionary-delta tables (`pd_encoding::TableDelta`),
/// applied in place by leaf workers without a respawn.
pub const FRAME_VERSION: u8 = 5;

/// The frame payload is compressed (`pd-compress`, Zippy family). The
/// receiver decompresses before decoding; the flag is per frame, so a
/// connection can mix compressed and raw frames freely.
pub const FRAME_FLAG_COMPRESSED: u8 = 0b0000_0001;

/// The sender accepts compressed frames in return. This is the
/// per-connection negotiation: a peer only compresses its replies to
/// senders that advertised the bit, so an old or compression-less client
/// never receives bytes it cannot decode.
pub const FRAME_FLAG_COMPRESS_OK: u8 = 0b0000_0010;

const FRAME_FLAGS_KNOWN: u8 = FRAME_FLAG_COMPRESSED | FRAME_FLAG_COMPRESS_OK;

/// The fixed 6-byte prelude of every RPC frame:
/// `[version u8][flags u8][payload length u32 le]`.
///
/// Framing (length cap, reading, compression wiring) lives with the RPC
/// layer; this header only fixes the byte layout, so both sides of any
/// transport — and the property fuzzers — agree on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub flags: u8,
    /// Payload bytes on the wire (post-compression when the flag is set).
    pub len: u32,
}

impl FrameHeader {
    pub const BYTES: usize = 6;

    /// Serialize with the current [`FRAME_VERSION`].
    pub fn to_bytes(self) -> [u8; Self::BYTES] {
        let [l0, l1, l2, l3] = self.len.to_le_bytes();
        [FRAME_VERSION, self.flags, l0, l1, l2, l3]
    }

    /// Parse and validate: wrong version or unknown flag bits are framing
    /// errors (the stream cannot be trusted past them). A version skew is
    /// the *typed* [`RpcError::VersionMismatch`], so retry policies can
    /// refuse to retry it without string matching.
    pub fn parse(bytes: [u8; Self::BYTES]) -> Result<FrameHeader> {
        let [version, flags, l0, l1, l2, l3] = bytes;
        if version != FRAME_VERSION {
            return Err(Error::Rpc(RpcError::VersionMismatch(format!(
                "wire: frame version {version} (this build speaks {FRAME_VERSION})"
            ))));
        }
        if flags & !FRAME_FLAGS_KNOWN != 0 {
            return Err(Error::Data(format!("wire: unknown frame flags {flags:#04x}")));
        }
        Ok(FrameHeader { flags, len: u32::from_le_bytes([l0, l1, l2, l3]) })
    }
}

/// Serialize `self` by appending bytes to `out`.
pub trait Encode {
    fn encode(&self, out: &mut Vec<u8>);
}

/// Deserialize an instance by consuming bytes from a [`Reader`].
pub trait Decode: Sized {
    fn decode(r: &mut Reader<'_>) -> Result<Self>;
}

/// Encode a value into a fresh byte vector.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decode a value from `buf`, requiring that *all* bytes are consumed —
/// trailing garbage is as much a framing error as missing bytes.
pub fn from_bytes<T: Decode>(buf: &[u8]) -> Result<T> {
    let mut r = Reader::new(buf);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(Error::Data(format!("wire: {} trailing bytes after decode", r.remaining())));
    }
    Ok(value)
}

/// A bounds-checked cursor over an encoded buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume `n` bytes, or fail if fewer remain (truncated frame).
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Data(format!(
                "wire: truncated input (need {n} bytes, have {})",
                self.remaining()
            )));
        }
        let end = self.pos + n;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Error::Internal("wire: reader cursor out of bounds".into()))?;
        self.pos = end;
        Ok(slice)
    }

    /// Validate a decoded element count against the bytes remaining:
    /// every element of a collection occupies at least `min_element_bytes`
    /// bytes, so a count exceeding `remaining / min` proves corruption —
    /// checked *before* any `Vec::with_capacity`, so corrupt lengths can
    /// never drive allocation.
    pub fn check_len(&self, len: u64, min_element_bytes: usize) -> Result<usize> {
        let max = self.remaining() / min_element_bytes.max(1);
        if len > max as u64 {
            return Err(Error::Data(format!(
                "wire: corrupt length {len} (at most {max} elements can remain)"
            )));
        }
        Ok(len as usize)
    }

    pub fn u8(&mut self) -> Result<u8> {
        self.take(1)?
            .first()
            .copied()
            .ok_or_else(|| Error::Internal("wire: take(1) violated its length contract".into()))
    }

    pub fn u32(&mut self) -> Result<u32> {
        match self.take(4)?.try_into() {
            Ok(bytes) => Ok(u32::from_le_bytes(bytes)),
            Err(_) => Err(Error::Internal("wire: take(4) violated its length contract".into())),
        }
    }

    pub fn u64(&mut self) -> Result<u64> {
        match self.take(8)?.try_into() {
            Ok(bytes) => Ok(u64::from_le_bytes(bytes)),
            Err(_) => Err(Error::Internal("wire: take(8) violated its length contract".into())),
        }
    }
}

// --- primitives ------------------------------------------------------------

impl Encode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<u8> {
        r.u8()
    }
}

impl Encode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<u32> {
        r.u32()
    }
}

impl Encode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<u64> {
        r.u64()
    }
}

impl Encode for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<i64> {
        Ok(r.u64()? as i64)
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<usize> {
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| Error::Data(format!("wire: usize overflow ({v})")))
    }
}

/// Floats travel as raw IEEE-754 bits: NaN payloads, signed zeros and
/// subnormals survive the round trip exactly.
impl Encode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<f64> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<bool> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::Data(format!("wire: invalid bool byte {other}"))),
        }
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<String> {
        let len = r.u64()?;
        let len = r.check_len(len, 1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| Error::Data(format!("wire: invalid utf-8 string: {e}")))
    }
}

impl Encode for Duration {
    fn encode(&self, out: &mut Vec<u8>) {
        // Saturating: half a millennium of nanoseconds is enough for a
        // queue-delay report.
        u64::try_from(self.as_nanos()).unwrap_or(u64::MAX).encode(out);
    }
}

impl Decode for Duration {
    fn decode(r: &mut Reader<'_>) -> Result<Duration> {
        Ok(Duration::from_nanos(r.u64()?))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Option<T>> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(Error::Data(format!("wire: invalid option tag {other}"))),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for v in self {
            v.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Vec<T>> {
        let len = r.u64()?;
        let len = r.check_len(len, 1)?;
        // Validity only needs ≥ 1 byte per element, but *pre-allocation*
        // is bounded by the bytes actually present: a corrupt length that
        // slips past the floor must never reserve more memory than the
        // frame itself occupies (the Vec grows normally past the hint).
        let mut out = Vec::with_capacity(len.min(r.remaining() / std::mem::size_of::<T>().max(1)));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Box<[T]> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for v in self.iter() {
            v.encode(out);
        }
    }
}

impl<T: Decode> Decode for Box<[T]> {
    fn decode(r: &mut Reader<'_>) -> Result<Box<[T]>> {
        Ok(Vec::<T>::decode(r)?.into_boxed_slice())
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<(A, B)> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// --- vocabulary types ------------------------------------------------------

const VALUE_NULL: u8 = 0;
const VALUE_INT: u8 = 1;
const VALUE_FLOAT: u8 = 2;
const VALUE_STR: u8 = 3;

impl Encode for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(VALUE_NULL),
            Value::Int(v) => {
                out.push(VALUE_INT);
                v.encode(out);
            }
            Value::Float(v) => {
                out.push(VALUE_FLOAT);
                v.encode(out);
            }
            Value::Str(s) => {
                out.push(VALUE_STR);
                s.encode(out);
            }
        }
    }
}

impl Decode for Value {
    fn decode(r: &mut Reader<'_>) -> Result<Value> {
        match r.u8()? {
            VALUE_NULL => Ok(Value::Null),
            VALUE_INT => Ok(Value::Int(i64::decode(r)?)),
            VALUE_FLOAT => Ok(Value::Float(f64::decode(r)?)),
            VALUE_STR => Ok(Value::Str(String::decode(r)?)),
            other => Err(Error::Data(format!("wire: invalid value tag {other}"))),
        }
    }
}

impl Encode for DataType {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Str => 2,
        });
    }
}

impl Decode for DataType {
    fn decode(r: &mut Reader<'_>) -> Result<DataType> {
        match r.u8()? {
            0 => Ok(DataType::Int),
            1 => Ok(DataType::Float),
            2 => Ok(DataType::Str),
            other => Err(Error::Data(format!("wire: invalid data-type tag {other}"))),
        }
    }
}

impl Encode for Field {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.data_type.encode(out);
    }
}

impl Decode for Field {
    fn decode(r: &mut Reader<'_>) -> Result<Field> {
        let name = String::decode(r)?;
        let data_type = DataType::decode(r)?;
        Ok(Field { name, data_type })
    }
}

impl Encode for Schema {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.fields().len() as u64).encode(out);
        for f in self.fields() {
            f.encode(out);
        }
    }
}

impl Decode for Schema {
    fn decode(r: &mut Reader<'_>) -> Result<Schema> {
        // `Schema::new` re-validates (duplicate names), so a corrupt frame
        // cannot smuggle in an inconsistent schema.
        Schema::new(Vec::<Field>::decode(r)?)
    }
}

impl Encode for Row {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for Row {
    fn decode(r: &mut Reader<'_>) -> Result<Row> {
        Ok(Row(Vec::<Value>::decode(r)?))
    }
}

/// [`RpcError`] crosses the process boundary inside `Response::Fault`
/// frames: `[tag u8][message string]`, stable tags via `RpcError::tag`.
impl Encode for RpcError {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        self.message().encode(out);
    }
}

impl Decode for RpcError {
    fn decode(r: &mut Reader<'_>) -> Result<RpcError> {
        let tag = r.u8()?;
        let message = String::decode(r)?;
        RpcError::from_tag(tag, message)
            .ok_or_else(|| Error::Data(format!("wire: invalid rpc-error tag {tag}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_headers_round_trip_and_validate() {
        for flags in [0u8, FRAME_FLAG_COMPRESSED, FRAME_FLAG_COMPRESS_OK, FRAME_FLAGS_KNOWN] {
            for len in [0u32, 1, 7_800, u32::MAX] {
                let header = FrameHeader { flags, len };
                assert_eq!(FrameHeader::parse(header.to_bytes()).unwrap(), header);
            }
        }
        // Wrong version: the *typed* mismatch, never retried.
        let mut bytes = FrameHeader { flags: 0, len: 4 }.to_bytes();
        bytes[0] = FRAME_VERSION + 1;
        assert!(matches!(FrameHeader::parse(bytes), Err(Error::Rpc(RpcError::VersionMismatch(_)))));
        // Unknown flag bit.
        let mut bytes = FrameHeader { flags: 0, len: 4 }.to_bytes();
        bytes[1] = 0x80;
        assert!(FrameHeader::parse(bytes).is_err());
    }

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        let back: T = from_bytes(&bytes).expect("round trip decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(true);
        round_trip(String::from("héllo wörld"));
        round_trip(Duration::from_nanos(123_456_789));
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1u64, 2, 3]);
        round_trip((String::from("k"), 9u64));
    }

    #[test]
    fn float_bits_survive_exactly() {
        for bits in [
            0u64,
            (-0.0f64).to_bits(),
            f64::NAN.to_bits(),
            f64::NAN.to_bits() | 0xdead, // non-standard NaN payload
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            5e-324f64.to_bits(), // smallest subnormal
            f64::MAX.to_bits(),
        ] {
            let v = f64::from_bits(bits);
            let back: f64 = from_bytes(&to_bytes(&v)).unwrap();
            assert_eq!(back.to_bits(), bits);
        }
    }

    #[test]
    fn values_round_trip() {
        round_trip(Value::Null);
        round_trip(Value::Int(-42));
        round_trip(Value::Str("ü".into()));
        let v: Value = from_bytes(&to_bytes(&Value::Float(f64::NAN))).unwrap();
        match v {
            Value::Float(f) => assert_eq!(f.to_bits(), f64::NAN.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn schema_and_rows_round_trip() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let back: Schema = from_bytes(&to_bytes(&schema)).unwrap();
        assert_eq!(back.fields(), schema.fields());
        round_trip(Row(vec![Value::Int(1), Value::Str("x".into())]));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = to_bytes(&vec![String::from("alpha"), String::from("beta")]);
        for cut in 0..bytes.len() {
            let err = from_bytes::<Vec<String>>(&bytes[..cut]);
            assert!(err.is_err(), "truncated at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_lengths_never_allocate() {
        // A vec claiming u64::MAX elements with a 9-byte buffer.
        let mut bytes = Vec::new();
        u64::MAX.encode(&mut bytes);
        bytes.push(1);
        assert!(from_bytes::<Vec<u64>>(&bytes).is_err());
        // A string claiming to be huge.
        let mut bytes = Vec::new();
        (1u64 << 60).encode(&mut bytes);
        assert!(from_bytes::<String>(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u64);
        bytes.push(0);
        assert!(from_bytes::<u64>(&bytes).is_err());
    }

    #[test]
    fn invalid_tags_are_errors() {
        assert!(from_bytes::<bool>(&[9]).is_err());
        assert!(from_bytes::<Value>(&[77]).is_err());
        assert!(from_bytes::<Option<u8>>(&[3, 0]).is_err());
        assert!(from_bytes::<DataType>(&[8]).is_err());
        assert!(from_bytes::<RpcError>(&[99, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn rpc_errors_round_trip() {
        for e in [
            RpcError::Deadline("budget spent at mixer".into()),
            RpcError::ConnRefused("l0p.sock".into()),
            RpcError::Decode("torn frame".into()),
            RpcError::VersionMismatch("peer speaks 2".into()),
            RpcError::PeerGone("reset by peer".into()),
            RpcError::Overloaded("8 in flight".into()),
        ] {
            round_trip(e);
        }
    }
}
