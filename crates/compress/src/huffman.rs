//! Canonical Huffman coding — the entropy stage of the paper's "ZLIB with
//! Huffman" comparison point (§5).
//!
//! The paper found the extra Huffman stage bought "a perhaps surprising gain
//! of additional 20–30%" in ratio "but came with the expected cost of being
//! up to an order of magnitude slower". [`HuffmanCodec`] is the pure entropy
//! coder; [`DeflateCodec`] composes LZ77 ([`crate::lz`]) with it, mirroring
//! the structure of DEFLATE/ZLIB.
//!
//! Frame layout: `varint(uncompressed_len)`, 256 code-length bytes, then the
//! MSB-first bitstream. Decoding consumes exactly `uncompressed_len`
//! symbols, so no explicit bit count is stored.

use crate::lz::LzCodec;
use crate::varint;
use crate::Codec;
use pd_common::{Error, Result};
use std::collections::BinaryHeap;

/// Longest admissible code. Depth grows at most logarithmically in the
/// input length (Fibonacci bound), so this is unreachable for any input
/// that fits in memory; it keeps the decoder's accumulator in a `u64`.
const MAX_CODE_LEN: u8 = 56;
/// Upper bound on the speculative output pre-allocation during decode.
const MAX_PREALLOC: usize = 1 << 24;

/// Pure canonical Huffman codec over bytes.
pub struct HuffmanCodec;

/// LZ77 + Huffman: the "ZLIB with Huffman" (deflate-like) codec.
pub struct DeflateCodec;

impl Codec for HuffmanCodec {
    fn name(&self) -> &'static str {
        "huffman"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 300);
        varint::write_u64(&mut out, input.len() as u64);
        if input.is_empty() {
            return out;
        }

        let mut freq = [0u64; 256];
        for &b in input {
            freq[b as usize] += 1;
        }
        let lengths = code_lengths(&freq);
        out.extend_from_slice(&lengths);
        let codes = canonical_codes(&lengths);

        let mut writer = BitWriter::new(&mut out);
        for &b in input {
            let (code, len) = codes[b as usize];
            writer.write(code, len);
        }
        writer.finish();
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let mut pos = 0;
        let len = varint::read_u64(input, &mut pos)? as usize;
        if len == 0 {
            return Ok(Vec::new());
        }
        let lengths: [u8; 256] = input
            .get(pos..pos + 256)
            .ok_or_else(|| Error::Data("huffman: truncated code-length table".into()))?
            .try_into()
            .expect("sliced exactly 256 bytes");
        pos += 256;
        let decoder = Decoder::new(&lengths)?;

        // A corrupt frame may claim an absurd length; cap the upfront
        // allocation and let the vector grow organically past it.
        let mut out = Vec::with_capacity(len.min(MAX_PREALLOC));
        let mut reader = BitReader::new(&input[pos..]);
        for _ in 0..len {
            out.push(decoder.decode(&mut reader)?);
        }
        Ok(out)
    }
}

impl Codec for DeflateCodec {
    fn name(&self) -> &'static str {
        "deflate"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        HuffmanCodec.compress(&LzCodec.compress(input))
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        LzCodec.decompress(&HuffmanCodec.decompress(input)?)
    }
}

/// Compute Huffman code lengths from symbol frequencies.
///
/// Symbols with zero frequency get length 0 (absent). A single distinct
/// symbol gets length 1.
fn code_lengths(freq: &[u64; 256]) -> [u8; 256] {
    #[derive(PartialEq, Eq)]
    struct HeapItem {
        freq: u64,
        node: u32,
    }
    impl Ord for HeapItem {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap; tie-break on node id for determinism.
            other.freq.cmp(&self.freq).then(other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for HeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut lengths = [0u8; 256];
    let present: Vec<usize> = (0..256).filter(|&s| freq[s] > 0).collect();
    match present.len() {
        0 => return lengths,
        1 => {
            lengths[present[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Tree nodes: leaves are 0..256 (symbol index), internals appended after.
    let mut parent: Vec<u32> = vec![u32::MAX; 256];
    let mut heap: BinaryHeap<HeapItem> =
        present.iter().map(|&s| HeapItem { freq: freq[s], node: s as u32 }).collect();
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        let id = parent.len() as u32;
        parent.push(u32::MAX);
        parent[a.node as usize] = id;
        parent[b.node as usize] = id;
        heap.push(HeapItem { freq: a.freq + b.freq, node: id });
    }

    for &s in &present {
        let mut depth = 0u8;
        let mut node = s as u32;
        while parent[node as usize] != u32::MAX {
            node = parent[node as usize];
            depth += 1;
        }
        debug_assert!(depth <= MAX_CODE_LEN, "pathological code length {depth}");
        lengths[s] = depth;
    }
    lengths
}

/// Assign canonical codes (numerically increasing within a length, lengths
/// ascending) to the given length table. Returns `(code, len)` per symbol.
fn canonical_codes(lengths: &[u8; 256]) -> [(u64, u8); 256] {
    let mut codes = [(0u64, 0u8); 256];
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut code = 0u64;
    for len in 1..=max_len {
        for sym in 0..256usize {
            if lengths[sym] == len {
                codes[sym] = (code, len);
                code += 1;
            }
        }
        code <<= 1;
    }
    codes
}

/// Canonical Huffman decoder tables.
struct Decoder {
    /// First canonical code of each length.
    first_code: [u64; MAX_CODE_LEN as usize + 1],
    /// Number of codes of each length.
    count: [u32; MAX_CODE_LEN as usize + 1],
    /// Offset of each length's first symbol in `symbols`.
    offset: [u32; MAX_CODE_LEN as usize + 1],
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u8>,
    max_len: u8,
}

impl Decoder {
    fn new(lengths: &[u8; 256]) -> Result<Self> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            return Err(Error::Data("huffman: empty code-length table".into()));
        }
        if max_len > MAX_CODE_LEN {
            return Err(Error::Data(format!("huffman: code length {max_len} too long")));
        }
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        for &l in lengths.iter() {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Kraft check: a malformed table must not decode.
        #[allow(clippy::needless_range_loop)] // index doubles as shift amount
        let kraft = (1..=max_len as usize).fold(0u128, |acc, len| {
            acc + (u128::from(count[len]) << (MAX_CODE_LEN as usize - len))
        });
        let full = 1u128 << MAX_CODE_LEN;
        let single = count[1..=max_len as usize].iter().sum::<u32>() == 1;
        if kraft > full || (kraft < full && !single) {
            return Err(Error::Data("huffman: invalid (non-complete) code".into()));
        }

        let mut first_code = [0u64; MAX_CODE_LEN as usize + 1];
        let mut offset = [0u32; MAX_CODE_LEN as usize + 1];
        let mut code = 0u64;
        let mut sym_count = 0u32;
        #[allow(clippy::needless_range_loop)] // parallel arrays indexed by code length
        for len in 1..=max_len as usize {
            first_code[len] = code;
            offset[len] = sym_count;
            code = (code + u64::from(count[len])) << 1;
            sym_count += count[len];
        }
        let mut symbols = Vec::with_capacity(sym_count as usize);
        for len in 1..=max_len {
            for (sym, &l) in lengths.iter().enumerate() {
                if l == len {
                    symbols.push(sym as u8);
                }
            }
        }
        Ok(Decoder { first_code, count, offset, symbols, max_len })
    }

    #[inline]
    fn decode(&self, reader: &mut BitReader<'_>) -> Result<u8> {
        let mut acc = 0u64;
        for len in 1..=self.max_len as usize {
            acc = acc << 1 | u64::from(reader.read_bit()?);
            let idx = acc.wrapping_sub(self.first_code[len]);
            if idx < u64::from(self.count[len]) {
                return Ok(self.symbols[(self.offset[len] as u64 + idx) as usize]);
            }
        }
        Err(Error::Data("huffman: invalid code in bitstream".into()))
    }
}

/// MSB-first bit writer appending to a byte vector.
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u64,
    bits: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter { out, acc: 0, bits: 0 }
    }

    #[inline]
    fn write(&mut self, code: u64, len: u8) {
        self.acc = self.acc << len | code;
        self.bits += u32::from(len);
        while self.bits >= 8 {
            self.bits -= 8;
            self.out.push((self.acc >> self.bits) as u8);
        }
    }

    fn finish(self) {
        if self.bits > 0 {
            self.out.push((self.acc << (8 - self.bits)) as u8);
        }
    }
}

/// MSB-first bit reader.
struct BitReader<'a> {
    input: &'a [u8],
    pos: usize,
    acc: u8,
    bits: u32,
}

impl<'a> BitReader<'a> {
    fn new(input: &'a [u8]) -> Self {
        BitReader { input, pos: 0, acc: 0, bits: 0 }
    }

    #[inline]
    fn read_bit(&mut self) -> Result<u8> {
        if self.bits == 0 {
            self.acc = *self
                .input
                .get(self.pos)
                .ok_or_else(|| Error::Data("huffman: truncated bitstream".into()))?;
            self.pos += 1;
            self.bits = 8;
        }
        self.bits -= 1;
        Ok((self.acc >> self.bits) & 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let c = HuffmanCodec.compress(input);
        let d = HuffmanCodec.decompress(&c).expect("decompress");
        assert_eq!(d, input);
        c
    }

    #[test]
    fn empty_single_and_uniform() {
        round_trip(b"");
        round_trip(b"x");
        round_trip(&[42u8; 1000]); // single distinct symbol, length-1 code
        round_trip(b"ab");
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% 'a', rest spread: entropy << 8 bits/symbol.
        let mut input = vec![b'a'; 90_000];
        input.extend((0..10_000u32).map(|i| (i % 7) as u8 + b'b'));
        let c = round_trip(&input);
        assert!(c.len() < input.len() / 4, "got {}", c.len());
    }

    #[test]
    fn uniform_bytes_do_not_explode() {
        let input: Vec<u8> = (0..=255u8).cycle().take(8192).collect();
        let c = round_trip(&input);
        // 8 bits/symbol + 256-byte header + frame.
        assert!(c.len() <= input.len() + 300);
    }

    #[test]
    fn deflate_round_trips() {
        let input: Vec<u8> = b"SELECT country, COUNT(*) FROM data GROUP BY country;".repeat(500);
        let c = DeflateCodec.compress(&input);
        assert_eq!(DeflateCodec.decompress(&c).unwrap(), input);
        assert!(c.len() < input.len() / 10);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freq = [0u64; 256];
        for (i, f) in freq.iter_mut().enumerate() {
            *f = (i as u64 % 17) * (i as u64 % 5) + 1;
        }
        let lengths = code_lengths(&freq);
        let codes = canonical_codes(&lengths);
        for a in 0..256 {
            for b in 0..256 {
                if a == b {
                    continue;
                }
                let (ca, la) = codes[a];
                let (cb, lb) = codes[b];
                if la == 0 || lb == 0 || la > lb {
                    continue;
                }
                assert_ne!(cb >> (lb - la), ca, "code {a} is a prefix of {b}");
            }
        }
    }

    #[test]
    fn kraft_equality_holds() {
        let mut freq = [0u64; 256];
        for (i, f) in freq.iter_mut().enumerate() {
            *f = i as u64 + 1;
        }
        let lengths = code_lengths(&freq);
        let kraft: f64 =
            lengths.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-i32::from(l))).sum();
        assert!((kraft - 1.0).abs() < 1e-9, "kraft sum {kraft}");
    }

    #[test]
    fn corrupted_length_table_rejected() {
        let mut c = HuffmanCodec.compress(b"some reasonable input text");
        // Corrupt a code length to break the Kraft equality.
        c[10] = 40;
        assert!(HuffmanCodec.decompress(&c).is_err());
    }

    #[test]
    fn truncation_never_panics() {
        let c = HuffmanCodec.compress(&b"entropy coded payload".repeat(50));
        for cut in 0..c.len() {
            let _ = HuffmanCodec.decompress(&c[..cut]);
        }
    }
}
