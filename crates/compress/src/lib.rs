//! From-scratch compression codecs for the PowerDrill reproduction.
//!
//! The paper relies on "Google's own high speed compression algorithm Zippy"
//! (externally Snappy) for its second, compressed in-memory layer (§3), and
//! additionally evaluates ZLIB (± Huffman coding) and an LZO variant (§5,
//! "Other Compression Algorithms"). None of those implementations are
//! third-party-crate dependencies here — this crate implements the same
//! algorithmic families from scratch:
//!
//! - [`lz`] — byte-oriented LZ77 with a hash-table match finder and varint
//!   framing; plays the role of **Zippy/Snappy** (fast, no entropy stage).
//! - [`lzf`] — an LZF-format variant with a compact fixed-width token
//!   encoding tuned for decompression speed; plays the role of the **LZO
//!   variant** the paper chose for production.
//! - [`huffman`] — canonical Huffman coding; composed with [`lz`] it forms
//!   the **ZLIB-with-Huffman** ("deflate-like") reference point that buys
//!   extra ratio at a large speed cost.
//! - [`rle`] — byte run-length encoding, the didactic baseline of the
//!   paper's row-reordering discussion (Figures 2–4).
//! - [`varint`] — LEB128 variable-length integers used by all the framings
//!   and by the record-io format.
//!
//! All codecs share the [`Codec`] trait and are self-framing: the compressed
//! buffer alone is sufficient to decompress.

#![forbid(unsafe_code)]

pub mod huffman;
pub mod lz;
pub mod lzf;
pub mod rle;
pub mod varint;

use pd_common::Result;

/// A block compression codec.
///
/// Implementations must round-trip arbitrary bytes:
/// `decompress(compress(x)) == x`.
pub trait Codec: Send + Sync {
    /// Short stable name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Compress `input` into a self-framing buffer.
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Decompress a buffer produced by [`Codec::compress`].
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>>;
}

/// The codecs available to the store, mirroring §3 + §5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodecKind {
    /// No compression; identity codec.
    None,
    /// Byte run-length encoding.
    Rle,
    /// LZ77, Snappy-style: the paper's "Zippy".
    #[default]
    Zippy,
    /// Fast-decode LZF-style variant: the paper's "LZO variant".
    Lzf,
    /// LZ77 + canonical Huffman: the paper's "ZLIB with Huffman".
    Deflate,
    /// Pure canonical Huffman (entropy stage only).
    Huffman,
}

impl CodecKind {
    /// All kinds, in the order the codec-comparison experiment reports them.
    pub const ALL: [CodecKind; 6] = [
        CodecKind::None,
        CodecKind::Rle,
        CodecKind::Zippy,
        CodecKind::Lzf,
        CodecKind::Deflate,
        CodecKind::Huffman,
    ];

    /// The shared codec instance for this kind.
    pub fn codec(self) -> &'static dyn Codec {
        match self {
            CodecKind::None => &NoneCodec,
            CodecKind::Rle => &rle::RleCodec,
            CodecKind::Zippy => &lz::LzCodec,
            CodecKind::Lzf => &lzf::LzfCodec,
            CodecKind::Deflate => &huffman::DeflateCodec,
            CodecKind::Huffman => &huffman::HuffmanCodec,
        }
    }
}

/// Identity codec (used when the compressed layer is disabled).
pub struct NoneCodec;

impl Codec for NoneCodec {
    fn name(&self) -> &'static str {
        "none"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        input.to_vec()
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        Ok(input.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_inputs() -> Vec<Vec<u8>> {
        vec![
            vec![],
            b"a".to_vec(),
            b"hello world hello world hello world".to_vec(),
            vec![0u8; 10_000],
            (0..=255u8).cycle().take(4096).collect(),
            b"abcabcabcabcabcabcabcabcabcxyz".to_vec(),
        ]
    }

    #[test]
    fn all_codecs_round_trip_samples() {
        for kind in CodecKind::ALL {
            let codec = kind.codec();
            for input in sample_inputs() {
                let compressed = codec.compress(&input);
                let output = codec.decompress(&compressed).unwrap_or_else(|e| {
                    panic!("{} failed on len {}: {e}", codec.name(), input.len())
                });
                assert_eq!(output, input, "codec {}", codec.name());
            }
        }
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let input: Vec<u8> =
            b"country=US;country=US;country=DE;".iter().cycle().take(64 * 1024).copied().collect();
        for kind in [CodecKind::Zippy, CodecKind::Lzf, CodecKind::Deflate] {
            let compressed = kind.codec().compress(&input);
            assert!(
                compressed.len() < input.len() / 4,
                "{}: {} vs {}",
                kind.codec().name(),
                compressed.len(),
                input.len()
            );
        }
        // RLE only sees byte-level runs; give it run-shaped data.
        let runs: Vec<u8> = (0..64u8).flat_map(|v| std::iter::repeat_n(v, 1024)).collect();
        let compressed = CodecKind::Rle.codec().compress(&runs);
        assert!(compressed.len() < runs.len() / 4, "rle: {}", compressed.len());
    }

    #[test]
    fn deflate_beats_zippy_on_text() {
        // The paper: Huffman gives a 20–30% additional gain over the
        // LZ-only codecs on typical column data.
        let input: Vec<u8> = (0..40_000u64)
            .flat_map(|i| format!("table_{}_2011-12-{:02};", i % 700, i % 28 + 1).into_bytes())
            .collect();
        let zippy = CodecKind::Zippy.codec().compress(&input).len();
        let deflate = CodecKind::Deflate.codec().compress(&input).len();
        assert!(deflate < zippy, "deflate {deflate} not smaller than zippy {zippy}");
    }

    #[test]
    fn codec_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            CodecKind::ALL.iter().map(|k| k.codec().name()).collect();
        assert_eq!(names.len(), CodecKind::ALL.len());
    }
}
