//! Snappy-style LZ77 — the workspace's "Zippy" (§3, "Generic Compression
//! Algorithm").
//!
//! Like Zippy/Snappy, this codec trades ratio for speed: a greedy
//! hash-table match finder, byte-aligned output, and no entropy coding.
//!
//! Frame layout: `varint(uncompressed_len)` followed by tokens. A control
//! byte `c < 0x80` starts a literal run of `c + 1` bytes; `c >= 0x80` emits
//! a back-reference copy of `(c & 0x7f) + 4` bytes whose distance follows as
//! a varint. Copies may overlap their own output (the classic LZ77 trick
//! that turns a 1-byte distance into run-length encoding).

use crate::varint;
use crate::Codec;
use pd_common::{Error, Result};

/// Minimum match length worth emitting a copy token for.
const MIN_MATCH: usize = 4;
/// Maximum match length a single token encodes.
const MAX_MATCH: usize = MIN_MATCH + 0x7f;
/// Maximum literal run a single token encodes.
const MAX_LITERAL: usize = 128;
/// log2 of the match-finder hash table size.
const HASH_BITS: u32 = 15;
/// Upper bound on the speculative output pre-allocation during decode.
const MAX_PREALLOC: usize = 1 << 24;

/// The Zippy-like LZ77 codec.
pub struct LzCodec;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

impl Codec for LzCodec {
    fn name(&self) -> &'static str {
        "zippy"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        varint::write_u64(&mut out, input.len() as u64);
        if input.len() < MIN_MATCH {
            flush_literals(&mut out, input);
            return out;
        }

        let mut table = vec![u32::MAX; 1 << HASH_BITS];
        let mut i = 0;
        let mut literal_start = 0;
        // Positions beyond this cannot start a 4-byte match.
        let last_match_start = input.len() - MIN_MATCH;

        while i <= last_match_start {
            let h = hash4(&input[i..]);
            let candidate = table[h] as usize;
            table[h] = i as u32;

            if candidate != u32::MAX as usize
                && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH]
            {
                // Extend the match as far as it goes.
                let mut len = MIN_MATCH;
                let limit = (input.len() - i).min(MAX_MATCH);
                while len < limit && input[candidate + len] == input[i + len] {
                    len += 1;
                }
                flush_literals(&mut out, &input[literal_start..i]);
                out.push(0x80 | (len - MIN_MATCH) as u8);
                varint::write_u64(&mut out, (i - candidate) as u64);

                // Seed the table with a few positions inside the match so
                // that later occurrences still find it.
                let end = i + len;
                let mut j = i + 1;
                while j < end.min(last_match_start + 1) {
                    table[hash4(&input[j..])] = j as u32;
                    j += 2;
                }
                i = end;
                literal_start = i;
            } else {
                i += 1;
            }
        }
        flush_literals(&mut out, &input[literal_start..]);
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let mut pos = 0;
        let len = varint::read_u64(input, &mut pos)? as usize;
        // A corrupt frame may claim an absurd length; cap the upfront
        // allocation and let the vector grow organically past it.
        let mut out = Vec::with_capacity(len.min(MAX_PREALLOC));
        while out.len() < len {
            let ctrl =
                *input.get(pos).ok_or_else(|| Error::Data("lz: truncated control byte".into()))?;
            pos += 1;
            if ctrl < 0x80 {
                let n = ctrl as usize + 1;
                let lit = input
                    .get(pos..pos + n)
                    .ok_or_else(|| Error::Data("lz: truncated literal run".into()))?;
                out.extend_from_slice(lit);
                pos += n;
            } else {
                let n = (ctrl & 0x7f) as usize + MIN_MATCH;
                let dist = varint::read_u64(input, &mut pos)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(Error::Data(format!(
                        "lz: invalid copy distance {dist} at output position {}",
                        out.len()
                    )));
                }
                let start = out.len() - dist;
                if dist >= n {
                    out.extend_from_within(start..start + n);
                } else {
                    // Overlapping copy: reproduce byte by byte.
                    for k in 0..n {
                        let byte = out[start + k];
                        out.push(byte);
                    }
                }
            }
        }
        if out.len() != len {
            return Err(Error::Data(format!("lz: expected {len} bytes, produced {}", out.len())));
        }
        Ok(out)
    }
}

fn flush_literals(out: &mut Vec<u8>, mut literals: &[u8]) {
    while !literals.is_empty() {
        let n = literals.len().min(MAX_LITERAL);
        out.push((n - 1) as u8);
        out.extend_from_slice(&literals[..n]);
        literals = &literals[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let c = LzCodec.compress(input);
        let d = LzCodec.decompress(&c).expect("decompress");
        assert_eq!(d, input, "round trip failed for len {}", input.len());
        c
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(round_trip(b"").len() <= 2);
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn repeated_pattern_compresses() {
        let input: Vec<u8> = b"the quick brown fox ".iter().cycle().take(20_000).copied().collect();
        let c = round_trip(&input);
        assert!(c.len() < input.len() / 10, "got {} bytes", c.len());
    }

    #[test]
    fn overlapping_copies_rle_style() {
        // A run of one byte is encoded via distance-1 overlapping copies.
        let input = vec![9u8; 5000];
        let c = round_trip(&input);
        assert!(c.len() < 200, "got {} bytes", c.len());
    }

    #[test]
    fn long_distance_matches_found() {
        let mut input = Vec::new();
        input.extend_from_slice(b"unique-prefix-0123456789");
        input.extend(std::iter::repeat_n(0xAAu8, 60_000));
        input.extend_from_slice(b"unique-prefix-0123456789");
        let c = round_trip(&input);
        assert!(c.len() < 1000);
    }

    #[test]
    fn pseudo_random_data_survives() {
        // Multiply-xor sequence: effectively incompressible.
        let mut x = 0x12345678u64;
        let input: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let c = round_trip(&input);
        // Bounded expansion: 1 control byte per 128 literals plus frame.
        assert!(c.len() <= input.len() + input.len() / 128 + 12);
    }

    #[test]
    fn corrupt_distance_is_an_error_not_a_panic() {
        let mut c = Vec::new();
        varint::write_u64(&mut c, 8);
        c.push(0x80); // copy of length 4 ...
        varint::write_u64(&mut c, 99); // ... from before the start of output
        assert!(LzCodec.decompress(&c).is_err());
    }

    #[test]
    fn truncated_frames_error() {
        let input: Vec<u8> = b"hello world hello world".to_vec();
        let c = LzCodec.compress(&input);
        for cut in 0..c.len() {
            let _ = LzCodec.decompress(&c[..cut]); // must not panic
        }
    }

    #[test]
    fn column_like_data_ratio() {
        // Dictionary-encoded chunk ids: small integers with heavy repeats —
        // the shape of the paper's "elements" arrays.
        let input: Vec<u8> = (0..100_000u32).map(|i| (i / 1000 % 25) as u8).collect();
        let c = round_trip(&input);
        assert!(c.len() < input.len() / 20);
    }
}
