//! Fast-decode LZ77 — the workspace's "LZO variant" (§5, "Other
//! Compression Algorithms").
//!
//! The paper's production system replaced Zippy with an LZO variant that
//! gave *"an about 10% better compression ratio and was up to twice as fast
//! when decompressing"*. This codec chases the same trade-offs relative to
//! [`crate::lz`]:
//!
//! - **decode speed** — copy tokens carry a fixed-width 2-byte distance, so
//!   the hot decode loop never parses varints;
//! - **ratio** — a twice-as-large match-finder hash table (fewer missed
//!   matches) at the cost of slower compression.
//!
//! Frame layout: `varint(uncompressed_len)`, then tokens. Control byte
//! `c < 0x20`: literal run of `c + 1` bytes. `0x20 <= c < 0xa0`: a *short*
//! copy of `(c - 0x20) + 3` bytes (3..=130) whose distance-minus-one is one
//! byte (≤ 256 back) — the dominant token in dictionary-encoded column
//! payloads. `c >= 0xa0`: a *long* copy of `(c - 0xa0) + 4` bytes
//! (4..=99) with a fixed 2-byte little-endian distance (window 64 KiB).

use crate::varint;
use crate::Codec;
use pd_common::{Error, Result};

const MIN_MATCH: usize = 4;
const MAX_SHORT_MATCH: usize = 3 + (0x9f - 0x20); // 130
const SHORT_WINDOW: usize = 256;
const MAX_LONG_MATCH: usize = 4 + (0xff - 0xa0); // 99
const MAX_LITERAL: usize = 32;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 16;
/// Upper bound on the speculative output pre-allocation during decode.
const MAX_PREALLOC: usize = 1 << 24;

/// The fast-decode LZ codec.
pub struct LzfCodec;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

impl Codec for LzfCodec {
    fn name(&self) -> &'static str {
        "lzf"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        varint::write_u64(&mut out, input.len() as u64);
        if input.len() < MIN_MATCH {
            flush_literals(&mut out, input);
            return out;
        }

        let mut table = vec![u32::MAX; 1 << HASH_BITS];
        let mut i = 0;
        let mut literal_start = 0;
        let last_match_start = input.len() - MIN_MATCH;

        while i <= last_match_start {
            let h = hash4(&input[i..]);
            let candidate = table[h] as usize;
            table[h] = i as u32;

            let in_window = candidate != u32::MAX as usize && i - candidate <= WINDOW;
            if in_window && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH] {
                let dist = i - candidate;
                let form_cap = if dist <= SHORT_WINDOW { MAX_SHORT_MATCH } else { MAX_LONG_MATCH };
                let mut len = MIN_MATCH;
                let limit = (input.len() - i).min(form_cap);
                while len < limit && input[candidate + len] == input[i + len] {
                    len += 1;
                }
                flush_literals(&mut out, &input[literal_start..i]);
                if dist <= SHORT_WINDOW {
                    out.push(0x20 + (len - 3) as u8);
                    out.push((dist - 1) as u8);
                } else {
                    out.push(0xa0 + (len - MIN_MATCH) as u8);
                    out.extend_from_slice(&((dist - 1) as u16).to_le_bytes());
                }

                // Dense table updates inside the match keep later
                // occurrences findable (the ratio edge over `lz`).
                let end = i + len;
                let mut j = i + 1;
                while j < end.min(last_match_start + 1) {
                    table[hash4(&input[j..])] = j as u32;
                    j += 1;
                }
                i = end;
                literal_start = i;
            } else {
                i += 1;
            }
        }
        flush_literals(&mut out, &input[literal_start..]);
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let mut pos = 0;
        let len = varint::read_u64(input, &mut pos)? as usize;
        // A corrupt frame may claim an absurd length; cap the upfront
        // allocation and let the vector grow organically past it.
        let mut out = Vec::with_capacity(len.min(MAX_PREALLOC));
        while out.len() < len {
            let ctrl =
                *input.get(pos).ok_or_else(|| Error::Data("lzf: truncated control byte".into()))?;
            pos += 1;
            if ctrl < 0x20 {
                let n = ctrl as usize + 1;
                let lit = input
                    .get(pos..pos + n)
                    .ok_or_else(|| Error::Data("lzf: truncated literal run".into()))?;
                out.extend_from_slice(lit);
                pos += n;
            } else {
                let (n, dist) = if ctrl < 0xa0 {
                    let n = (ctrl - 0x20) as usize + 3;
                    let d = *input
                        .get(pos)
                        .ok_or_else(|| Error::Data("lzf: truncated distance".into()))?
                        as usize
                        + 1;
                    pos += 1;
                    (n, d)
                } else {
                    let n = (ctrl - 0xa0) as usize + MIN_MATCH;
                    let raw = input
                        .get(pos..pos + 2)
                        .ok_or_else(|| Error::Data("lzf: truncated distance".into()))?;
                    let d = u16::from_le_bytes(raw.try_into().expect("2 bytes")) as usize + 1;
                    pos += 2;
                    (n, d)
                };
                if dist > out.len() {
                    return Err(Error::Data(format!(
                        "lzf: invalid copy distance {dist} at output position {}",
                        out.len()
                    )));
                }
                let start = out.len() - dist;
                if dist >= n {
                    out.extend_from_within(start..start + n);
                } else {
                    for k in 0..n {
                        let byte = out[start + k];
                        out.push(byte);
                    }
                }
            }
        }
        if out.len() != len {
            return Err(Error::Data(format!("lzf: expected {len} bytes, produced {}", out.len())));
        }
        Ok(out)
    }
}

fn flush_literals(out: &mut Vec<u8>, mut literals: &[u8]) {
    while !literals.is_empty() {
        let n = literals.len().min(MAX_LITERAL);
        out.push((n - 1) as u8);
        out.extend_from_slice(&literals[..n]);
        literals = &literals[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let c = LzfCodec.compress(input);
        let d = LzfCodec.decompress(&c).expect("decompress");
        assert_eq!(d, input, "round trip failed for len {}", input.len());
        c
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"ab");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn maximum_length_matches() {
        // A giant run exercises maximal copy tokens repeatedly.
        let input = vec![3u8; 100_000];
        let c = round_trip(&input);
        assert!(c.len() < 2000, "got {}", c.len());
    }

    #[test]
    fn window_limit_respected() {
        // A repeat farther back than 64 KiB cannot be matched; the codec
        // must still round-trip.
        let mut input = vec![];
        input.extend_from_slice(b"needle-in-a-haystack");
        input.extend((0..100_000u32).map(|i| (i % 251) as u8));
        input.extend_from_slice(b"needle-in-a-haystack");
        round_trip(&input);
    }

    #[test]
    fn ratio_competitive_with_zippy_on_column_data() {
        // Dictionary-encoded chunk-id payloads: the denser hash table should
        // match or beat the Zippy-style codec.
        let input: Vec<u8> =
            (0..120_000u32).flat_map(|i| ((i / 37 % 900) as u16).to_le_bytes()).collect();
        let lzf = round_trip(&input);
        let zippy = crate::lz::LzCodec.compress(&input);
        assert!(
            lzf.len() <= zippy.len() + zippy.len() / 10,
            "lzf {} vs zippy {}",
            lzf.len(),
            zippy.len()
        );
    }

    #[test]
    fn corrupt_distance_is_an_error() {
        let mut c = Vec::new();
        varint::write_u64(&mut c, 10);
        c.push(0x21); // short copy len 4
        c.push(0xff); // distance 256 with empty output
        assert!(LzfCodec.decompress(&c).is_err());
        let mut c = Vec::new();
        varint::write_u64(&mut c, 10);
        c.push(0xa0); // long copy len 4
        c.push(0xff);
        c.push(0x0f); // distance 4096 with empty output
        assert!(LzfCodec.decompress(&c).is_err());
    }

    #[test]
    fn truncation_never_panics() {
        let input = b"abcabcabc_abcabcabc_abcabcabc".repeat(20);
        let c = LzfCodec.compress(&input);
        for cut in 0..c.len() {
            let _ = LzfCodec.decompress(&c[..cut]);
        }
    }
}
