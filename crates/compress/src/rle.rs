//! Byte run-length encoding.
//!
//! The paper's row-reordering section (§3, Figures 2–4) motivates reordering
//! with "the basic compression algorithm run-length encoding (RLE) which
//! replaces consecutive identical values with a counter and the value
//! itself". This module provides that codec; the reorder experiment measures
//! its output size with and without the lexicographic reordering, and
//! [`rle_cost_u32`] computes the Figure 3 "number of counters" metric
//! directly.

use crate::varint;
use crate::Codec;
use pd_common::{Error, Result};

/// Run-length codec over bytes.
///
/// Frame: `varint(uncompressed_len)` followed by tokens. A control byte
/// `c < 0x80` announces a literal run of `c + 1` bytes; `c >= 0x80`
/// announces `(c - 0x80) + 2` repetitions of the single following byte.
pub struct RleCodec;

const MAX_LITERAL: usize = 128;
const MAX_RUN: usize = 129;
/// Upper bound on the speculative output pre-allocation during decode.
const MAX_PREALLOC: usize = 1 << 24;

impl Codec for RleCodec {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 4 + 16);
        varint::write_u64(&mut out, input.len() as u64);
        let mut i = 0;
        let mut literal_start = 0;
        while i < input.len() {
            // Measure the run starting at i.
            let byte = input[i];
            let mut run = 1;
            while i + run < input.len() && input[i + run] == byte && run < MAX_RUN {
                run += 1;
            }
            if run >= 3 {
                flush_literals(&mut out, &input[literal_start..i]);
                out.push(0x80 + (run - 2) as u8);
                out.push(byte);
                i += run;
                literal_start = i;
            } else {
                i += run;
            }
        }
        flush_literals(&mut out, &input[literal_start..]);
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>> {
        let mut pos = 0;
        let len = varint::read_u64(input, &mut pos)? as usize;
        // A corrupt frame may claim an absurd length; cap the upfront
        // allocation and let the vector grow organically past it.
        let mut out = Vec::with_capacity(len.min(MAX_PREALLOC));
        while out.len() < len {
            let ctrl =
                *input.get(pos).ok_or_else(|| Error::Data("rle: truncated control byte".into()))?;
            pos += 1;
            if ctrl < 0x80 {
                let n = ctrl as usize + 1;
                let lit = input
                    .get(pos..pos + n)
                    .ok_or_else(|| Error::Data("rle: truncated literal run".into()))?;
                out.extend_from_slice(lit);
                pos += n;
            } else {
                let n = (ctrl - 0x80) as usize + 2;
                let byte =
                    *input.get(pos).ok_or_else(|| Error::Data("rle: truncated run byte".into()))?;
                pos += 1;
                out.resize(out.len() + n, byte);
            }
        }
        if out.len() != len {
            return Err(Error::Data(format!("rle: expected {len} bytes, produced {}", out.len())));
        }
        Ok(out)
    }
}

fn flush_literals(out: &mut Vec<u8>, mut literals: &[u8]) {
    while !literals.is_empty() {
        let n = literals.len().min(MAX_LITERAL);
        out.push((n - 1) as u8);
        out.extend_from_slice(&literals[..n]);
        literals = &literals[n..];
    }
}

/// The simplified RLE cost of Figure 3: the number of `(counter, value)`
/// pairs needed to encode `values` — i.e. one plus the number of positions
/// where the value changes. An empty slice costs 0.
pub fn rle_cost_u32(values: &[u32]) -> usize {
    if values.is_empty() {
        return 0;
    }
    1 + values.windows(2).filter(|w| w[0] != w[1]).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let c = RleCodec.compress(input);
        let d = RleCodec.decompress(&c).expect("decompress");
        assert_eq!(d, input);
        c
    }

    #[test]
    fn long_runs_collapse() {
        let input = vec![7u8; 100_000];
        let c = round_trip(&input);
        assert!(c.len() < 2000, "compressed to {} bytes", c.len());
    }

    #[test]
    fn incompressible_data_survives() {
        let input: Vec<u8> = (0..255u8).collect();
        let c = round_trip(&input);
        // Worst case overhead: one control byte per 128 literals + frame.
        assert!(c.len() <= input.len() + input.len() / 128 + 12);
    }

    #[test]
    fn mixed_runs_and_literals() {
        let mut input = Vec::new();
        for i in 0..50 {
            input.extend_from_slice(&[i as u8; 5]);
            input.extend_from_slice(b"xyz!");
            input.push(i as u8);
        }
        round_trip(&input);
    }

    #[test]
    fn short_runs_stay_literal() {
        // Runs of 2 are cheaper as literals than as (ctrl, byte) pairs.
        round_trip(b"aabbccddee");
    }

    #[test]
    fn truncated_inputs_error() {
        let c = RleCodec.compress(&[1u8; 100]);
        for cut in 1..c.len() {
            // Any strict prefix must fail or produce short output, never panic.
            let _ = RleCodec.decompress(&c[..cut]);
        }
        assert!(RleCodec.decompress(&[]).is_err());
    }

    #[test]
    fn figure3_cost_metric() {
        assert_eq!(rle_cost_u32(&[]), 0);
        assert_eq!(rle_cost_u32(&[5]), 1);
        assert_eq!(rle_cost_u32(&[0, 0, 0, 1, 1, 1]), 2);
        assert_eq!(rle_cost_u32(&[0, 1, 0, 1]), 4);
        // Sorting minimizes the cost: the reordering insight of §3.
        let mut v = vec![0u32, 1, 0, 1, 0, 1];
        let unsorted = rle_cost_u32(&v);
        v.sort_unstable();
        assert!(rle_cost_u32(&v) < unsorted);
    }
}
