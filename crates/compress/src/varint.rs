//! LEB128 variable-length integers.
//!
//! Used by every codec framing in this crate and by the record-io row
//! format (the paper's record-io is "a binary format based on protocol
//! buffers", whose wire format is exactly these varints).

use pd_common::{Error, Result};

/// Append `value` to `out` as a LEB128 varint (1–10 bytes).
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a varint from `input` starting at `*pos`, advancing `*pos`.
#[inline]
pub fn read_u64(input: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos).ok_or_else(|| Error::Data("truncated varint".into()))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(Error::Data("varint overflows u64".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::Data("varint longer than 10 bytes".into()));
        }
    }
}

/// Zigzag-encode a signed integer so that small magnitudes stay small.
#[inline]
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Append a signed integer as a zigzag varint.
#[inline]
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag(value));
}

/// Read a zigzag varint.
#[inline]
pub fn read_i64(input: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(unzigzag(read_u64(input, pos)?))
}

/// Number of bytes `value` occupies as a varint.
#[inline]
pub fn len_u64(value: u64) -> usize {
    (64 - value.leading_zeros()).div_ceil(7).max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), len_u64(v));
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_values_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(-123456)), -123456);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
        assert!(read_u64(&[], &mut 0).is_err());
    }

    #[test]
    fn overlong_input_errors() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
        // 10-byte varint with overflow bits set.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut pos = 0;
        assert!(read_u64(&buf, &mut pos).is_err());
    }

    #[test]
    fn sequences_read_back_in_order() {
        let mut buf = Vec::new();
        for v in 0..1000u64 {
            write_u64(&mut buf, v * v);
        }
        let mut pos = 0;
        for v in 0..1000u64 {
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v * v);
        }
        assert_eq!(pos, buf.len());
    }
}
