//! Randomized properties: every codec must round-trip arbitrary byte
//! strings and never panic on corrupted input. Driven by a seeded PRNG so
//! failures reproduce exactly.

use pd_common::rng::Rng;
use pd_compress::{Codec, CodecKind};

fn all_codecs() -> Vec<&'static dyn Codec> {
    CodecKind::ALL.iter().map(|k| k.codec()).collect()
}

fn random_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.range_usize(0, max_len + 1);
    (0..len).map(|_| rng.range_u64(0, 256) as u8).collect()
}

#[test]
fn round_trip_arbitrary_bytes() {
    let mut rng = Rng::seed_from_u64(0xc0de_c001);
    for case in 0..64 {
        let input = random_bytes(&mut rng, 4096);
        for codec in all_codecs() {
            let compressed = codec.compress(&input);
            let output = codec
                .decompress(&compressed)
                .unwrap_or_else(|e| panic!("case {case} {}: {e}", codec.name()));
            assert_eq!(output, input, "case {case} codec {}", codec.name());
        }
    }
}

#[test]
fn round_trip_low_entropy_bytes() {
    let mut rng = Rng::seed_from_u64(0xc0de_c002);
    for case in 0..64 {
        // Column-shaped data: few distinct values, long repeats.
        let seed_len = rng.range_usize(1, 16);
        let seed: Vec<u8> = (0..seed_len).map(|_| rng.range_u64(0, 4) as u8).collect();
        let reps = rng.range_usize(1, 400);
        let input: Vec<u8> = seed.iter().cycle().take(seed.len() * reps).copied().collect();
        for codec in all_codecs() {
            let compressed = codec.compress(&input);
            let output = codec
                .decompress(&compressed)
                .unwrap_or_else(|e| panic!("case {case} {}: {e}", codec.name()));
            assert_eq!(output, input, "case {case} codec {}", codec.name());
        }
    }
}

#[test]
fn decompress_never_panics_on_garbage() {
    let mut rng = Rng::seed_from_u64(0xc0de_c003);
    for _ in 0..64 {
        let garbage = random_bytes(&mut rng, 512);
        for codec in all_codecs() {
            // Any result is fine; panics and unbounded allocation are not.
            let _ = codec.decompress(&garbage);
        }
    }
}

#[test]
fn decompress_never_panics_on_truncation() {
    let mut rng = Rng::seed_from_u64(0xc0de_c004);
    for _ in 0..32 {
        let input = random_bytes(&mut rng, 1024);
        let cut_ratio = rng.next_f64();
        for codec in all_codecs() {
            let compressed = codec.compress(&input);
            let cut = (compressed.len() as f64 * cut_ratio) as usize;
            let _ = codec.decompress(&compressed[..cut]);
        }
    }
}

#[test]
fn varint_round_trip() {
    use pd_compress::varint;
    let mut rng = Rng::seed_from_u64(0xc0de_c005);
    for _ in 0..64 {
        let values: Vec<u64> = (0..rng.range_usize(0, 200)).map(|_| rng.next_u64()).collect();
        let mut buf = Vec::new();
        for &v in &values {
            varint::write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(varint::read_u64(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }
}

#[test]
fn zigzag_varint_round_trip() {
    use pd_compress::varint;
    let mut rng = Rng::seed_from_u64(0xc0de_c006);
    for _ in 0..64 {
        let values: Vec<i64> =
            (0..rng.range_usize(0, 200)).map(|_| rng.next_u64() as i64).collect();
        let mut buf = Vec::new();
        for &v in &values {
            varint::write_i64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(varint::read_i64(&buf, &mut pos).unwrap(), v);
        }
    }
}
