//! Property tests: every codec must round-trip arbitrary byte strings and
//! never panic on corrupted input.

use pd_compress::{Codec, CodecKind};
use proptest::prelude::*;

fn all_codecs() -> Vec<&'static dyn Codec> {
    CodecKind::ALL.iter().map(|k| k.codec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for codec in all_codecs() {
            let compressed = codec.compress(&input);
            let output = codec.decompress(&compressed)
                .unwrap_or_else(|e| panic!("{}: {e}", codec.name()));
            prop_assert_eq!(&output, &input, "codec {}", codec.name());
        }
    }

    #[test]
    fn round_trip_low_entropy_bytes(
        seed in proptest::collection::vec(0u8..4, 1..16),
        reps in 1usize..400,
    ) {
        // Column-shaped data: few distinct values, long repeats.
        let input: Vec<u8> = seed.iter().cycle().take(seed.len() * reps).copied().collect();
        for codec in all_codecs() {
            let compressed = codec.compress(&input);
            let output = codec.decompress(&compressed)
                .unwrap_or_else(|e| panic!("{}: {e}", codec.name()));
            prop_assert_eq!(&output, &input, "codec {}", codec.name());
        }
    }

    #[test]
    fn decompress_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        for codec in all_codecs() {
            // Any result is fine; panics and unbounded allocation are not.
            let _ = codec.decompress(&garbage);
        }
    }

    #[test]
    fn decompress_never_panics_on_truncation(
        input in proptest::collection::vec(any::<u8>(), 0..1024),
        cut_ratio in 0.0f64..1.0,
    ) {
        for codec in all_codecs() {
            let compressed = codec.compress(&input);
            let cut = (compressed.len() as f64 * cut_ratio) as usize;
            let _ = codec.decompress(&compressed[..cut]);
        }
    }

    #[test]
    fn varint_round_trip(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        use pd_compress::varint;
        let mut buf = Vec::new();
        for &v in &values {
            varint::write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(varint::read_u64(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_varint_round_trip(values in proptest::collection::vec(any::<i64>(), 0..200)) {
        use pd_compress::varint;
        let mut buf = Vec::new();
        for &v in &values {
            varint::write_i64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(varint::read_i64(&buf, &mut pos).unwrap(), v);
        }
    }
}
