//! Caching: the two-layer in-memory store, eviction policies, and the
//! chunk-result cache.
//!
//! §3 ("Generic Compression Algorithm"): *"we decided to use a hybrid
//! approach with two 'layers' of data-structures held in-memory:
//! uncompressed and compressed. Moving items between these layers or
//! finally evicting them entirely can be done, e.g., with the well-known
//! LRU cache eviction heuristic."*
//!
//! §5 ("Improved Cache Heuristics"): *"one-time scans of large files may
//! invalidate the entire cache [...] we have implemented a more
//! sophisticated cache eviction policy, replacing LRU. We chose an approach
//! similar to the adaptive-replacement-cache \[22\] and the 2Q algorithm
//! \[19\]."* — [`CachePolicy::TwoQ`] and [`CachePolicy::Arc`] implement those.
//!
//! §6: *"additionally to skipping over inactive chunks, we also cache
//! results for chunks which are fully active"* — [`ResultCache`].
//!
//! The payloads themselves always live in the owning [`crate::DataStore`];
//! the tiered cache tracks *residency* and returns the byte costs a real
//! deployment would pay (disk reads, decompressions), which feed the §6
//! accounting and Figure 5.

use pd_common::sync::Mutex;
use pd_common::FxHashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Cache key: (column identity, chunk index).
pub type CacheKey = (Arc<str>, u32);

/// Eviction policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Least-recently-used.
    Lru,
    /// Johnson & Shasha's 2Q (A1in / A1out / Am).
    TwoQ,
    /// Megiddo & Modha's adaptive replacement cache.
    #[default]
    Arc,
}

/// What a chunk access cost in modeled I/O.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCost {
    /// Bytes read from (modeled) disk — compressed representation.
    pub disk_bytes: u64,
    /// Bytes produced by decompression (compressed → uncompressed layer).
    pub decompressed_bytes: u64,
}

impl AccessCost {
    pub fn hit(&self) -> bool {
        self.disk_bytes == 0 && self.decompressed_bytes == 0
    }
}

/// The two-layer residency model.
pub struct TieredCache {
    inner: Mutex<TieredInner>,
}

struct TieredInner {
    uncompressed: Layer,
    compressed: Layer,
}

impl TieredCache {
    /// Budgets are in bytes per layer.
    pub fn new(policy: CachePolicy, uncompressed_budget: usize, compressed_budget: usize) -> Self {
        TieredCache {
            inner: Mutex::new(TieredInner {
                uncompressed: Layer::new(policy, uncompressed_budget),
                compressed: Layer::new(policy, compressed_budget),
            }),
        }
    }

    /// Record an access to a chunk payload with the given layer sizes,
    /// returning what the access cost.
    pub fn touch(&self, key: &CacheKey, uncompressed: usize, compressed: usize) -> AccessCost {
        let mut inner = self.inner.lock();
        if inner.uncompressed.access(key) {
            return AccessCost::default();
        }
        let from_compressed = inner.compressed.access(key);
        let cost = if from_compressed {
            AccessCost { disk_bytes: 0, decompressed_bytes: uncompressed as u64 }
        } else {
            AccessCost { disk_bytes: compressed as u64, decompressed_bytes: uncompressed as u64 }
        };
        // Promote into the uncompressed layer; demoted entries fall to the
        // compressed layer, whose own victims vanish entirely.
        let demoted = inner.uncompressed.insert(key.clone(), uncompressed);
        for (k, _) in demoted {
            // Compressed size of a demoted sibling is approximated by the
            // ratio of the entry being inserted; exact sizes only shift the
            // simulation slightly and are tracked when that key is touched
            // again.
            let approx = compressed.max(1);
            inner.compressed.insert(k, approx);
        }
        cost
    }

    /// Drop everything (e.g. between experiment phases).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let (up, ub) = (inner.uncompressed.policy, inner.uncompressed.budget);
        let (cp, cb) = (inner.compressed.policy, inner.compressed.budget);
        inner.uncompressed = Layer::new(up, ub);
        inner.compressed = Layer::new(cp, cb);
    }

    /// Bytes currently resident in (uncompressed, compressed) layers.
    pub fn resident_bytes(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        (inner.uncompressed.used, inner.compressed.used)
    }
}

/// One policy-managed layer with a byte budget.
struct Layer {
    policy: CachePolicy,
    budget: usize,
    used: usize,
    sizes: FxHashMap<CacheKey, usize>,
    state: PolicyState,
}

enum PolicyState {
    Lru {
        order: OrderedKeys,
    },
    TwoQ {
        a1in: VecDeque<CacheKey>,
        a1out: VecDeque<CacheKey>,
        am: OrderedKeys,
        a1in_bytes: usize,
    },
    Arc {
        t1: OrderedKeys,
        t2: OrderedKeys,
        b1: OrderedKeys,
        b2: OrderedKeys,
        /// Target size of t1, in bytes.
        p: usize,
    },
}

impl Layer {
    fn new(policy: CachePolicy, budget: usize) -> Layer {
        let state = match policy {
            CachePolicy::Lru => PolicyState::Lru { order: OrderedKeys::default() },
            CachePolicy::TwoQ => PolicyState::TwoQ {
                a1in: VecDeque::new(),
                a1out: VecDeque::new(),
                am: OrderedKeys::default(),
                a1in_bytes: 0,
            },
            CachePolicy::Arc => PolicyState::Arc {
                t1: OrderedKeys::default(),
                t2: OrderedKeys::default(),
                b1: OrderedKeys::default(),
                b2: OrderedKeys::default(),
                p: 0,
            },
        };
        Layer { policy, budget, used: 0, sizes: FxHashMap::default(), state }
    }

    /// Is `key` resident? Updates recency structures on hit.
    fn access(&mut self, key: &CacheKey) -> bool {
        if !self.sizes.contains_key(key) {
            return false;
        }
        match &mut self.state {
            PolicyState::Lru { order } => order.move_to_back(key),
            PolicyState::TwoQ { a1in, am, .. } => {
                // A hit in A1in stays put (FIFO); a hit in Am refreshes.
                if !a1in.contains(key) {
                    am.move_to_back(key);
                }
            }
            PolicyState::Arc { t1, t2, .. } => {
                // Any resident hit promotes to the top of T2.
                if t1.remove(key) || t2.remove(key) {
                    t2.push_back(key.clone());
                }
            }
        }
        true
    }

    /// Insert `key` with `bytes`; returns the evicted entries.
    fn insert(&mut self, key: CacheKey, bytes: usize) -> Vec<(CacheKey, usize)> {
        if self.budget == 0 || bytes > self.budget {
            return Vec::new(); // Oversized entries are never cached.
        }
        if self.sizes.contains_key(&key) {
            self.access(&key);
            return Vec::new();
        }
        let mut evicted = Vec::new();
        // Make room.
        while self.used + bytes > self.budget {
            match self.victim(&key) {
                Some(v) => {
                    let sz = self.sizes.remove(&v).expect("victim is resident");
                    self.used -= sz;
                    evicted.push((v, sz));
                }
                None => return evicted,
            }
        }
        self.used += bytes;
        self.sizes.insert(key.clone(), bytes);
        match &mut self.state {
            PolicyState::Lru { order } => order.push_back(key),
            PolicyState::TwoQ { a1in, a1out, am, a1in_bytes } => {
                // Keys remembered in the ghost list go straight to Am.
                if let Some(pos) = a1out.iter().position(|k| k == &key) {
                    a1out.remove(pos);
                    am.push_back(key);
                } else {
                    *a1in_bytes += bytes;
                    a1in.push_back(key);
                }
            }
            PolicyState::Arc { t1, t2, b1, b2, p } => {
                // Ghost hits adapt p and insert into T2.
                if b1.remove(&key) {
                    *p = (*p + bytes).min(self.budget);
                    t2.push_back(key);
                } else if b2.remove(&key) {
                    *p = p.saturating_sub(bytes);
                    t2.push_back(key);
                } else {
                    t1.push_back(key);
                }
            }
        }
        evicted
    }

    /// Choose a victim according to the policy.
    fn victim(&mut self, incoming: &CacheKey) -> Option<CacheKey> {
        match &mut self.state {
            PolicyState::Lru { order } => order.pop_front(),
            PolicyState::TwoQ { a1in, a1out, am, a1in_bytes } => {
                // Evict from A1in while it exceeds ~25% of the budget;
                // remember victims in the ghost list.
                let kin = self.budget / 4;
                if *a1in_bytes > kin || am.is_empty() {
                    if let Some(k) = a1in.pop_front() {
                        *a1in_bytes -= self.sizes.get(&k).copied().unwrap_or(0);
                        a1out.push_back(k.clone());
                        while a1out.len() > 512 {
                            a1out.pop_front();
                        }
                        return Some(k);
                    }
                }
                am.pop_front().or_else(|| a1in.pop_front())
            }
            PolicyState::Arc { t1, t2, b1, b2, p } => {
                let t1_bytes: usize =
                    t1.keys().map(|k| self.sizes.get(k).copied().unwrap_or(0)).sum();
                let prefer_t1 =
                    t1_bytes > *p || (t1_bytes == *p && b2.contains(incoming)) || t2.is_empty();
                let (from, ghost) = if prefer_t1 && !t1.is_empty() { (t1, b1) } else { (t2, b2) };
                let victim = from.pop_front()?;
                ghost.push_back(victim.clone());
                while ghost.len() > 512 {
                    ghost.pop_front();
                }
                Some(victim)
            }
        }
    }
}

/// A queue with O(log n) arbitrary removal: (stamp ↔ key) maps.
#[derive(Default)]
struct OrderedKeys {
    by_stamp: std::collections::BTreeMap<u64, CacheKey>,
    stamps: FxHashMap<CacheKey, u64>,
    next: u64,
}

impl OrderedKeys {
    fn push_back(&mut self, key: CacheKey) {
        let stamp = self.next;
        self.next += 1;
        self.by_stamp.insert(stamp, key.clone());
        self.stamps.insert(key, stamp);
    }

    fn pop_front(&mut self) -> Option<CacheKey> {
        let (&stamp, _) = self.by_stamp.iter().next()?;
        let key = self.by_stamp.remove(&stamp).expect("present");
        self.stamps.remove(&key);
        Some(key)
    }

    fn move_to_back(&mut self, key: &CacheKey) {
        if self.remove(key) {
            self.push_back(key.clone());
        }
    }

    fn remove(&mut self, key: &CacheKey) -> bool {
        match self.stamps.remove(key) {
            Some(stamp) => {
                self.by_stamp.remove(&stamp);
                true
            }
            None => false,
        }
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.stamps.contains_key(key)
    }

    fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    fn len(&self) -> usize {
        self.stamps.len()
    }

    fn keys(&self) -> impl Iterator<Item = &CacheKey> {
        self.by_stamp.values()
    }
}

/// One cached group-by partial for a fully active chunk.
///
/// Keys are the **global-ids** of the group-by key columns (stable for the
/// lifetime of a store): the executor folds chunks in the id domain and
/// translates ids to [`pd_common::Value`]s only once per distinct result group, so a
/// cached chunk costs no dictionary lookups at all on a hit.
pub type ChunkGroups = Vec<(Box<[u32]>, Vec<crate::exec::AggState>)>;

/// A chunk's cached (or freshly computed) group-by contribution.
pub enum CachedChunk {
    /// Generic per-group aggregation states.
    Groups(ChunkGroups),
    /// The paper's fast path, kept in its raw form: a single plain group-by
    /// key and `COUNT(*)` only — counts indexed by **chunk-id**, no
    /// per-group allocation at all. The fold adds these straight into a
    /// global-id-indexed array via the chunk dictionary.
    DenseSingleCount(Vec<u64>),
}

impl CachedChunk {
    /// Approximate in-memory footprint, for cost-aware cache admission.
    pub fn approx_bytes(&self) -> usize {
        match self {
            CachedChunk::Groups(groups) => groups
                .iter()
                .map(|(key, states)| {
                    std::mem::size_of::<(Box<[u32]>, Vec<crate::exec::AggState>)>()
                        + key.len() * 4
                        + states.iter().map(|s| s.approx_bytes()).sum::<usize>()
                })
                .sum(),
            CachedChunk::DenseSingleCount(counts) => counts.len() * 8,
        }
    }
}

/// A thread-safe, capacity-bounded map with cost-aware admission and
/// hit/miss accounting — the shared bookkeeping behind the §6 chunk-result
/// cache and the distributed layer's shard/worker caches. Eviction only
/// ever drops entries, so a capacity bound can change *what is cached*,
/// never *what a query returns*.
///
/// Admission at capacity compares the incoming entry's cost (typically
/// bytes × measured recompute ns, see [`cost_score`]) with the cheapest
/// resident's: cheaper entries are rejected, costlier ones evict the
/// cheapest resident. Entries inserted with the plain [`BoundedCache::put`]
/// carry cost 0, where the policy degrades to exactly the old FIFO: among
/// equal costs the victim is the oldest entry.
pub struct BoundedCache<K, V> {
    inner: Mutex<BoundedInner<K, V>>,
}

struct BoundedEntry<V> {
    value: V,
    cost: u64,
    stamp: u64,
}

struct BoundedInner<K, V> {
    entries: FxHashMap<K, BoundedEntry<V>>,
    /// Victim index ordered by (cost, stamp): cheapest first, FIFO among
    /// equal costs — O(log n) victim selection.
    by_score: std::collections::BTreeMap<(u64, u64), K>,
    next_stamp: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    rejected: u64,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> BoundedCache<K, V> {
    /// Cache at most `capacity` entries.
    pub fn new(capacity: usize) -> BoundedCache<K, V> {
        BoundedCache {
            inner: Mutex::new(BoundedInner {
                entries: FxHashMap::default(),
                by_score: std::collections::BTreeMap::new(),
                next_stamp: 0,
                capacity: capacity.max(1),
                hits: 0,
                misses: 0,
                rejected: 0,
            }),
        }
    }

    pub fn get(&self, key: &K) -> Option<V> {
        self.get_borrowed(key)
    }

    /// [`BoundedCache::get`] keyed by any borrowed form of `K` (e.g.
    /// `&str` for `String` keys), so lookup paths need not allocate a
    /// throwaway owned key.
    pub fn get_borrowed<Q>(&self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: std::hash::Hash + Eq + ?Sized,
    {
        let mut inner = self.inner.lock();
        match inner.entries.get(key).map(|e| e.value.clone()) {
            Some(hit) => {
                inner.hits += 1;
                Some(hit)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert with cost 0 (pure FIFO admission among such entries).
    pub fn put(&self, key: K, value: V) {
        self.put_costed(key, value, 0)
    }

    /// Insert with an admission cost: at capacity the incoming entry must
    /// cost at least as much as the cheapest resident, which it evicts.
    pub fn put_costed(&self, key: K, value: V, cost: u64) {
        let mut inner = self.inner.lock();
        if let Some((old_cost, stamp)) = inner.entries.get(&key).map(|e| (e.cost, e.stamp)) {
            // Same key: replace in place, keeping the insertion stamp.
            if old_cost != cost {
                inner.by_score.remove(&(old_cost, stamp));
                inner.by_score.insert((cost, stamp), key.clone());
            }
            let e = inner.entries.get_mut(&key).expect("entry is present");
            e.value = value;
            e.cost = cost;
            return;
        }
        while inner.entries.len() >= inner.capacity {
            let (&(vcost, vstamp), _) = inner.by_score.iter().next().expect("index matches map");
            if cost < vcost {
                inner.rejected += 1;
                return;
            }
            let victim = inner.by_score.remove(&(vcost, vstamp)).expect("victim is present");
            inner.entries.remove(&victim);
        }
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.by_score.insert((cost, stamp), key.clone());
        inner.entries.insert(key, BoundedEntry { value, cost, stamp });
    }

    /// Drop every entry (hit/miss counters keep accumulating).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.by_score.clear();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Inserts refused because the incoming cost was below every
    /// resident's at capacity.
    pub fn rejected(&self) -> u64 {
        self.inner.lock().rejected
    }
}

/// The cost-aware admission score: approximate entry bytes × measured
/// recompute nanoseconds. Saturating; never 0 for a real (non-empty,
/// measured) entry, so such entries always outrank plain cost-0 inserts.
pub fn cost_score(bytes: usize, recompute: std::time::Duration) -> u64 {
    let ns = recompute.as_nanos().min(u64::MAX as u128) as u64;
    (bytes as u64).max(1).saturating_mul(ns.max(1))
}

/// The §6 chunk-result cache: results of fully-active chunks, keyed by
/// (query signature, chunk).
pub struct ResultCache {
    entries: BoundedCache<(String, u32), Arc<CachedChunk>>,
}

impl ResultCache {
    /// Cache at most `capacity` chunk results (FIFO bound).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache { entries: BoundedCache::new(capacity) }
    }

    pub fn get(&self, signature: &str, chunk: u32) -> Option<Arc<CachedChunk>> {
        self.entries.get(&(signature.to_owned(), chunk))
    }

    pub fn put(&self, signature: &str, chunk: u32, groups: Arc<CachedChunk>) {
        self.entries.put((signature.to_owned(), chunk), groups);
    }

    /// [`ResultCache::put`] with cost-aware admission: the entry's score is
    /// its approximate bytes × the measured time to recompute it.
    pub fn put_costed(
        &self,
        signature: &str,
        chunk: u32,
        groups: Arc<CachedChunk>,
        recompute: std::time::Duration,
    ) {
        let cost = cost_score(groups.approx_bytes(), recompute);
        self.entries.put_costed((signature.to_owned(), chunk), groups, cost);
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        self.entries.stats()
    }

    /// Drop every cached chunk result (used when an in-place append makes
    /// resident chunk results stale without a process respawn).
    pub fn clear(&self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, chunk: u32) -> CacheKey {
        (Arc::from(name), chunk)
    }

    #[test]
    fn first_touch_pays_disk_then_hits() {
        let cache = TieredCache::new(CachePolicy::Lru, 10_000, 10_000);
        let k = key("col", 0);
        let c1 = cache.touch(&k, 1000, 300);
        assert_eq!(c1, AccessCost { disk_bytes: 300, decompressed_bytes: 1000 });
        let c2 = cache.touch(&k, 1000, 300);
        assert!(c2.hit());
    }

    #[test]
    fn demotion_to_compressed_layer_skips_disk() {
        let cache = TieredCache::new(CachePolicy::Lru, 2_000, 100_000);
        let a = key("col", 0);
        cache.touch(&a, 1500, 200);
        // Fill the tiny uncompressed layer so `a` demotes.
        for i in 1..4 {
            cache.touch(&key("col", i), 1500, 200);
        }
        let back = cache.touch(&a, 1500, 200);
        assert_eq!(back.disk_bytes, 0, "demoted entry re-enters from the compressed layer");
        assert_eq!(back.decompressed_bytes, 1500);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = TieredCache::new(CachePolicy::Lru, 3_000, 0);
        let (a, b, c, d) = (key("x", 0), key("x", 1), key("x", 2), key("x", 3));
        cache.touch(&a, 1000, 100);
        cache.touch(&b, 1000, 100);
        cache.touch(&c, 1000, 100);
        cache.touch(&a, 1000, 100); // refresh a
        cache.touch(&d, 1000, 100); // evicts b (oldest)
        assert!(cache.touch(&a, 1000, 100).hit());
        assert!(!cache.touch(&b, 1000, 100).hit());
    }

    #[test]
    fn two_q_and_arc_resist_repeated_scans() {
        // Hot set of 4 entries, a 100-entry scan, one hot-set re-touch
        // (ghost-aware policies re-admit into the protected region), a
        // second scan, then measure: LRU loses the hot set to the second
        // scan; 2Q and ARC keep it.
        let run = |policy: CachePolicy| -> usize {
            let cache = TieredCache::new(policy, 8_000, 0);
            let hot: Vec<CacheKey> = (0..4).map(|i| key("hot", i)).collect();
            for _ in 0..5 {
                for k in &hot {
                    cache.touch(k, 1000, 100);
                }
            }
            for i in 0..100 {
                cache.touch(&key("scan", i), 1000, 100);
            }
            for k in &hot {
                cache.touch(k, 1000, 100);
            }
            for i in 100..200 {
                cache.touch(&key("scan", i), 1000, 100);
            }
            hot.iter().filter(|k| cache.touch(k, 1000, 100).hit()).count()
        };
        let lru_hits = run(CachePolicy::Lru);
        let twoq_hits = run(CachePolicy::TwoQ);
        let arc_hits = run(CachePolicy::Arc);
        assert_eq!(lru_hits, 0, "LRU is flushed by the scan");
        assert!(twoq_hits > 0, "2Q keeps hot entries (got {twoq_hits})");
        assert!(arc_hits > 0, "ARC keeps hot entries (got {arc_hits})");
    }

    #[test]
    fn oversized_entries_bypass_cache() {
        let cache = TieredCache::new(CachePolicy::Arc, 100, 100);
        let k = key("big", 0);
        cache.touch(&k, 1000, 500);
        assert!(!cache.touch(&k, 1000, 500).hit(), "entry larger than budget never caches");
    }

    #[test]
    fn clear_resets_residency() {
        let cache = TieredCache::new(CachePolicy::Lru, 10_000, 10_000);
        let k = key("col", 0);
        cache.touch(&k, 1000, 100);
        assert!(cache.touch(&k, 1000, 100).hit());
        cache.clear();
        assert!(!cache.touch(&k, 1000, 100).hit());
        assert_eq!(cache.resident_bytes().0, 1000);
    }

    #[test]
    fn result_cache_round_trip_and_bound() {
        let rc = ResultCache::new(2);
        let groups: Arc<CachedChunk> = Arc::new(CachedChunk::Groups(vec![]));
        rc.put("sig", 0, groups.clone());
        rc.put("sig", 1, groups.clone());
        assert!(rc.get("sig", 0).is_some());
        rc.put("sig", 2, groups); // evicts chunk 0 (FIFO)
        assert!(rc.get("sig", 0).is_none());
        assert!(rc.get("sig", 2).is_some());
        let (hits, misses) = rc.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn distinct_signatures_do_not_collide() {
        let rc = ResultCache::new(8);
        rc.put("q1", 0, Arc::new(CachedChunk::Groups(vec![])));
        assert!(rc.get("q2", 0).is_none());
    }

    #[test]
    fn bounded_cache_clear_invalidates_but_keeps_counters() {
        let cache: BoundedCache<u32, u32> = BoundedCache::new(4);
        cache.put(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.stats(), (1, 1), "counters accumulate across clears");
    }

    #[test]
    fn bounded_cache_put_is_idempotent_per_key() {
        let cache: BoundedCache<u32, u32> = BoundedCache::new(2);
        cache.put(1, 10);
        cache.put(1, 11); // replaces value, no duplicate FIFO slot
        cache.put(2, 20);
        cache.put(3, 30); // evicts key 1 only
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.get(&3), Some(30));
    }
}
