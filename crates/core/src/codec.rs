//! Wire codecs for the execution layer: the types that cross the §4
//! process boundary.
//!
//! A leaf worker returns `(PartialResult, ScanStats)`; a merge server
//! returns the same after folding its subtree. Both therefore need
//! [`Encode`] / [`Decode`] — and the encodings must preserve every state
//! *bit-identically*, because the distributed equivalence suite asserts
//! exact equality (floats included) between the process-split tree and the
//! single-store engine:
//!
//! - group keys are [`Value`]s, whose floats travel as raw IEEE bits;
//! - float sums are [`pd_common::FloatSum`] superaccumulators, whose fixed
//!   34-limb arrays travel verbatim (see `pd_common::fsum`);
//! - count-distinct sketches travel as their retained hash sets, so a
//!   merge above the wire equals a merge below it.
//!
//! [`BuildOptions`] is codable too: the driver ships each worker its shard
//! rows *and* the import recipe, so a worker builds exactly the store the
//! in-process cluster would have built.

use crate::count_distinct::KmvSketch;
use crate::exec::{AggState, PartialResult};
use crate::options::{BuildOptions, DictMode, PartitionSpec};
use crate::stats::ScanStats;
use pd_common::wire::{Decode, Encode, Reader};
use pd_common::{Error, FloatSum, Result, Value};

impl Encode for KmvSketch {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.m() as u64).encode(out);
        (self.len() as u64).encode(out);
        for h in self.hashes() {
            h.encode(out);
        }
    }
}

impl Decode for KmvSketch {
    fn decode(r: &mut Reader<'_>) -> Result<KmvSketch> {
        let m = usize::decode(r)?;
        let len = r.u64()?;
        let len = r.check_len(len, 8)?;
        let mut sketch = KmvSketch::new(m);
        for _ in 0..len {
            sketch.offer(r.u64()?);
        }
        Ok(sketch)
    }
}

const AGG_COUNT: u8 = 0;
const AGG_SUM_INT: u8 = 1;
const AGG_SUM_FLOAT: u8 = 2;
const AGG_MIN: u8 = 3;
const AGG_MAX: u8 = 4;
const AGG_AVG: u8 = 5;
const AGG_DISTINCT: u8 = 6;

impl Encode for AggState {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AggState::Count(n) => {
                out.push(AGG_COUNT);
                n.encode(out);
            }
            AggState::SumInt(s) => {
                out.push(AGG_SUM_INT);
                s.encode(out);
            }
            AggState::SumFloat(s) => {
                out.push(AGG_SUM_FLOAT);
                s.encode(out);
            }
            AggState::Min(v) => {
                out.push(AGG_MIN);
                v.encode(out);
            }
            AggState::Max(v) => {
                out.push(AGG_MAX);
                v.encode(out);
            }
            AggState::Avg { sum, count } => {
                out.push(AGG_AVG);
                sum.encode(out);
                count.encode(out);
            }
            AggState::Distinct(sketch) => {
                out.push(AGG_DISTINCT);
                sketch.encode(out);
            }
        }
    }
}

impl Decode for AggState {
    fn decode(r: &mut Reader<'_>) -> Result<AggState> {
        Ok(match r.u8()? {
            AGG_COUNT => AggState::Count(r.u64()?),
            AGG_SUM_INT => AggState::SumInt(i64::decode(r)?),
            AGG_SUM_FLOAT => AggState::SumFloat(Box::new(FloatSum::decode(r)?)),
            AGG_MIN => AggState::Min(Option::<Value>::decode(r)?),
            AGG_MAX => AggState::Max(Option::<Value>::decode(r)?),
            AGG_AVG => {
                let sum = Box::new(FloatSum::decode(r)?);
                let count = r.u64()?;
                AggState::Avg { sum, count }
            }
            AGG_DISTINCT => AggState::Distinct(KmvSketch::decode(r)?),
            other => return Err(Error::Data(format!("wire: invalid agg-state tag {other}"))),
        })
    }
}

/// Group map as `(key, states)` pairs. Map iteration order is arbitrary, so
/// two equal partials may encode to different byte strings — but decoding
/// always reproduces the *same map*, which is what equality (and the merge
/// above the wire) is defined on.
impl Encode for PartialResult {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.groups.len() as u64).encode(out);
        for (key, states) in &self.groups {
            key.encode(out);
            states.encode(out);
        }
    }
}

impl Decode for PartialResult {
    fn decode(r: &mut Reader<'_>) -> Result<PartialResult> {
        let len = r.u64()?;
        let len = r.check_len(len, 2)?;
        let mut result = PartialResult::default();
        // Reserve at most what the remaining bytes could hold (a real
        // group is ≥ 17 bytes: one empty key + one Count state): corrupt
        // lengths must not drive table allocation.
        result.groups.reserve(len.min(r.remaining() / 17));
        for _ in 0..len {
            let key = Box::<[Value]>::decode(r)?;
            let states = Vec::<AggState>::decode(r)?;
            if result.groups.insert(key, states).is_some() {
                return Err(Error::Data("wire: duplicate group key in partial result".into()));
            }
        }
        Ok(result)
    }
}

impl Encode for ScanStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.chunks_total.encode(out);
        self.chunks_skipped.encode(out);
        self.chunks_cached.encode(out);
        self.chunks_scanned.encode(out);
        self.rows_total.encode(out);
        self.rows_skipped.encode(out);
        self.rows_cached.encode(out);
        self.rows_scanned.encode(out);
        self.subtrees_pruned.encode(out);
        self.chunks_pruned_remote.encode(out);
        self.worker_cache_hits.encode(out);
        self.cells_scanned.encode(out);
        self.disk_bytes.encode(out);
        self.decompressed_bytes.encode(out);
        self.elapsed.encode(out);
    }
}

impl Decode for ScanStats {
    fn decode(r: &mut Reader<'_>) -> Result<ScanStats> {
        Ok(ScanStats {
            chunks_total: usize::decode(r)?,
            chunks_skipped: usize::decode(r)?,
            chunks_cached: usize::decode(r)?,
            chunks_scanned: usize::decode(r)?,
            rows_total: r.u64()?,
            rows_skipped: r.u64()?,
            rows_cached: r.u64()?,
            rows_scanned: r.u64()?,
            subtrees_pruned: usize::decode(r)?,
            chunks_pruned_remote: usize::decode(r)?,
            worker_cache_hits: usize::decode(r)?,
            cells_scanned: r.u64()?,
            disk_bytes: r.u64()?,
            decompressed_bytes: r.u64()?,
            elapsed: std::time::Duration::decode(r)?,
        })
    }
}

impl Encode for PartitionSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.fields.encode(out);
        self.max_chunk_rows.encode(out);
    }
}

impl Decode for PartitionSpec {
    fn decode(r: &mut Reader<'_>) -> Result<PartitionSpec> {
        Ok(PartitionSpec { fields: Vec::<String>::decode(r)?, max_chunk_rows: usize::decode(r)? })
    }
}

impl Encode for BuildOptions {
    fn encode(&self, out: &mut Vec<u8>) {
        self.partition.encode(out);
        out.push(match self.elements {
            pd_encoding::ElementsMode::Basic => 0,
            pd_encoding::ElementsMode::Optimized => 1,
        });
        out.push(match self.dicts {
            DictMode::Sorted => 0,
            DictMode::Trie => 1,
        });
        self.reorder.encode(out);
        out.push(match self.codec {
            pd_compress::CodecKind::None => 0,
            pd_compress::CodecKind::Rle => 1,
            pd_compress::CodecKind::Zippy => 2,
            pd_compress::CodecKind::Lzf => 3,
            pd_compress::CodecKind::Deflate => 4,
            pd_compress::CodecKind::Huffman => 5,
        });
    }
}

impl Decode for BuildOptions {
    fn decode(r: &mut Reader<'_>) -> Result<BuildOptions> {
        let partition = Option::<PartitionSpec>::decode(r)?;
        let elements = match r.u8()? {
            0 => pd_encoding::ElementsMode::Basic,
            1 => pd_encoding::ElementsMode::Optimized,
            other => return Err(Error::Data(format!("wire: invalid elements-mode tag {other}"))),
        };
        let dicts = match r.u8()? {
            0 => DictMode::Sorted,
            1 => DictMode::Trie,
            other => return Err(Error::Data(format!("wire: invalid dict-mode tag {other}"))),
        };
        let reorder = bool::decode(r)?;
        let codec = match r.u8()? {
            0 => pd_compress::CodecKind::None,
            1 => pd_compress::CodecKind::Rle,
            2 => pd_compress::CodecKind::Zippy,
            3 => pd_compress::CodecKind::Lzf,
            4 => pd_compress::CodecKind::Deflate,
            5 => pd_compress::CodecKind::Huffman,
            other => return Err(Error::Data(format!("wire: invalid codec tag {other}"))),
        };
        Ok(BuildOptions { partition, elements, dicts, reorder, codec })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::wire::{from_bytes, to_bytes};

    #[test]
    fn agg_states_round_trip() {
        let states = vec![
            AggState::Count(7),
            AggState::SumInt(i64::MIN),
            AggState::SumFloat(Box::new(FloatSum::from(0.1))),
            AggState::Min(Some(Value::Float(-0.0))),
            AggState::Max(None),
            AggState::Avg { sum: Box::new(FloatSum::from(2.5)), count: 3 },
            AggState::Distinct(KmvSketch::from_parts(16, [3, 1, 2])),
        ];
        let back: Vec<AggState> = from_bytes(&to_bytes(&states)).unwrap();
        assert_eq!(back, states);
    }

    #[test]
    fn partial_results_round_trip() {
        let mut partial = PartialResult::default();
        partial
            .groups
            .insert(Box::from([Value::from("x"), Value::Int(3)]), vec![AggState::Count(2)]);
        partial.groups.insert(Box::from([]), vec![AggState::SumInt(-1)]);
        let back: PartialResult = from_bytes(&to_bytes(&partial)).unwrap();
        assert_eq!(back, partial);
        // Empty partial (no groups at all).
        let empty = PartialResult::default();
        let back: PartialResult = from_bytes(&to_bytes(&empty)).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn duplicate_group_keys_are_rejected() {
        let mut partial = PartialResult::default();
        partial.groups.insert(Box::from([Value::Int(1)]), vec![AggState::Count(1)]);
        let bytes = to_bytes(&partial);
        // Forge a 2-group frame containing the same group twice.
        let mut forged = Vec::new();
        2u64.encode(&mut forged);
        forged.extend_from_slice(&bytes[8..]);
        forged.extend_from_slice(&bytes[8..]);
        assert!(from_bytes::<PartialResult>(&forged).is_err());
    }

    #[test]
    fn build_options_round_trip() {
        for options in [
            BuildOptions::basic(),
            BuildOptions::production(&["country", "table_name"]),
            BuildOptions::optcols(PartitionSpec::new(&["k"], 128)),
        ] {
            let back: BuildOptions = from_bytes(&to_bytes(&options)).unwrap();
            assert_eq!(back, options);
        }
    }

    #[test]
    fn scan_stats_round_trip() {
        let stats = ScanStats {
            chunks_total: 10,
            chunks_skipped: 4,
            chunks_cached: 1,
            chunks_scanned: 5,
            rows_total: 1000,
            rows_skipped: 400,
            rows_cached: 100,
            rows_scanned: 500,
            subtrees_pruned: 2,
            chunks_pruned_remote: 3,
            worker_cache_hits: 1,
            cells_scanned: 1500,
            disk_bytes: 4096,
            decompressed_bytes: 16384,
            elapsed: std::time::Duration::from_micros(1234),
        };
        let back: ScanStats = from_bytes(&to_bytes(&stats)).unwrap();
        assert_eq!(back, stats);
    }
}
