//! A stored column: the full §2.3 double-dictionary layout.
//!
//! `StoredColumn` owns the column's global dictionary and, per chunk, the
//! chunk dictionary plus the elements array. It can reconstruct any cell
//! (`value_at`), which is how Figure 1's
//! `dict(ch0.dict(ch0.elems[3]))` lookup chain appears in code.

use crate::options::BuildOptions;
use crate::partition::Partitioning;
use pd_common::{DataType, Error, FxHashMap, HeapSize, Result, Value};
use pd_compress::Codec;
use pd_encoding::{build_dict, ChunkDict, Elements, GlobalDict};

/// Per-chunk storage: chunk dictionary + elements.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnChunk {
    pub dict: ChunkDict,
    pub elements: Elements,
}

impl ColumnChunk {
    /// Rows in this chunk.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Global-id of the value in `row` (chunk-relative).
    #[inline]
    pub fn global_id_at(&self, row: usize) -> u32 {
        self.dict.global_id_of(self.elements.get(row))
    }

    /// Borrowed view of this chunk's raw element codes — what the group-by
    /// kernels iterate instead of calling [`Elements::get`] per row.
    #[inline]
    pub fn codes(&self) -> pd_encoding::CodesView<'_> {
        self.elements.codes()
    }

    /// Serialized payload (chunk dict + elements) for the compressed layer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.dict.to_bytes();
        let elems = self.elements.to_bytes();
        out.extend_from_slice(&elems);
        out
    }
}

impl HeapSize for ColumnChunk {
    fn heap_bytes(&self) -> usize {
        self.dict.heap_bytes() + self.elements.heap_bytes()
    }
}

/// A fully encoded column.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredColumn {
    pub dict: GlobalDict,
    pub chunks: Vec<ColumnChunk>,
}

impl StoredColumn {
    /// Encode `values` (already permuted into the final row order) against
    /// `partitioning`'s chunk boundaries.
    pub fn build(
        values: &[Value],
        partitioning: &Partitioning,
        options: &BuildOptions,
    ) -> Result<StoredColumn> {
        let use_trie = options.dicts == crate::options::DictMode::Trie;
        let (dict, global_ids) = build_dict(values, use_trie)?;
        Ok(StoredColumn::from_global_ids(dict, &global_ids, partitioning, options))
    }

    /// Encode from precomputed global-ids (used when the import pipeline
    /// already built the dictionary for partitioning).
    pub fn from_global_ids(
        dict: GlobalDict,
        global_ids: &[u32],
        partitioning: &Partitioning,
        options: &BuildOptions,
    ) -> StoredColumn {
        let chunk_lens: Vec<usize> =
            (0..partitioning.chunk_count()).map(|c| partitioning.chunk_range(c).len()).collect();
        let mut column = StoredColumn { dict, chunks: Vec::with_capacity(chunk_lens.len()) };
        column.append_chunks(global_ids, &chunk_lens, options);
        column
    }

    /// Append pre-resolved global-ids as fresh chunks of the given row
    /// counts. Existing chunks are untouched — this is the store side of an
    /// in-place delta append, where `global_ids` came from
    /// [`GlobalDict::extend`] and existing ids are guaranteed stable.
    pub fn append_chunks(
        &mut self,
        global_ids: &[u32],
        chunk_lens: &[usize],
        options: &BuildOptions,
    ) {
        debug_assert_eq!(global_ids.len(), chunk_lens.iter().sum::<usize>());
        let mut at = 0usize;
        for &len in chunk_lens {
            let slice = &global_ids[at..at + len];
            at += len;

            // Chunk dictionary: sorted distinct global-ids of the slice.
            let mut distinct: Vec<u32> = slice.to_vec();
            distinct.sort_unstable();
            distinct.dedup();

            // Translate global-ids to dense chunk-ids. A hash map beats
            // per-row binary search for large chunks.
            let lookup: FxHashMap<u32, u32> = distinct
                .iter()
                .enumerate()
                .map(|(chunk_id, &gid)| (gid, chunk_id as u32))
                .collect();
            let chunk_ids: Vec<u32> = slice.iter().map(|gid| lookup[gid]).collect();

            let elements = Elements::encode(&chunk_ids, distinct.len() as u32, options.elements);
            let dict = ChunkDict::from_sorted(distinct)
                .expect("sorted+deduped ids are a valid chunk dictionary");
            self.chunks.push(ColumnChunk { dict, elements });
        }
    }

    pub fn data_type(&self) -> DataType {
        self.dict.data_type()
    }

    /// Total rows across chunks.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(ColumnChunk::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstruct the value at `row` within `chunk` — the Figure 1 lookup
    /// chain `dict(chN.dict(chN.elems[row]))`.
    pub fn value_at(&self, chunk: usize, row: usize) -> Value {
        self.dict.value(self.chunks[chunk].global_id_at(row))
    }

    /// Memory of the global dictionary alone.
    pub fn dict_bytes(&self) -> usize {
        self.dict.heap_bytes()
    }

    /// Memory of all chunk dictionaries.
    pub fn chunk_dict_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.dict.heap_bytes()).sum()
    }

    /// Memory of all element arrays.
    pub fn elements_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.elements.heap_bytes()).sum()
    }

    /// Total memory footprint (the per-column number behind Tables 1–4).
    pub fn total_bytes(&self) -> usize {
        self.dict_bytes() + self.chunk_dict_bytes() + self.elements_bytes()
    }

    /// Compressed size of the column under `codec`: global dictionary plus
    /// each chunk payload compressed independently (chunk granularity is
    /// what the two-layer cache moves around).
    pub fn compressed_bytes(&self, codec: &dyn Codec) -> usize {
        let dict = codec.compress(&self.dict.to_bytes()).len();
        let chunks: usize = self.chunks.iter().map(|c| codec.compress(&c.to_bytes()).len()).sum();
        dict + chunks
    }

    /// Compressed size of elements + chunk dictionaries only (the §3
    /// reordering experiment reports this subset).
    pub fn compressed_chunk_bytes(&self, codec: &dyn Codec) -> usize {
        self.chunks.iter().map(|c| codec.compress(&c.to_bytes()).len()).sum()
    }

    /// Resolve a set of literal values to their global-ids (sorted,
    /// deduplicated; absent values dropped) — the first step of §2.4's
    /// skipping decision.
    pub fn global_ids_of(&self, values: &[Value]) -> Vec<u32> {
        let mut ids: Vec<u32> = values.iter().filter_map(|v| self.dict.id_of(v)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

impl HeapSize for StoredColumn {
    fn heap_bytes(&self) -> usize {
        self.total_bytes()
    }
}

/// Validate that a column's values are homogeneous and non-null before
/// storage (defensive re-check used by virtual-field materialization).
pub fn check_column_type(values: &[Value]) -> Result<DataType> {
    let first = values.first().ok_or_else(|| Error::Data("empty column".into()))?;
    let dtype =
        first.data_type().ok_or_else(|| Error::Data("null values are not storable".into()))?;
    for v in values {
        if v.data_type() != Some(dtype) {
            return Err(Error::Type(format!(
                "mixed column types: {dtype} and {}",
                v.data_type().map_or_else(|| "NULL".to_owned(), |t| t.to_string())
            )));
        }
    }
    Ok(dtype)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::PartitionSpec;

    fn values(strs: &[&str]) -> Vec<Value> {
        strs.iter().map(|s| Value::from(*s)).collect()
    }

    /// Figure 1's search_string column, pre-arranged into 3 chunks.
    fn figure1_column() -> (Vec<Value>, Partitioning) {
        // chunk 0: ebay, cheap flights, amazon, ebay, yellow pages (ids 5,2,1,5,12)
        // chunk 1: ab in den Urlaub, amazon, ebay, faschingskostüme (0,1,5,6)
        // chunk 2: chaussures, voyages snfc, la redoute (11,10,9)
        let vals = values(&[
            "ebay",
            "cheap flights",
            "amazon",
            "ebay",
            "yellow pages",
            "ab in den Urlaub",
            "amazon",
            "ebay",
            "faschingskostüme",
            "chaussures",
            "voyages snfc",
            "la redoute",
        ]);
        let p = Partitioning { row_order: (0..12).collect(), chunk_starts: vec![0, 5, 9, 12] };
        (vals, p)
    }

    #[test]
    fn figure1_layout_reconstructs() {
        let (vals, p) = figure1_column();
        let col = StoredColumn::build(&vals, &p, &BuildOptions::basic()).unwrap();
        assert_eq!(col.chunks.len(), 3);
        for c in 0..3 {
            let range = p.chunk_range(c);
            for (i, global_row) in range.clone().enumerate() {
                assert_eq!(col.value_at(c, i), vals[global_row], "chunk {c} row {i}");
            }
        }
        // The chunk dictionaries are small and chunk-local.
        assert_eq!(col.chunks[2].dict.len(), 3);
    }

    #[test]
    fn global_ids_of_drops_absent_values() {
        let (vals, p) = figure1_column();
        let col = StoredColumn::build(&vals, &p, &BuildOptions::basic()).unwrap();
        let ids = col.global_ids_of(&[
            Value::from("la redoute"),
            Value::from("voyages sncf"), // note: paper's dictionary stores "voyages snfc"
            Value::from("ebay"),
        ]);
        // Two present values; the absent one is dropped.
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn optimized_elements_shrink_low_cardinality_chunks() {
        // One country per chunk → Const encoding, 0 bytes of elements.
        let mut vals = Vec::new();
        vals.extend(values(&["US"; 100]));
        vals.extend(values(&["DE"; 100]));
        let p = Partitioning { row_order: (0..200).collect(), chunk_starts: vec![0, 100, 200] };

        let basic = StoredColumn::build(&vals, &p, &BuildOptions::basic()).unwrap();
        assert_eq!(basic.elements_bytes(), 200 * 4);

        let opt = StoredColumn::build(
            &vals,
            &p,
            &BuildOptions::optcols(PartitionSpec::new(&["country"], 100)),
        )
        .unwrap();
        assert_eq!(opt.elements_bytes(), 0, "both chunks are single-valued");
        assert_eq!(opt.chunks[0].elements.repr_name(), "const");
    }

    #[test]
    fn trie_dicts_shrink_string_columns() {
        let vals: Vec<Value> = (0..2000)
            .map(|i| {
                Value::from(format!("logs.ads.queries_{:03}.2011-11-{:02}", i % 40, i % 28 + 1))
            })
            .collect();
        let p = Partitioning::single_chunk(vals.len());
        let spec = PartitionSpec::new(&[], 1_000_000);
        let sorted = StoredColumn::build(&vals, &p, &BuildOptions::optcols(spec.clone())).unwrap();
        let trie = StoredColumn::build(&vals, &p, &BuildOptions::optdicts(spec)).unwrap();
        assert!(
            trie.dict_bytes() < sorted.dict_bytes() / 2,
            "trie {} vs sorted {}",
            trie.dict_bytes(),
            sorted.dict_bytes()
        );
        // Same logical mapping.
        for i in (0..vals.len()).step_by(97) {
            assert_eq!(trie.value_at(0, i), sorted.value_at(0, i));
        }
    }

    #[test]
    fn compressed_bytes_are_smaller_for_partitioned_data() {
        use pd_compress::CodecKind;
        // Sorted duplicated data compresses extremely well.
        let vals: Vec<Value> = (0..5000).map(|i| Value::from(format!("v{:02}", i / 500))).collect();
        let p = Partitioning::single_chunk(vals.len());
        let col = StoredColumn::build(
            &vals,
            &p,
            &BuildOptions::optcols(PartitionSpec::new(&[], 1_000_000)),
        )
        .unwrap();
        let zippy = CodecKind::Zippy.codec();
        assert!(col.compressed_bytes(zippy) < col.total_bytes());
    }

    #[test]
    fn numeric_columns_round_trip() {
        let vals: Vec<Value> = (0..500).map(|i| Value::Int((i % 37) * 1000)).collect();
        let p = Partitioning { row_order: (0..500).collect(), chunk_starts: vec![0, 250, 500] };
        let col = StoredColumn::build(&vals, &p, &BuildOptions::default()).unwrap();
        assert_eq!(col.data_type(), DataType::Int);
        for c in 0..2 {
            for (i, global_row) in p.chunk_range(c).clone().enumerate() {
                assert_eq!(col.value_at(c, i), vals[global_row]);
            }
        }
        // u8 elements suffice for 37 distinct values.
        assert_eq!(col.chunks[0].elements.repr_name(), "u8");
    }

    #[test]
    fn check_column_type_rejects_mixed() {
        assert!(check_column_type(&[Value::Int(1), Value::from("x")]).is_err());
        assert!(check_column_type(&[Value::Null]).is_err());
        assert!(check_column_type(&[]).is_err());
        assert_eq!(check_column_type(&[Value::Float(1.0)]).unwrap(), DataType::Float);
    }
}
