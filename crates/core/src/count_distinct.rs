//! Approximate count distinct: the m-smallest-hashes (KMV) sketch of §5.
//!
//! *"The basic idea of the algorithm is to compute hash values of the field
//! to count distinctly. Of these hashes, the m smallest are determined in a
//! single pass. The threshold m is given by the user and is typically in
//! the order of a couple of thousand. The largest of these m hashes, say v,
//! can be used to approximate the count distinct results by m/v, assuming
//! that the hash values are normalized to be in [0, 1]."*
//!
//! (Flajolet–Martin \[14\] lineage; the variant analyzed as the first
//! algorithm of Bar-Yossef et al. \[6\].)

use pd_common::HeapSize;
use std::collections::BTreeSet;

/// A K-Minimum-Values sketch over 64-bit hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmvSketch {
    m: usize,
    /// The (at most `m`) smallest distinct hashes seen.
    smallest: BTreeSet<u64>,
}

impl KmvSketch {
    /// Sketch keeping the `m` smallest hashes (`m >= 1`).
    pub fn new(m: usize) -> KmvSketch {
        KmvSketch { m: m.max(1), smallest: BTreeSet::new() }
    }

    pub fn m(&self) -> usize {
        self.m
    }

    /// Offer one hash value.
    #[inline]
    pub fn offer(&mut self, hash: u64) {
        if self.smallest.len() < self.m {
            self.smallest.insert(hash);
            return;
        }
        let max = *self.smallest.iter().next_back().expect("non-empty at capacity");
        if hash < max && self.smallest.insert(hash) {
            self.smallest.pop_last();
        }
    }

    /// Number of hashes currently held.
    pub fn len(&self) -> usize {
        self.smallest.len()
    }

    pub fn is_empty(&self) -> bool {
        self.smallest.is_empty()
    }

    /// The distinct-count estimate. Exact while fewer than `m` distinct
    /// hashes were seen; `m / v` (v = largest kept hash, normalized) once
    /// saturated.
    pub fn estimate(&self) -> f64 {
        if self.smallest.len() < self.m {
            return self.smallest.len() as f64;
        }
        let v = *self.smallest.iter().next_back().expect("saturated") as f64;
        let normalized = v / (u64::MAX as f64);
        if normalized <= 0.0 {
            return self.smallest.len() as f64;
        }
        self.m as f64 / normalized
    }

    /// Merge another sketch into this one (distributed execution: sketches
    /// travel up the §4 computation tree instead of per-level counts, which
    /// would over-count).
    pub fn merge(&mut self, other: &KmvSketch) {
        for &h in &other.smallest {
            self.offer(h);
        }
    }

    /// The retained hashes in ascending order — the sketch's entire state
    /// besides `m`, which is how it crosses the §4 process boundary.
    pub fn hashes(&self) -> impl ExactSizeIterator<Item = u64> + '_ {
        self.smallest.iter().copied()
    }

    /// Rebuild a sketch from its threshold and retained hashes. Offers
    /// re-apply the `m`-smallest invariant, so even a corrupt hash list
    /// decodes into a *valid* sketch (possibly of different estimate —
    /// corruption detection is the frame layer's job).
    pub fn from_parts(m: usize, hashes: impl IntoIterator<Item = u64>) -> KmvSketch {
        let mut sketch = KmvSketch::new(m);
        for h in hashes {
            sketch.offer(h);
        }
        sketch
    }
}

impl HeapSize for KmvSketch {
    fn heap_bytes(&self) -> usize {
        // BTreeSet node overhead approximation: two words per entry.
        self.smallest.len() * (8 + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::fx_hash64;

    fn sketch_of(values: impl Iterator<Item = u64>, m: usize) -> KmvSketch {
        let mut s = KmvSketch::new(m);
        for v in values {
            s.offer(fx_hash64(&v));
        }
        s
    }

    #[test]
    fn exact_below_m() {
        let s = sketch_of(0..100u64, 1024);
        assert_eq!(s.estimate(), 100.0);
        let empty = KmvSketch::new(16);
        assert_eq!(empty.estimate(), 0.0);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = KmvSketch::new(64);
        for _ in 0..10 {
            for v in 0..40u64 {
                s.offer(fx_hash64(&v));
            }
        }
        assert_eq!(s.estimate(), 40.0);
    }

    #[test]
    fn estimate_within_tolerance_when_saturated() {
        for &(n, m) in &[(10_000u64, 1024usize), (100_000, 2048), (50_000, 512)] {
            let s = sketch_of(0..n, m);
            let est = s.estimate();
            let err = (est - n as f64).abs() / n as f64;
            // KMV standard error ≈ 1/√m; allow 5 sigma.
            let tolerance = 5.0 / (m as f64).sqrt();
            assert!(err < tolerance, "n={n} m={m}: estimate {est}, err {err:.4}");
        }
    }

    #[test]
    fn merge_equals_union() {
        let a = sketch_of(0..30_000u64, 512);
        let b = sketch_of(15_000..45_000u64, 512);
        let mut merged = a.clone();
        merged.merge(&b);
        let direct = sketch_of(0..45_000u64, 512);
        assert_eq!(merged, direct, "merge must equal the sketch of the union");
    }

    #[test]
    fn merge_is_commutative() {
        let a = sketch_of((0..5000u64).map(|x| x * 3), 256);
        let b = sketch_of((0..5000u64).map(|x| x * 7), 256);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn m_one_still_works() {
        let s = sketch_of(0..1000u64, 1);
        assert!(s.estimate() > 0.0);
    }
}
