//! The import pipeline and column registry.
//!
//! `DataStore::build` performs the §2.2–2.3 import: dictionary-encode the
//! partition fields, run the composite range partitioner, optionally
//! reorder rows lexicographically within chunks (§3), then encode every
//! column against the resulting chunk boundaries.
//!
//! §5 "Complex Expressions" lives here too: [`DataStore::column_for_expr`]
//! materializes arbitrary scalar expressions as *virtual fields* — stored
//! exactly like base columns (same chunk boundaries, same dictionary
//! machinery), keyed by the expression's canonical text, computed once and
//! reused by later queries.

use crate::column::StoredColumn;
use crate::options::BuildOptions;
use crate::partition::{partition, Partitioning};
use pd_common::sync::RwLock;
use pd_common::{Error, HeapSize, Result, Schema, Value};
use pd_data::Table;
use pd_encoding::{build_dict, DictDelta, TableDelta};
use pd_sql::{eval_expr, Expr, RowContext};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An imported, query-ready dataset.
pub struct DataStore {
    schema: Schema,
    options: BuildOptions,
    partitioning: Partitioning,
    columns: BTreeMap<String, Arc<StoredColumn>>,
    /// Materialized virtual fields, keyed by canonical expression text.
    virtuals: RwLock<BTreeMap<String, Arc<StoredColumn>>>,
    n_rows: usize,
}

impl DataStore {
    /// Import `table` under `options`.
    pub fn build(table: &Table, options: &BuildOptions) -> Result<DataStore> {
        let n_rows = table.len();
        let schema = table.schema().clone();

        // 1. Dictionary-encode the partition fields (original row order).
        let mut key_ids: Vec<Vec<u32>> = Vec::new();
        let mut key_dicts: BTreeMap<String, (pd_encoding::GlobalDict, Vec<u32>)> = BTreeMap::new();
        if let Some(spec) = &options.partition {
            for field in &spec.fields {
                let idx = schema.resolve(field)?;
                let use_trie = options.dicts == crate::options::DictMode::Trie;
                let (dict, ids) = build_dict(table.column(idx), use_trie)?;
                key_ids.push(ids.clone());
                key_dicts.insert(field.clone(), (dict, ids));
            }
        }

        // 2. Partition.
        let key_refs: Vec<&[u32]> = key_ids.iter().map(Vec::as_slice).collect();
        let max_rows = options.partition.as_ref().map_or(usize::MAX, |s| s.max_chunk_rows);
        let mut partitioning = if key_refs.is_empty() || n_rows == 0 {
            Partitioning::single_chunk(n_rows)
        } else {
            partition(&key_refs, n_rows, max_rows)
        };

        // 3. Optional §3 reorder: lexicographic by the partition field ids
        //    within each chunk (stable on the original row index).
        if options.reorder && !key_refs.is_empty() {
            for c in 0..partitioning.chunk_count() {
                let range = partitioning.chunk_range(c);
                partitioning.row_order[range].sort_by_key(|&r| {
                    let mut key: Vec<u32> = key_refs.iter().map(|col| col[r as usize]).collect();
                    key.push(r); // stable tie-break
                    key
                });
            }
        }

        // 4. Encode every column in the final row order.
        let mut columns = BTreeMap::new();
        for (idx, field) in schema.fields().iter().enumerate() {
            let stored = if let Some((dict, ids)) = key_dicts.remove(&field.name) {
                let permuted: Vec<u32> =
                    partitioning.row_order.iter().map(|&r| ids[r as usize]).collect();
                StoredColumn::from_global_ids(dict, &permuted, &partitioning, options)
            } else {
                let raw = table.column(idx);
                let permuted: Vec<Value> =
                    partitioning.row_order.iter().map(|&r| raw[r as usize].clone()).collect();
                StoredColumn::build(&permuted, &partitioning, options)?
            };
            columns.insert(field.name.clone(), Arc::new(stored));
        }

        Ok(DataStore {
            schema,
            options: options.clone(),
            partitioning,
            columns,
            virtuals: RwLock::new(BTreeMap::new()),
            n_rows,
        })
    }

    /// Apply a delta batch in place (§4 freshness without a re-import).
    ///
    /// Each column's global dictionary grows via [`pd_encoding::GlobalDict::extend`]
    /// — every existing id stays stable, genuinely new values get appended
    /// tail ids — and the delta rows are encoded as *fresh chunks* in
    /// arrival order (bounded by the build threshold); existing chunks and
    /// their element arrays are untouched, so results folded across old and
    /// new chunks are bit-identical to a full re-import of the concatenated
    /// data. Materialized virtual fields are dropped (their chunk layout no
    /// longer spans all rows) and rebuilt lazily on next access.
    ///
    /// Returns one [`DictDelta`] per schema field (in field order)
    /// describing exactly what each dictionary appended — the input for
    /// shard-metadata maintenance.
    pub fn append_delta(&mut self, delta: &TableDelta) -> Result<Vec<DictDelta>> {
        if delta.schema != self.schema {
            return Err(Error::Schema("delta schema does not match the store schema".into()));
        }
        delta.validate()?;
        let rows = delta.rows as usize;

        // New chunk boundaries: arrival order, capped at the import
        // threshold so appended chunks stay prunable at the same grain.
        let max_rows =
            self.options.partition.as_ref().map_or(usize::MAX, |s| s.max_chunk_rows).max(1);
        let mut chunk_lens = Vec::new();
        let mut remaining = rows;
        while remaining > 0 {
            let take = remaining.min(max_rows);
            chunk_lens.push(take);
            remaining -= take;
        }

        let mut dict_deltas = Vec::with_capacity(self.columns.len());
        for (field, column_delta) in self.schema.fields().iter().zip(&delta.columns) {
            let arc = self.columns.get_mut(&field.name).expect("schemas are equal");
            let column = Arc::make_mut(arc);
            let values = column_delta.values();
            let base_len = column.dict.len();
            let global_ids = column.dict.extend(&values)?;
            let appended: Vec<Value> =
                (base_len..column.dict.len()).map(|id| column.dict.value(id)).collect();
            column.append_chunks(&global_ids, &chunk_lens, &self.options);
            dict_deltas.push(DictDelta { base_len, appended });
        }

        self.partitioning.append_identity_chunks(&chunk_lens);
        // Virtual fields were materialized against the old chunk layout.
        self.virtuals.write().clear();
        self.n_rows += rows;
        Ok(dict_deltas)
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn options(&self) -> &BuildOptions {
        &self.options
    }

    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn chunk_count(&self) -> usize {
        self.partitioning.chunk_count()
    }

    /// Rows in chunk `c`.
    pub fn chunk_rows(&self, c: usize) -> usize {
        self.partitioning.chunk_range(c).len()
    }

    /// A base column by name.
    pub fn column(&self, name: &str) -> Result<Arc<StoredColumn>> {
        self.columns
            .get(name)
            .cloned()
            .ok_or_else(|| Error::Schema(format!("unknown column `{name}`")))
    }

    /// Names of base columns (schema order).
    pub fn column_names(&self) -> Vec<String> {
        self.schema.fields().iter().map(|f| f.name.clone()).collect()
    }

    /// Canonical names of materialized virtual fields.
    pub fn virtual_names(&self) -> Vec<String> {
        self.virtuals.read().keys().cloned().collect()
    }

    /// The stored column for an expression: a base column for bare
    /// references, otherwise the materialized virtual field (computing and
    /// storing it on first access — §5's "computed once, consecutive access
    /// can reuse the materialized data").
    pub fn column_for_expr(&self, expr: &Expr) -> Result<Arc<StoredColumn>> {
        if let Some(name) = expr.as_column() {
            return self.column(name);
        }
        let key = expr.canonical();
        if let Some(col) = self.virtuals.read().get(&key) {
            return Ok(col.clone());
        }
        let col = Arc::new(self.materialize(expr)?);
        let mut guard = self.virtuals.write();
        // A racing query may have materialized it concurrently; keep the
        // first one so Arc identities stay stable.
        Ok(guard.entry(key).or_insert(col).clone())
    }

    /// Evaluate `expr` for every row (in stored order) and encode the
    /// result as a column.
    fn materialize(&self, expr: &Expr) -> Result<StoredColumn> {
        if self.n_rows == 0 {
            return Err(Error::Data("cannot materialize expressions over an empty store".into()));
        }
        let mut referenced = Vec::new();
        expr.referenced_columns(&mut referenced);
        let mut source_cols = Vec::with_capacity(referenced.len());
        for name in &referenced {
            source_cols.push((name.clone(), self.column(name)?));
        }

        let mut values = Vec::with_capacity(self.n_rows);
        for c in 0..self.chunk_count() {
            // Cache each referenced column's chunk-dictionary values once:
            // the evaluation below is then a dense array lookup per row.
            let caches: Vec<Vec<Value>> = source_cols
                .iter()
                .map(|(_, col)| {
                    let chunk = &col.chunks[c];
                    (0..chunk.dict.len())
                        .map(|cid| col.dict.value(chunk.dict.global_id_of(cid)))
                        .collect()
                })
                .collect();
            let rows = self.chunk_rows(c);
            for row in 0..rows {
                let ctx = MaterializeContext { columns: &source_cols, caches: &caches, c, row };
                values.push(eval_expr(expr, &ctx)?);
            }
        }
        StoredColumn::build(&values, &self.partitioning, &self.options)
    }

    /// Memory footprint of the named columns/virtual fields (Tables 1–4
    /// report per-query memory: "only the columns present in the individual
    /// queries").
    pub fn memory_of(&self, exprs: &[&Expr]) -> Result<usize> {
        let mut total = 0;
        for e in exprs {
            total += self.column_for_expr(e)?.heap_bytes();
        }
        Ok(total)
    }

    /// All stored bytes (base + virtual columns).
    pub fn total_bytes(&self) -> usize {
        self.columns.values().map(|c| c.heap_bytes()).sum::<usize>()
            + self.virtuals.read().values().map(|c| c.heap_bytes()).sum::<usize>()
    }
}

struct MaterializeContext<'a> {
    columns: &'a [(String, Arc<StoredColumn>)],
    caches: &'a [Vec<Value>],
    c: usize,
    row: usize,
}

impl RowContext for MaterializeContext<'_> {
    fn column(&self, name: &str) -> Result<Value> {
        let idx = self
            .columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| Error::Schema(format!("unknown column `{name}`")))?;
        let chunk = &self.columns[idx].1.chunks[self.c];
        Ok(self.caches[idx][chunk.elements.get(self.row) as usize].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::PartitionSpec;
    use pd_data::{generate_logs, LogsSpec};
    use pd_sql::parse_query;

    fn small_store(options: &BuildOptions) -> (Table, DataStore) {
        let table = generate_logs(&LogsSpec::scaled(3_000));
        let store = DataStore::build(&table, options).unwrap();
        (table, store)
    }

    fn production_options() -> BuildOptions {
        BuildOptions::reordered(PartitionSpec::new(&["country", "table_name"], 500))
    }

    #[test]
    fn reconstruction_matches_source_rows() {
        let (table, store) = small_store(&production_options());
        assert_eq!(store.n_rows(), table.len());
        // Every stored cell must equal the source cell of the permuted row:
        // "synchronously iterating over all columns reconstructs the
        // original rows" (§2.3).
        let p = store.partitioning().clone();
        for c in 0..store.chunk_count() {
            let range = p.chunk_range(c);
            for (i, pos) in range.enumerate() {
                let orig = p.row_order[pos] as usize;
                for field in store.schema().fields() {
                    let col = store.column(&field.name).unwrap();
                    let src_idx = table.schema().resolve(&field.name).unwrap();
                    assert_eq!(
                        col.value_at(c, i),
                        table.column(src_idx)[orig],
                        "chunk {c} row {i} field {}",
                        field.name
                    );
                }
            }
        }
    }

    #[test]
    fn partitioning_respects_threshold() {
        let (_, store) = small_store(&production_options());
        assert!(store.chunk_count() > 1);
        assert!(store.partitioning().max_chunk_rows() <= 500);
    }

    #[test]
    fn partition_fields_have_few_distinct_values_per_chunk() {
        // §3: "the corresponding fields country and table_name are in the
        // field order used for the partitioning, therefore each chunk has
        // relatively few distinct values for these fields".
        let (_, store) = small_store(&production_options());
        let country = store.column("country").unwrap();
        let avg_distinct: f64 = country.chunks.iter().map(|c| c.dict.len() as f64).sum::<f64>()
            / country.chunks.len() as f64;
        assert!(avg_distinct < 4.0, "avg distinct countries per chunk = {avg_distinct}");
    }

    #[test]
    fn reorder_improves_rle_runs() {
        let spec = PartitionSpec::new(&["country", "table_name"], 500);
        let table = generate_logs(&LogsSpec::scaled(3_000));
        let plain = DataStore::build(&table, &BuildOptions::optdicts(spec.clone())).unwrap();
        let sorted = DataStore::build(&table, &BuildOptions::reordered(spec)).unwrap();
        let runs = |store: &DataStore| -> usize {
            let col = store.column("table_name").unwrap();
            col.chunks
                .iter()
                .map(|ch| {
                    let ids: Vec<u32> = ch.elements.iter().collect();
                    pd_compress::rle::rle_cost_u32(&ids)
                })
                .sum()
        };
        assert!(
            runs(&sorted) < runs(&plain),
            "reorder must reduce run count: {} vs {}",
            runs(&sorted),
            runs(&plain)
        );
    }

    #[test]
    fn virtual_field_materializes_once_and_reuses() {
        let (_, store) = small_store(&production_options());
        let q = parse_query("SELECT date(timestamp) FROM t GROUP BY date(timestamp)").unwrap();
        let expr = &q.group_by[0];
        let a = store.column_for_expr(expr).unwrap();
        let b = store.column_for_expr(expr).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second access must reuse the materialization");
        assert_eq!(store.virtual_names(), vec!["date(timestamp)".to_owned()]);
        // ~92 days of data → ~92 distinct dates.
        assert!(a.dict.len() <= 92 + 1, "dates = {}", a.dict.len());
        assert!(a.dict.len() >= 80, "dates = {}", a.dict.len());
    }

    #[test]
    fn virtual_field_values_are_correct() {
        let (table, store) = small_store(&production_options());
        let q = parse_query("SELECT hour(timestamp) FROM t GROUP BY hour(timestamp)").unwrap();
        let col = store.column_for_expr(&q.group_by[0]).unwrap();
        let p = store.partitioning();
        let ts_idx = table.schema().resolve("timestamp").unwrap();
        for c in 0..store.chunk_count() {
            for (i, pos) in p.chunk_range(c).enumerate() {
                let orig = p.row_order[pos] as usize;
                let ts = table.column(ts_idx)[orig].as_int().unwrap();
                let expect = ts.rem_euclid(86_400) / 3_600;
                assert_eq!(col.value_at(c, i), Value::Int(expect));
            }
        }
    }

    #[test]
    fn unknown_columns_error() {
        let (_, store) = small_store(&BuildOptions::basic());
        assert!(store.column("nope").is_err());
        let q = parse_query("SELECT date(nope) FROM t GROUP BY date(nope)").unwrap();
        assert!(store.column_for_expr(&q.group_by[0]).is_err());
    }

    #[test]
    fn basic_build_is_single_chunk() {
        let (_, store) = small_store(&BuildOptions::basic());
        assert_eq!(store.chunk_count(), 1);
        assert_eq!(store.chunk_rows(0), 3_000);
    }

    fn delta_of(table: &Table, rows: std::ops::Range<usize>) -> TableDelta {
        let sub = table.select_rows(&rows.collect::<Vec<_>>());
        let columns: Vec<&[Value]> = (0..sub.schema().len()).map(|i| sub.column(i)).collect();
        TableDelta::from_columns(sub.schema().clone(), &columns).unwrap()
    }

    #[test]
    fn append_delta_matches_full_rebuild_bit_identically() {
        let table = generate_logs(&LogsSpec::scaled(3_000));
        let options = production_options();
        let base = table.select_rows(&(0..2_700).collect::<Vec<_>>());
        let mut appended = DataStore::build(&base, &options).unwrap();
        appended.append_delta(&delta_of(&table, 2_700..2_850)).unwrap();
        appended.append_delta(&delta_of(&table, 2_850..3_000)).unwrap();
        let full = DataStore::build(&table, &options).unwrap();

        assert_eq!(appended.n_rows(), full.n_rows());
        for sql in [
            "SELECT country, COUNT(*) FROM t GROUP BY country",
            "SELECT table_name, SUM(latency) FROM t GROUP BY table_name",
            "SELECT country, MIN(user), MAX(user) FROM t GROUP BY country",
            "SELECT table_name, COUNT(*) FROM t WHERE country = 'DE' GROUP BY table_name",
        ] {
            let (a, _) = crate::exec::query(&appended, sql).unwrap();
            let (b, _) = crate::exec::query(&full, sql).unwrap();
            assert_eq!(a, b, "append vs rebuild diverged for `{sql}`");
        }
    }

    #[test]
    fn append_delta_keeps_ids_stable_and_rows_in_arrival_order() {
        let table = generate_logs(&LogsSpec::scaled(2_000));
        let options = production_options();
        let base = table.select_rows(&(0..1_500).collect::<Vec<_>>());
        let mut store = DataStore::build(&base, &options).unwrap();
        let before = store.column("country").unwrap();
        let old_chunks = store.chunk_count();

        // Materialize a virtual field, then append: it must be dropped.
        let q = parse_query("SELECT hour(timestamp) FROM t GROUP BY hour(timestamp)").unwrap();
        store.column_for_expr(&q.group_by[0]).unwrap();
        assert_eq!(store.virtual_names().len(), 1);

        let deltas = store.append_delta(&delta_of(&table, 1_500..2_000)).unwrap();
        assert_eq!(store.n_rows(), 2_000);
        assert!(store.virtual_names().is_empty(), "virtuals must be invalidated");
        assert_eq!(deltas.len(), store.schema().fields().len());

        // Existing ids are untouched: the old dictionary is a prefix.
        let after = store.column("country").unwrap();
        for id in 0..before.dict.len() {
            assert_eq!(after.dict.value(id), before.dict.value(id), "id {id} moved");
        }
        let country_idx = store.schema().resolve("country").unwrap();
        let field_delta = &deltas[country_idx];
        assert_eq!(field_delta.base_len, before.dict.len());
        assert_eq!(after.dict.len(), before.dict.len() + field_delta.appended.len() as u32);

        // Appended rows live in fresh chunks, in arrival order.
        let p = store.partitioning();
        let mut seen = 0usize;
        for c in old_chunks..store.chunk_count() {
            assert!(
                p.chunk_range(c).len()
                    <= store.options().partition.as_ref().unwrap().max_chunk_rows
            );
            for (i, _) in p.chunk_range(c).enumerate() {
                let src = 1_500 + seen + i;
                for field in store.schema().fields() {
                    let col = store.column(&field.name).unwrap();
                    let idx = table.schema().resolve(&field.name).unwrap();
                    assert_eq!(col.value_at(c, i), table.column(idx)[src]);
                }
            }
            seen += p.chunk_range(c).len();
        }
        assert_eq!(seen, 500);
    }

    #[test]
    fn append_delta_rejects_schema_mismatch() {
        let (_, mut store) = small_store(&production_options());
        let schema = pd_common::Schema::of(&[("other", pd_common::DataType::Int)]);
        let vals = [Value::Int(1)];
        let delta = TableDelta::from_columns(schema, &[&vals[..]]).unwrap();
        assert!(store.append_delta(&delta).is_err());
    }

    #[test]
    fn memory_of_reports_only_requested_columns() {
        let (_, store) = small_store(&production_options());
        let country = Expr::column("country");
        let table_name = Expr::column("table_name");
        let just_country = store.memory_of(&[&country]).unwrap();
        let both = store.memory_of(&[&country, &table_name]).unwrap();
        assert!(just_country > 0);
        assert!(both > just_country);
        assert!(store.total_bytes() > both);
    }
}
