//! Query execution (§2.4), morsel-parallel across chunks.
//!
//! Per active chunk, group-by evaluation "boils down to executing
//! `counts[elements[row]]++`" over a dense array sized by the chunk
//! dictionary, after which per-chunk results are folded into a hash table
//! keyed by global values. The per-chunk loops live in `crate::kernels`
//! (crate-private; its [`crate::KernelConfig`] knobs are re-exported) and
//! operate on raw dictionary codes; this module owns planning, the chunk
//! schedule and the fold.
//!
//! Because every chunk is immutable and per-chunk group states are
//! mergeable (the same property §4 uses to aggregate across machines),
//! active chunks execute **in parallel**: the internal plan builds a work queue
//! of chunk tasks and a [`crate::scheduler`] worker pool scans them on
//! [`ExecContext::threads`] threads. Per-chunk results come back in chunk
//! order and are folded sequentially, so parallel execution returns
//! bit-identical results to sequential execution — float summation order,
//! group contents and chunk-skipping statistics do not depend on the
//! thread count.
//!
//! Row filtering compiles the `WHERE` expression *per chunk* into a packed
//! [`pd_common::BitVec`] mask: any predicate subtree touching a single
//! column is tabulated once per chunk-dictionary entry (at most `n`
//! evaluations for a chunk with `n` distinct values) and then costs one
//! array lookup per row; only genuinely multi-column subtrees fall back to
//! per-row evaluation.
//!
//! [`execute_partial`] returns mergeable group states — the building block
//! the distributed layer (§4) combines up its computation tree —
//! and [`finalize`] applies `HAVING` / `ORDER BY` / `LIMIT` at the root.

use crate::cache::{CachedChunk, ChunkGroups, ResultCache, TieredCache};
use crate::column::StoredColumn;
use crate::count_distinct::KmvSketch;
use crate::datastore::DataStore;
use crate::kernels::{self, ChunkAcc, GroupShape, KernelConfig, DENSE_GROUP_LIMIT};
use crate::scheduler;
use crate::skip::{ChunkActivity, SkipAnalysis};
use crate::stats::ScanStats;
use pd_common::{BitVec, DataType, Error, FloatSum, FxHashMap, HeapSize, Result, Row, Value};
use pd_sql::{
    analyze, eval_expr, parse_query, truthy, AggFunc, AnalyzedQuery, Expr, OutputCol, RowContext,
};
use std::sync::Arc;
use std::time::Instant;

/// Execution knobs.
#[derive(Clone, Default)]
pub struct ExecContext {
    /// Sketch size for approximate count distinct (§5); 0 uses the default.
    pub sketch_m: usize,
    /// Worker threads for the morsel-driven chunk scan; 0 (the default)
    /// uses the machine's available parallelism, 1 forces sequential
    /// execution. Results are identical for every setting.
    pub threads: usize,
    /// Chunk-result cache for fully active chunks (§6).
    pub result_cache: Option<Arc<ResultCache>>,
    /// Two-layer residency model for I/O accounting (§3, Figure 5).
    pub tiered: Option<Arc<TieredCache>>,
    /// Compressed-domain kernel switches (both fast paths default on; every
    /// setting is bit-identical, see [`KernelConfig`]).
    pub kernels: KernelConfig,
}

impl ExecContext {
    /// Resolve the sketch-size knob (0 = the 4096 default).
    pub fn sketch_m(&self) -> usize {
        if self.sketch_m == 0 {
            4096
        } else {
            self.sketch_m
        }
    }

    /// Resolve the `threads` knob (0 = the `EXEC_THREADS` environment
    /// variable when set, available parallelism otherwise).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            scheduler::default_threads()
        } else {
            self.threads
        }
    }
}

/// Group counts at or above this use the parallel id→value translation
/// (below it, fan-out overhead beats the dictionary lookups saved).
const PARALLEL_TRANSLATE_MIN: usize = 4096;

/// A finished query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl QueryResult {
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Render as an aligned text table (for examples and the experiment
    /// binaries).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.render().into_owned()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(self.columns.clone(), &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in rendered {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A mergeable aggregation state.
///
/// Every variant merges associatively and commutatively — the property the
/// §4 computation tree, the parallel chunk fold and the shard fan-out all
/// rely on. Float sums use [`FloatSum`] (an exact superaccumulator), so
/// even `SUM`/`AVG` over floats are bit-identical regardless of how rows
/// were grouped into chunks, threads or shards.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    Count(u64),
    SumInt(i64),
    /// Boxed: the superaccumulator is ~280 bytes and an enum is sized by
    /// its largest variant — boxing keeps `Count`-only group states small.
    SumFloat(Box<FloatSum>),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg {
        sum: Box<FloatSum>,
        count: u64,
    },
    Distinct(KmvSketch),
}

impl AggState {
    /// Merge `other` into `self` (states must have equal variants).
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumInt(a), AggState::SumInt(b)) => *a = a.wrapping_add(*b),
            (AggState::SumFloat(a), AggState::SumFloat(b)) => a.merge(b),
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    match a {
                        Some(av) if &*av <= bv => {}
                        _ => *a = Some(bv.clone()),
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    match a {
                        Some(av) if &*av >= bv => {}
                        _ => *a = Some(bv.clone()),
                    }
                }
            }
            (AggState::Avg { sum: s1, count: c1 }, AggState::Avg { sum: s2, count: c2 }) => {
                s1.merge(s2);
                *c1 += c2;
            }
            (AggState::Distinct(a), AggState::Distinct(b)) => a.merge(b),
            (a, b) => {
                return Err(Error::Internal(format!(
                    "cannot merge aggregation states {a:?} and {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Approximate in-memory footprint, for cost-aware cache admission.
    pub(crate) fn approx_bytes(&self) -> usize {
        let inline = std::mem::size_of::<AggState>();
        inline
            + match self {
                AggState::SumFloat(_) => std::mem::size_of::<FloatSum>(),
                AggState::Avg { .. } => std::mem::size_of::<FloatSum>(),
                AggState::Min(v) | AggState::Max(v) => v.as_ref().map_or(0, |v| v.heap_bytes()),
                // BTreeSet<u64> nodes: ~3 words per retained hash.
                AggState::Distinct(s) => s.len() * 24,
                _ => 0,
            }
    }

    /// Produce the final output value.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(*n as i64),
            AggState::SumInt(s) => Value::Int(*s),
            AggState::SumFloat(s) => Value::Float(s.value()),
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum.value() / *count as f64)
                }
            }
            AggState::Distinct(sketch) => Value::Int(sketch.estimate().round() as i64),
        }
    }
}

/// Mergeable per-group states: the §4 unit of tree aggregation.
///
/// Equality is map equality over bit-exact states ([`Value`] compares
/// floats with `total_cmp`, so NaN payloads and signed zeros distinguish)
/// — the relation the wire round-trip property (`decode(encode(x)) == x`)
/// is asserted under.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartialResult {
    pub groups: FxHashMap<Box<[Value]>, Vec<AggState>>,
}

impl PartialResult {
    /// Merge another partial (same query shape) into this one.
    pub fn merge(&mut self, other: PartialResult) -> Result<()> {
        for (key, states) in other.groups {
            match self.groups.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(states);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(&states) {
                        a.merge(b)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Approximate in-memory footprint of the group map, for cost-aware
    /// cache admission (bytes × recompute ns).
    pub fn approx_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<(Box<[Value]>, Vec<AggState>)>() + 16;
        self.groups
            .iter()
            .map(|(k, states)| {
                per_entry
                    + k.heap_bytes()
                    + states.iter().map(AggState::approx_bytes).sum::<usize>()
            })
            .sum()
    }

    /// Merge another partial by reference, leaving `other` reusable — the
    /// shard-level result cache merges its cached partials this way.
    pub fn merge_ref(&mut self, other: &PartialResult) -> Result<()> {
        for (key, states) in &other.groups {
            match self.groups.entry(key.clone()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(states.clone());
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(states) {
                        a.merge(b)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Parse, analyze and execute a SQL string against a store.
pub fn query(store: &DataStore, sql: &str) -> Result<(QueryResult, ScanStats)> {
    let parsed = parse_query(sql)?;
    let analyzed = analyze(&parsed)?;
    execute(store, &analyzed, &ExecContext::default())
}

/// Execute an analyzed query.
pub fn execute(
    store: &DataStore,
    analyzed: &AnalyzedQuery,
    ctx: &ExecContext,
) -> Result<(QueryResult, ScanStats)> {
    let started = Instant::now();
    let (partial, mut stats) = execute_partial(store, analyzed, ctx)?;
    let result = finalize(analyzed, partial)?;
    stats.elapsed = started.elapsed();
    Ok((result, stats))
}

/// Execute the scan + group phases, returning mergeable states.
pub fn execute_partial(
    store: &DataStore,
    analyzed: &AnalyzedQuery,
    ctx: &ExecContext,
) -> Result<(PartialResult, ScanStats)> {
    execute_partial_seeded(store, analyzed, ctx, None)
}

/// [`execute_partial`], seeding the chunk-skip analysis with verdicts a
/// metadata layer already proved (a tree parent's zone maps / Bloom
/// filters): seeded `Skip` chunks are skipped without re-deriving the
/// proof from chunk dictionaries. Seeds must be sound for exactly
/// `analyzed.restriction`; the result is bit-identical either way.
pub fn execute_partial_seeded(
    store: &DataStore,
    analyzed: &AnalyzedQuery,
    ctx: &ExecContext,
    seeds: Option<&[ChunkActivity]>,
) -> Result<(PartialResult, ScanStats)> {
    let plan = Plan::prepare_seeded(store, analyzed, ctx, seeds)?;
    plan.run(store, ctx)
}

/// Apply HAVING / ORDER BY / LIMIT and project the output columns.
pub fn finalize(analyzed: &AnalyzedQuery, partial: PartialResult) -> Result<QueryResult> {
    let names: Vec<String> = analyzed.output_names();
    let mut rows: Vec<Row> = Vec::with_capacity(partial.groups.len());

    if partial.groups.is_empty() && analyzed.keys.is_empty() {
        // Global aggregation over zero rows still yields one row.
        let row: Vec<Value> = analyzed
            .output
            .iter()
            .map(|(_, src)| match src {
                OutputCol::Key(_) => Value::Null,
                OutputCol::Agg(i) => empty_value(analyzed.aggs[*i].func),
            })
            .collect();
        rows.push(Row(row));
    } else {
        for (key, states) in &partial.groups {
            let row: Vec<Value> = analyzed
                .output
                .iter()
                .map(|(_, src)| match src {
                    OutputCol::Key(i) => key[*i].clone(),
                    OutputCol::Agg(i) => states[*i].finalize(),
                })
                .collect();
            rows.push(Row(row));
        }
    }

    // HAVING over output names.
    if let Some(having) = &analyzed.having {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            let ctx = NamedRowContext { names: &names, row: &row };
            if truthy(&eval_expr(having, &ctx)?) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // Deterministic base order (by full row), then the explicit ORDER BY
    // keys via a stable sort so ties keep the base order.
    rows.sort();
    if !analyzed.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for &(idx, desc) in &analyzed.order_by {
                let ord = a.0[idx].cmp(&b.0[idx]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(limit) = analyzed.limit {
        rows.truncate(limit);
    }
    Ok(QueryResult { columns: names, rows })
}

fn empty_value(func: AggFunc) -> Value {
    match func {
        AggFunc::Count => Value::Int(0),
        _ => Value::Null,
    }
}

/// Context resolving output-column names against a result row.
struct NamedRowContext<'a> {
    names: &'a [String],
    row: &'a Row,
}

impl RowContext for NamedRowContext<'_> {
    fn column(&self, name: &str) -> Result<Value> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.row.0[i].clone())
            .ok_or_else(|| Error::Schema(format!("unknown output column `{name}`")))
    }
}

/// What an aggregate needs per chunk.
pub(crate) enum AggKind {
    Count,
    SumInt,
    SumFloat,
    MinMax { is_min: bool },
    Avg,
    Distinct { m: usize },
}

pub(crate) struct AggPlan {
    pub(crate) kind: AggKind,
    /// Argument column (None for COUNT(*) / COUNT(x), which only counts).
    pub(crate) col: Option<Arc<StoredColumn>>,
}

/// The prepared execution plan.
struct Plan {
    key_cols: Vec<Arc<StoredColumn>>,
    aggs: Vec<AggPlan>,
    filter: Option<FilterPlan>,
    skip: SkipAnalysis,
    /// Result-cache signature (table + keys + aggs + sketch size).
    signature: String,
    /// Distinct columns touched, with names (for cells/IO accounting).
    touched: Vec<(Arc<str>, Arc<StoredColumn>)>,
}

pub(crate) struct FilterPlan {
    pub(crate) expr: Expr,
    /// Columns referenced by the filter: (name, column).
    pub(crate) cols: Vec<(String, Arc<StoredColumn>)>,
}

/// One scanned chunk's contribution, produced by a worker.
///
/// Workers never mutate shared state: a cache hit is returned as-is and a
/// computed payload is handed back for the driver to admit into the cache
/// (and account) in deterministic chunk order.
enum ChunkScan {
    Cached(Arc<CachedChunk>),
    Computed {
        payload: CachedChunk,
        /// Measured wall time of the chunk scan, for cost-aware cache
        /// admission (bytes × recompute ns).
        compute: std::time::Duration,
    },
}

/// The driver-side, chunk-ordered fold of scan payloads.
///
/// Owns every shared-state mutation (cache admission, tiered-cache
/// touches, statistics), keeping them deterministic under any worker
/// scheduling. Groups accumulate in the global-id domain; dense single-key
/// `COUNT(*)` payloads add into a global-id-indexed array when the key
/// dictionary is proportionate to the scanned volume, and hash-fold
/// otherwise (so a selective query over a store with an enormous global
/// dictionary never allocates `dict.len()` slots for a handful of groups).
struct Fold<'a> {
    plan: &'a Plan,
    store: &'a DataStore,
    ctx: &'a ExecContext,
    tasks: &'a [(usize, bool)],
    id_groups: FxHashMap<Box<[u32]>, Vec<AggState>>,
    dense_counts: Option<Vec<u64>>,
    use_dense_fold: bool,
}

impl<'a> Fold<'a> {
    fn new(
        plan: &'a Plan,
        store: &'a DataStore,
        ctx: &'a ExecContext,
        tasks: &'a [(usize, bool)],
    ) -> Fold<'a> {
        let active_rows: u64 = tasks.iter().map(|&(c, _)| store.chunk_rows(c) as u64).sum();
        let use_dense_fold = plan
            .key_cols
            .first()
            .is_some_and(|col| u64::from(col.dict.len()) <= (4 * active_rows).max(1024));
        Fold {
            plan,
            store,
            ctx,
            tasks,
            id_groups: FxHashMap::default(),
            dense_counts: None,
            use_dense_fold,
        }
    }

    /// Fold task `i`'s scan: account statistics, admit computed payloads
    /// into the result cache, merge the groups.
    fn absorb(&mut self, stats: &mut ScanStats, i: usize, scan: ChunkScan) -> Result<()> {
        let (c, filtered) = self.tasks[i];
        let rows = self.store.chunk_rows(c) as u64;
        let payload: ChunkPayloadRef = match scan {
            ChunkScan::Cached(hit) => {
                stats.chunks_cached += 1;
                stats.rows_cached += rows;
                ChunkPayloadRef::Shared(hit)
            }
            ChunkScan::Computed { payload, compute } => {
                self.plan.account_scan(stats, self.ctx, c, rows);
                match (&self.ctx.result_cache, filtered) {
                    (Some(rc), false) => {
                        let shared = Arc::new(payload);
                        rc.put_costed(&self.plan.signature, c as u32, shared.clone(), compute);
                        ChunkPayloadRef::Shared(shared)
                    }
                    _ => ChunkPayloadRef::Owned(payload),
                }
            }
        };
        match &*payload {
            CachedChunk::Groups(groups) => fold(&mut self.id_groups, groups)?,
            CachedChunk::DenseSingleCount(counts) => {
                let key_col = &self.plan.key_cols[0];
                let chunk_dict = &key_col.chunks[c].dict;
                if self.use_dense_fold {
                    let global = self
                        .dense_counts
                        .get_or_insert_with(|| vec![0u64; key_col.dict.len() as usize]);
                    for (cid, &n) in counts.iter().enumerate() {
                        if n > 0 {
                            global[chunk_dict.global_id_of(cid as u32) as usize] += n;
                        }
                    }
                } else {
                    for (cid, &n) in counts.iter().enumerate() {
                        if n > 0 {
                            merge_count(
                                &mut self.id_groups,
                                chunk_dict.global_id_of(cid as u32),
                                n,
                            )?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Merge any dense counts into the group map and return it.
    fn finish(mut self) -> Result<FxHashMap<Box<[u32]>, Vec<AggState>>> {
        if let Some(global) = self.dense_counts.take() {
            for (gid, &n) in global.iter().enumerate() {
                if n > 0 {
                    merge_count(&mut self.id_groups, gid as u32, n)?;
                }
            }
        }
        Ok(self.id_groups)
    }
}

fn merge_count(
    id_groups: &mut FxHashMap<Box<[u32]>, Vec<AggState>>,
    gid: u32,
    n: u64,
) -> Result<()> {
    match id_groups.entry(Box::from([gid])) {
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(vec![AggState::Count(n)]);
        }
        std::collections::hash_map::Entry::Occupied(mut e) => {
            e.get_mut()[0].merge(&AggState::Count(n))?;
        }
    }
    Ok(())
}

enum ChunkPayloadRef {
    Owned(CachedChunk),
    Shared(Arc<CachedChunk>),
}

impl std::ops::Deref for ChunkPayloadRef {
    type Target = CachedChunk;

    fn deref(&self) -> &CachedChunk {
        match self {
            ChunkPayloadRef::Owned(g) => g,
            ChunkPayloadRef::Shared(g) => g,
        }
    }
}

impl Plan {
    fn prepare_seeded(
        store: &DataStore,
        analyzed: &AnalyzedQuery,
        ctx: &ExecContext,
        seeds: Option<&[ChunkActivity]>,
    ) -> Result<Plan> {
        let mut touched: Vec<(Arc<str>, Arc<StoredColumn>)> = Vec::new();
        let mut touch = |name: String, col: &Arc<StoredColumn>| {
            if !touched.iter().any(|(n, _)| **n == *name) {
                touched.push((Arc::from(name.as_str()), col.clone()));
            }
        };

        let mut key_cols = Vec::with_capacity(analyzed.keys.len());
        for key in &analyzed.keys {
            let col = store.column_for_expr(key)?;
            touch(key.canonical(), &col);
            key_cols.push(col);
        }

        let mut aggs = Vec::with_capacity(analyzed.aggs.len());
        for agg in &analyzed.aggs {
            let col = match &agg.arg {
                Some(arg) => {
                    let col = store.column_for_expr(arg)?;
                    touch(arg.canonical(), &col);
                    Some(col)
                }
                None => None,
            };
            let kind = if agg.distinct {
                AggKind::Distinct { m: ctx.sketch_m() }
            } else {
                match agg.func {
                    AggFunc::Count => AggKind::Count,
                    AggFunc::Sum => match require_arg_type(agg.func, &col)? {
                        DataType::Int => AggKind::SumInt,
                        DataType::Float => AggKind::SumFloat,
                        DataType::Str => {
                            return Err(Error::Type("SUM over a string column".into()))
                        }
                    },
                    AggFunc::Avg => {
                        let t = require_arg_type(agg.func, &col)?;
                        if t == DataType::Str {
                            return Err(Error::Type("AVG over a string column".into()));
                        }
                        AggKind::Avg
                    }
                    AggFunc::Min => AggKind::MinMax { is_min: true },
                    AggFunc::Max => AggKind::MinMax { is_min: false },
                }
            };
            // COUNT(x) counts rows (stores hold no NULLs): drop the column
            // to keep the fast path.
            let col = match kind {
                AggKind::Count => None,
                _ => col,
            };
            aggs.push(AggPlan { kind, col });
        }

        let filter = match &analyzed.filter {
            None => None,
            Some(expr) => {
                let mut names = Vec::new();
                expr.referenced_columns(&mut names);
                let mut cols = Vec::with_capacity(names.len());
                for n in &names {
                    let col = store.column(n)?;
                    touch(n.clone(), &col);
                    cols.push((n.clone(), col));
                }
                Some(FilterPlan { expr: expr.clone(), cols })
            }
        };

        let skip =
            SkipAnalysis::prepare_seeded(store, &analyzed.restriction, seeds.map(|s| s.to_vec()))?;

        let signature = format!(
            "{}|keys:{}|aggs:{}|m:{}",
            analyzed.table.as_deref().unwrap_or(""),
            analyzed.keys.iter().map(Expr::canonical).collect::<Vec<_>>().join(","),
            analyzed.aggs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(","),
            ctx.sketch_m(),
        );

        Ok(Plan { key_cols, aggs, filter, skip, signature, touched })
    }

    /// Scan the active chunks (in parallel when `ctx.threads != 1`) and
    /// fold their group states in chunk order.
    fn run(&self, store: &DataStore, ctx: &ExecContext) -> Result<(PartialResult, ScanStats)> {
        let mut stats = ScanStats {
            chunks_total: store.chunk_count(),
            rows_total: store.n_rows() as u64,
            ..Default::default()
        };

        // Classify every chunk up front — the skip analysis is a pure
        // dictionary computation, so it stays on the driver thread.
        let mut tasks: Vec<(usize, bool)> = Vec::new();
        for c in 0..store.chunk_count() {
            let rows = store.chunk_rows(c) as u64;
            if rows == 0 {
                continue;
            }
            match self.skip.activity(c) {
                ChunkActivity::Skip => {
                    stats.chunks_skipped += 1;
                    stats.rows_skipped += rows;
                }
                ChunkActivity::Full => tasks.push((c, false)),
                ChunkActivity::Partial => tasks.push((c, true)),
            }
        }

        // Morsel-driven scan: workers pull chunk tasks off a shared queue,
        // each producing that chunk's mergeable groups. Workers only *read*
        // shared state (the result cache's get); every mutation — cache
        // admission, tiered-cache touches, statistics — happens in the fold
        // on the driver in chunk order, so cache eviction state and modeled
        // I/O stay deterministic regardless of worker scheduling. With one
        // worker the fold streams chunk by chunk (one payload live at a
        // time, like the sequential seed); the parallel path buffers
        // payloads until the ordered fold.
        let mut folder = Fold::new(self, store, ctx, &tasks);
        let threads = ctx.effective_threads();
        if threads <= 1 || tasks.len() <= 1 {
            for (i, &(c, filtered)) in tasks.iter().enumerate() {
                let scan = self.scan_chunk(store, ctx, c, filtered)?;
                folder.absorb(&mut stats, i, scan)?;
            }
        } else {
            let scans = scheduler::run_tasks(threads, tasks.len(), |i| {
                let (c, filtered) = tasks[i];
                self.scan_chunk(store, ctx, c, filtered)
            })?;
            for (i, scan) in scans.into_iter().enumerate() {
                folder.absorb(&mut stats, i, scan)?;
            }
        }
        let id_groups = folder.finish()?;

        // Translate ids to values once per distinct id per key column —
        // dictionary lookups (trie walks for string columns) are paid per
        // result group, not per chunk-dictionary entry. Very-high-
        // cardinality outputs fan the translation out across the worker
        // pool (per-task memos; the group map is insertion-order
        // independent and dictionaries are bijections, so the result is
        // identical to the sequential walk).
        let mut result = PartialResult::default();
        if threads > 1 && id_groups.len() >= PARALLEL_TRANSLATE_MIN {
            let entries: Vec<(Box<[u32]>, Vec<AggState>)> = id_groups.into_iter().collect();
            let t = threads.min(entries.len().div_ceil(PARALLEL_TRANSLATE_MIN));
            let per = entries.len().div_ceil(t);
            let key_parts: Vec<Vec<Box<[Value]>>> = scheduler::run_tasks(t, t, |i| {
                let lo = i * per;
                let hi = ((i + 1) * per).min(entries.len());
                let mut memos: Vec<FxHashMap<u32, Value>> =
                    self.key_cols.iter().map(|_| FxHashMap::default()).collect();
                Ok(entries[lo..hi]
                    .iter()
                    .map(|(ids, _)| self.translate_key(ids, &mut memos))
                    .collect())
            })?;
            result.groups.reserve(entries.len());
            let mut rest = entries.into_iter();
            for key in key_parts.into_iter().flatten() {
                let (_, states) = rest.next().expect("one key per entry");
                result.groups.insert(key, states);
            }
        } else {
            let mut memos: Vec<FxHashMap<u32, Value>> =
                self.key_cols.iter().map(|_| FxHashMap::default()).collect();
            for (ids, states) in id_groups {
                let key = self.translate_key(&ids, &mut memos);
                // Dictionaries are bijections, so distinct id tuples map to
                // distinct value tuples: plain insert, no merge needed.
                result.groups.insert(key, states);
            }
        }
        Ok((result, stats))
    }

    /// Translate one group's key ids into values via per-column memos.
    fn translate_key(&self, ids: &[u32], memos: &mut [FxHashMap<u32, Value>]) -> Box<[Value]> {
        ids.iter()
            .zip(&self.key_cols)
            .zip(memos.iter_mut())
            .map(|((&id, col), memo)| memo.entry(id).or_insert_with(|| col.dict.value(id)).clone())
            .collect()
    }

    /// Scan one chunk: consult the chunk-result cache for fully active
    /// chunks (read-only), compute groups otherwise. Cache admission and
    /// I/O accounting happen later, on the driver, in chunk order.
    fn scan_chunk(
        &self,
        store: &DataStore,
        ctx: &ExecContext,
        c: usize,
        filtered: bool,
    ) -> Result<ChunkScan> {
        if !filtered {
            if let Some(rc) = &ctx.result_cache {
                if let Some(hit) = rc.get(&self.signature, c as u32) {
                    return Ok(ChunkScan::Cached(hit));
                }
            }
        }
        let started = Instant::now();
        let payload = self.chunk_payload(store, ctx, c, filtered)?;
        Ok(ChunkScan::Computed { payload, compute: started.elapsed() })
    }

    /// Record scan costs for chunk `c`: cells touched and the modeled I/O
    /// of bringing each touched column chunk into the uncompressed layer.
    fn account_scan(&self, stats: &mut ScanStats, ctx: &ExecContext, c: usize, rows: u64) {
        stats.chunks_scanned += 1;
        stats.rows_scanned += rows;
        stats.cells_scanned += rows * self.touched.len() as u64;
        if let Some(tiered) = &ctx.tiered {
            for (name, col) in &self.touched {
                let chunk = &col.chunks[c];
                let uncompressed = chunk.dict.heap_bytes() + chunk.elements.heap_bytes();
                // Modeled compressed size: the paper's Zippy achieves ~4x on
                // chunked payloads; the exact per-chunk compression is
                // measured by the Table 3 experiment, not per access.
                let compressed = (uncompressed / 4).max(1);
                let cost = tiered.touch(&(name.clone(), c as u32), uncompressed, compressed);
                stats.disk_bytes += cost.disk_bytes;
                stats.decompressed_bytes += cost.decompressed_bytes;
            }
        }
    }

    /// Group one chunk. `filtered` says whether the row filter applies
    /// (fully active chunks skip it by definition).
    fn chunk_payload(
        &self,
        store: &DataStore,
        ctx: &ExecContext,
        c: usize,
        filtered: bool,
    ) -> Result<CachedChunk> {
        let rows = store.chunk_rows(c);
        let key_chunks: Vec<_> = self.key_cols.iter().map(|col| &col.chunks[c]).collect();
        let sizes: Vec<usize> = key_chunks.iter().map(|ch| ch.dict.len() as usize).collect();

        // Tabulate the row filter into a packed mask once per chunk; the
        // kernels below consume the mask instead of evaluating per row.
        let mask: Option<BitVec> = match (filtered, &self.filter) {
            (true, Some(plan)) => Some(kernels::filter_mask(plan, c, rows)?),
            _ => None,
        };

        let dense_capacity: Option<usize> = sizes.iter().try_fold(1usize, |acc, &n| {
            let prod = acc.checked_mul(n.max(1))?;
            (prod <= DENSE_GROUP_LIMIT).then_some(prod)
        });
        // Exact float accumulators are ~34 words each; without the
        // double-double fast path, cap the dense over-allocation for them
        // and hash-group instead. With it, dense slots cost 16 bytes and
        // the full dense range stays profitable.
        let float_heavy =
            self.aggs.iter().any(|a| matches!(a.kind, AggKind::SumFloat | AggKind::Avg));
        let dense_capacity = match dense_capacity {
            Some(c) if float_heavy && !ctx.kernels.dense_float && c > DENSE_GROUP_LIMIT / 16 => {
                None
            }
            other => other,
        };

        // Fast paths: the paper's counts-array loop on raw codes — one or
        // two keys, COUNT(*) only, flat arrays, no per-row group map. The
        // single-key counts stay in their raw chunk-id form (the fold adds
        // them through the chunk dictionary); the two-key fused counts
        // become id-domain groups. A single key never needs the dense
        // limit: its counts array is bounded by the chunk-dictionary size,
        // which is at most the chunk's row count (the limit exists to stop
        // *products* of key-dictionary sizes from exploding).
        if self.aggs.len() == 1 && matches!(self.aggs[0].kind, AggKind::Count) {
            if key_chunks.len() == 1 {
                return Ok(CachedChunk::DenseSingleCount(kernels::count_single(
                    key_chunks[0].codes(),
                    sizes[0].max(1),
                    mask.as_ref(),
                    ctx.kernels.run_aware,
                )));
            }
            if let (2, Some(capacity)) = (key_chunks.len(), dense_capacity) {
                let counts = kernels::count_fused(
                    key_chunks[0].codes(),
                    key_chunks[1].codes(),
                    sizes[1].max(1),
                    capacity,
                    mask.as_ref(),
                );
                return Ok(CachedChunk::Groups(self.dense_counts_to_groups(
                    counts,
                    &key_chunks,
                    &sizes,
                )));
            }
        }

        // Pass A: group index per row (u32::MAX = filtered out).
        let index = kernels::group_codes(&key_chunks, &sizes, rows, mask.as_ref(), dense_capacity);

        let mut seen = vec![false; index.group_count];
        for &g in &index.group_of_row {
            if g != u32::MAX {
                seen[g as usize] = true;
            }
        }

        // What pass B may assume about `group_of_row`: on the unmasked
        // dense path with zero keys every row is group 0, and with one key
        // a row's group is exactly its key code — both let run-aware
        // kernels consume `Elements` runs instead of rows.
        let shape = match (mask.is_none() && dense_capacity.is_some(), key_chunks.len()) {
            (true, 0) => GroupShape::AllRows,
            (true, 1) => GroupShape::KeyCodes(key_chunks[0].codes()),
            _ => GroupShape::General,
        };

        // Memoize the dictionary→f64 table per (argument column, chunk):
        // SUM(x) and AVG(x) in one query share one build.
        let mut float_tables: Vec<Option<std::rc::Rc<Vec<f64>>>> = vec![None; self.aggs.len()];
        for i in 0..self.aggs.len() {
            if !matches!(self.aggs[i].kind, AggKind::SumFloat | AggKind::Avg) {
                continue;
            }
            let col = self.aggs[i].col.as_ref().expect("float aggregate has an argument");
            let found = self.aggs[..i]
                .iter()
                .zip(&float_tables)
                .find(|(prev, table)| {
                    table.is_some() && prev.col.as_ref().is_some_and(|p| Arc::ptr_eq(p, col))
                })
                .and_then(|(_, table)| table.clone());
            float_tables[i] = Some(match found {
                Some(shared) => shared,
                None => std::rc::Rc::new(kernels::float_table(&self.aggs[i], &col.chunks[c])),
            });
        }

        // Pass B: per-aggregate tight loops.
        let mut accs: Vec<ChunkAcc> = Vec::with_capacity(self.aggs.len());
        for (agg, table) in self.aggs.iter().zip(&float_tables) {
            accs.push(ChunkAcc::run(
                agg,
                c,
                index.group_count,
                &index.group_of_row,
                shape,
                ctx.kernels,
                table.as_ref().map(|t| t.as_slice()),
            )?);
        }

        // Convert to global-id-domain groups (values are translated once,
        // at the end of the whole scan).
        let mut out: ChunkGroups = Vec::with_capacity(seen.iter().filter(|s| **s).count());
        for g in 0..index.group_count {
            if !seen[g] {
                continue;
            }
            let key: Box<[u32]> = match &index.hash_keys {
                None => decode_dense_gids(g, &key_chunks, &sizes),
                Some(hash_keys) => hash_keys[g]
                    .iter()
                    .zip(&key_chunks)
                    .map(|(&id, ch)| ch.dict.global_id_of(id))
                    .collect(),
            };
            let states: Vec<AggState> = accs.iter().map(|acc| acc.state_of(g)).collect();
            out.push((key, states));
        }
        Ok(CachedChunk::Groups(out))
    }

    /// Convert a dense flat counts array into id-domain groups.
    fn dense_counts_to_groups(
        &self,
        counts: Vec<u64>,
        key_chunks: &[&crate::column::ColumnChunk],
        sizes: &[usize],
    ) -> ChunkGroups {
        counts
            .into_iter()
            .enumerate()
            .filter(|(_, n)| *n > 0)
            .map(|(g, n)| (decode_dense_gids(g, key_chunks, sizes), vec![AggState::Count(n)]))
            .collect()
    }
}

/// Decode the mixed-radix dense group index back into per-key global-ids
/// (most-significant key first).
fn decode_dense_gids(
    g: usize,
    key_chunks: &[&crate::column::ColumnChunk],
    sizes: &[usize],
) -> Box<[u32]> {
    let mut ids = vec![0u32; key_chunks.len()];
    let mut rem = g;
    for (slot, &n) in ids.iter_mut().zip(sizes).rev() {
        let n = n.max(1);
        *slot = (rem % n) as u32;
        rem /= n;
    }
    ids.iter().zip(key_chunks).map(|(&id, ch)| ch.dict.global_id_of(id)).collect()
}

fn require_arg_type(func: AggFunc, col: &Option<Arc<StoredColumn>>) -> Result<DataType> {
    col.as_ref()
        .map(|c| c.data_type())
        .ok_or_else(|| Error::Internal(format!("{}(*) is only valid for COUNT", func.name())))
}

fn fold(result: &mut FxHashMap<Box<[u32]>, Vec<AggState>>, groups: &ChunkGroups) -> Result<()> {
    for (key, states) in groups.iter() {
        match result.entry(key.clone()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(states.clone());
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                for (a, b) in e.get_mut().iter_mut().zip(states) {
                    a.merge(b)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_state_finalize_values() {
        assert_eq!(AggState::Count(7).finalize(), Value::Int(7));
        assert_eq!(AggState::SumInt(-3).finalize(), Value::Int(-3));
        assert_eq!(AggState::SumFloat(Box::new(FloatSum::from(2.5))).finalize(), Value::Float(2.5));
        assert_eq!(AggState::Min(None).finalize(), Value::Null);
        assert_eq!(AggState::Max(Some(Value::from("z"))).finalize(), Value::from("z"));
        assert_eq!(
            AggState::Avg { sum: Box::new(FloatSum::from(10.0)), count: 4 }.finalize(),
            Value::Float(2.5)
        );
        assert_eq!(
            AggState::Avg { sum: Box::new(FloatSum::new()), count: 0 }.finalize(),
            Value::Null
        );
    }

    #[test]
    fn agg_state_merge_mismatch_is_an_error() {
        let mut a = AggState::Count(1);
        assert!(a.merge(&AggState::SumInt(1)).is_err());
        let mut m = AggState::Min(Some(Value::Int(5)));
        m.merge(&AggState::Min(Some(Value::Int(3)))).unwrap();
        assert_eq!(m.finalize(), Value::Int(3));
        // Merging an empty Min keeps the present value.
        m.merge(&AggState::Min(None)).unwrap();
        assert_eq!(m.finalize(), Value::Int(3));
    }

    #[test]
    fn partial_results_merge_group_wise() {
        let mut a = PartialResult::default();
        a.groups.insert(vec![Value::from("x")].into_boxed_slice(), vec![AggState::Count(2)]);
        let mut b = PartialResult::default();
        b.groups.insert(vec![Value::from("x")].into_boxed_slice(), vec![AggState::Count(3)]);
        b.groups.insert(vec![Value::from("y")].into_boxed_slice(), vec![AggState::Count(1)]);
        a.merge(b).unwrap();
        assert_eq!(a.groups.len(), 2);
        let key: Box<[Value]> = vec![Value::from("x")].into_boxed_slice();
        assert_eq!(a.groups[&key], vec![AggState::Count(5)]);
    }

    #[test]
    fn query_result_helpers() {
        let r = QueryResult {
            columns: vec!["a".into(), "b".into()],
            rows: vec![Row(vec![Value::Int(1), Value::from("x")])],
        };
        assert_eq!(r.column_index("b"), Some(1));
        assert_eq!(r.column_index("zz"), None);
        let text = r.render();
        assert!(text.contains('a') && text.contains('x'));
    }

    #[test]
    fn effective_threads_resolves_auto() {
        let ctx = ExecContext::default();
        assert!(ctx.effective_threads() >= 1);
        let one = ExecContext { threads: 1, ..Default::default() };
        assert_eq!(one.effective_threads(), 1);
        let four = ExecContext { threads: 4, ..Default::default() };
        assert_eq!(four.effective_threads(), 4);
    }
}
