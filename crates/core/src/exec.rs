//! Query execution (§2.4).
//!
//! Per active chunk, group-by evaluation "boils down to executing
//! `counts[elements[row]]++`" over a dense array sized by the chunk
//! dictionary, after which per-chunk results are folded into a hash table
//! keyed by global values. This module generalizes that loop to multiple
//! keys and the full aggregate set while keeping the paper's fast path
//! intact (single key, `COUNT(*)`, no filter → literally the counts-array
//! loop).
//!
//! Row filtering compiles the `WHERE` expression *per chunk*: any predicate
//! subtree touching a single column is tabulated once per chunk-dictionary
//! entry (at most `n` evaluations for a chunk with `n` distinct values) and
//! then costs one array lookup per row; only genuinely multi-column
//! subtrees fall back to per-row evaluation.
//!
//! [`execute_partial`] returns mergeable group states — the building block
//! the distributed layer (§4) combines up its computation tree —
//! and [`finalize`] applies `HAVING` / `ORDER BY` / `LIMIT` at the root.

use crate::cache::{ChunkGroups, ResultCache, TieredCache};
use crate::column::StoredColumn;
use crate::count_distinct::KmvSketch;
use crate::datastore::DataStore;
use crate::skip::{ChunkActivity, SkipAnalysis};
use crate::stats::ScanStats;
use pd_common::{fx_hash64, DataType, Error, FxHashMap, HeapSize, Result, Row, Value};
use pd_sql::{
    analyze, eval_expr, parse_query, truthy, AggFunc, AnalyzedQuery, Expr, OutputCol, RowContext,
};
use std::sync::Arc;
use std::time::Instant;

/// Per-chunk dense-grouping limit: products of key-dictionary sizes up to
/// this use a flat array; larger products fall back to a hash map.
const DENSE_GROUP_LIMIT: usize = 1 << 16;

/// Execution knobs.
#[derive(Clone, Default)]
pub struct ExecContext {
    /// Sketch size for approximate count distinct (§5); 0 uses the default.
    pub sketch_m: usize,
    /// Chunk-result cache for fully active chunks (§6).
    pub result_cache: Option<Arc<ResultCache>>,
    /// Two-layer residency model for I/O accounting (§3, Figure 5).
    pub tiered: Option<Arc<TieredCache>>,
}

impl ExecContext {
    fn sketch_m(&self) -> usize {
        if self.sketch_m == 0 {
            4096
        } else {
            self.sketch_m
        }
    }
}

/// A finished query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl QueryResult {
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Render as an aligned text table (for examples and the experiment
    /// binaries).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.render().into_owned()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(self.columns.clone(), &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in rendered {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A mergeable aggregation state.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    Count(u64),
    SumInt(i64),
    SumFloat(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: u64 },
    Distinct(KmvSketch),
}

impl AggState {
    /// Merge `other` into `self` (states must have equal variants).
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumInt(a), AggState::SumInt(b)) => *a = a.wrapping_add(*b),
            (AggState::SumFloat(a), AggState::SumFloat(b)) => *a += b,
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    match a {
                        Some(av) if &*av <= bv => {}
                        _ => *a = Some(bv.clone()),
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    match a {
                        Some(av) if &*av >= bv => {}
                        _ => *a = Some(bv.clone()),
                    }
                }
            }
            (AggState::Avg { sum: s1, count: c1 }, AggState::Avg { sum: s2, count: c2 }) => {
                *s1 += s2;
                *c1 += c2;
            }
            (AggState::Distinct(a), AggState::Distinct(b)) => a.merge(b),
            (a, b) => {
                return Err(Error::Internal(format!(
                    "cannot merge aggregation states {a:?} and {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Produce the final output value.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(*n as i64),
            AggState::SumInt(s) => Value::Int(*s),
            AggState::SumFloat(s) => Value::Float(*s),
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
            AggState::Distinct(sketch) => Value::Int(sketch.estimate().round() as i64),
        }
    }
}

/// Mergeable per-group states: the §4 unit of tree aggregation.
#[derive(Debug, Clone, Default)]
pub struct PartialResult {
    pub groups: FxHashMap<Box<[Value]>, Vec<AggState>>,
}

impl PartialResult {
    /// Merge another partial (same query shape) into this one.
    pub fn merge(&mut self, other: PartialResult) -> Result<()> {
        for (key, states) in other.groups {
            match self.groups.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(states);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(&states) {
                        a.merge(b)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Parse, analyze and execute a SQL string against a store.
pub fn query(store: &DataStore, sql: &str) -> Result<(QueryResult, ScanStats)> {
    let parsed = parse_query(sql)?;
    let analyzed = analyze(&parsed)?;
    execute(store, &analyzed, &ExecContext::default())
}

/// Execute an analyzed query.
pub fn execute(
    store: &DataStore,
    analyzed: &AnalyzedQuery,
    ctx: &ExecContext,
) -> Result<(QueryResult, ScanStats)> {
    let started = Instant::now();
    let (partial, mut stats) = execute_partial(store, analyzed, ctx)?;
    let result = finalize(analyzed, partial)?;
    stats.elapsed = started.elapsed();
    Ok((result, stats))
}

/// Execute the scan + group phases, returning mergeable states.
pub fn execute_partial(
    store: &DataStore,
    analyzed: &AnalyzedQuery,
    ctx: &ExecContext,
) -> Result<(PartialResult, ScanStats)> {
    let plan = Plan::prepare(store, analyzed, ctx)?;
    plan.run(store, ctx)
}

/// Apply HAVING / ORDER BY / LIMIT and project the output columns.
pub fn finalize(analyzed: &AnalyzedQuery, partial: PartialResult) -> Result<QueryResult> {
    let names: Vec<String> = analyzed.output_names();
    let mut rows: Vec<Row> = Vec::with_capacity(partial.groups.len());

    if partial.groups.is_empty() && analyzed.keys.is_empty() {
        // Global aggregation over zero rows still yields one row.
        let row: Vec<Value> = analyzed
            .output
            .iter()
            .map(|(_, src)| match src {
                OutputCol::Key(_) => Value::Null,
                OutputCol::Agg(i) => empty_value(analyzed.aggs[*i].func),
            })
            .collect();
        rows.push(Row(row));
    } else {
        for (key, states) in &partial.groups {
            let row: Vec<Value> = analyzed
                .output
                .iter()
                .map(|(_, src)| match src {
                    OutputCol::Key(i) => key[*i].clone(),
                    OutputCol::Agg(i) => states[*i].finalize(),
                })
                .collect();
            rows.push(Row(row));
        }
    }

    // HAVING over output names.
    if let Some(having) = &analyzed.having {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            let ctx = NamedRowContext { names: &names, row: &row };
            if truthy(&eval_expr(having, &ctx)?) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // Deterministic base order (by full row), then the explicit ORDER BY
    // keys via a stable sort so ties keep the base order.
    rows.sort();
    if !analyzed.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for &(idx, desc) in &analyzed.order_by {
                let ord = a.0[idx].cmp(&b.0[idx]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(limit) = analyzed.limit {
        rows.truncate(limit);
    }
    Ok(QueryResult { columns: names, rows })
}

fn empty_value(func: AggFunc) -> Value {
    match func {
        AggFunc::Count => Value::Int(0),
        _ => Value::Null,
    }
}

/// Context resolving output-column names against a result row.
struct NamedRowContext<'a> {
    names: &'a [String],
    row: &'a Row,
}

impl RowContext for NamedRowContext<'_> {
    fn column(&self, name: &str) -> Result<Value> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.row.0[i].clone())
            .ok_or_else(|| Error::Schema(format!("unknown output column `{name}`")))
    }
}

/// What an aggregate needs per chunk.
enum AggKind {
    Count,
    SumInt,
    SumFloat,
    MinMax { is_min: bool },
    Avg,
    Distinct { m: usize },
}

struct AggPlan {
    kind: AggKind,
    /// Argument column (None for COUNT(*) / COUNT(x), which only counts).
    col: Option<Arc<StoredColumn>>,
}

/// The prepared execution plan.
struct Plan {
    key_cols: Vec<Arc<StoredColumn>>,
    aggs: Vec<AggPlan>,
    filter: Option<FilterPlan>,
    skip: SkipAnalysis,
    /// Result-cache signature (table + keys + aggs + sketch size).
    signature: String,
    /// Distinct columns touched, with names (for cells/IO accounting).
    touched: Vec<(Arc<str>, Arc<StoredColumn>)>,
}

struct FilterPlan {
    expr: Expr,
    /// Columns referenced by the filter: (name, column).
    cols: Vec<(String, Arc<StoredColumn>)>,
}

impl Plan {
    fn prepare(store: &DataStore, analyzed: &AnalyzedQuery, ctx: &ExecContext) -> Result<Plan> {
        let mut touched: Vec<(Arc<str>, Arc<StoredColumn>)> = Vec::new();
        let mut touch = |name: String, col: &Arc<StoredColumn>| {
            if !touched.iter().any(|(n, _)| **n == *name) {
                touched.push((Arc::from(name.as_str()), col.clone()));
            }
        };

        let mut key_cols = Vec::with_capacity(analyzed.keys.len());
        for key in &analyzed.keys {
            let col = store.column_for_expr(key)?;
            touch(key.canonical(), &col);
            key_cols.push(col);
        }

        let mut aggs = Vec::with_capacity(analyzed.aggs.len());
        for agg in &analyzed.aggs {
            let col = match &agg.arg {
                Some(arg) => {
                    let col = store.column_for_expr(arg)?;
                    touch(arg.canonical(), &col);
                    Some(col)
                }
                None => None,
            };
            let kind = if agg.distinct {
                AggKind::Distinct { m: ctx.sketch_m() }
            } else {
                match agg.func {
                    AggFunc::Count => AggKind::Count,
                    AggFunc::Sum => match require_arg_type(agg.func, &col)? {
                        DataType::Int => AggKind::SumInt,
                        DataType::Float => AggKind::SumFloat,
                        DataType::Str => {
                            return Err(Error::Type("SUM over a string column".into()))
                        }
                    },
                    AggFunc::Avg => {
                        let t = require_arg_type(agg.func, &col)?;
                        if t == DataType::Str {
                            return Err(Error::Type("AVG over a string column".into()));
                        }
                        AggKind::Avg
                    }
                    AggFunc::Min => AggKind::MinMax { is_min: true },
                    AggFunc::Max => AggKind::MinMax { is_min: false },
                }
            };
            // COUNT(x) counts rows (stores hold no NULLs): drop the column
            // to keep the fast path.
            let col = match kind {
                AggKind::Count => None,
                _ => col,
            };
            aggs.push(AggPlan { kind, col });
        }

        let filter = match &analyzed.filter {
            None => None,
            Some(expr) => {
                let mut names = Vec::new();
                expr.referenced_columns(&mut names);
                let mut cols = Vec::with_capacity(names.len());
                for n in &names {
                    let col = store.column(n)?;
                    touch(n.clone(), &col);
                    cols.push((n.clone(), col));
                }
                Some(FilterPlan { expr: expr.clone(), cols })
            }
        };

        let skip = SkipAnalysis::prepare(store, &analyzed.restriction)?;

        let signature = format!(
            "{}|keys:{}|aggs:{}|m:{}",
            analyzed.table.as_deref().unwrap_or(""),
            analyzed
                .keys
                .iter()
                .map(Expr::canonical)
                .collect::<Vec<_>>()
                .join(","),
            analyzed
                .aggs
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(","),
            ctx.sketch_m(),
        );

        Ok(Plan { key_cols, aggs, filter, skip, signature, touched })
    }

    fn run(&self, store: &DataStore, ctx: &ExecContext) -> Result<(PartialResult, ScanStats)> {
        let mut stats = ScanStats {
            chunks_total: store.chunk_count(),
            rows_total: store.n_rows() as u64,
            ..Default::default()
        };
        let mut result = PartialResult::default();

        for c in 0..store.chunk_count() {
            let rows = store.chunk_rows(c) as u64;
            if rows == 0 {
                continue;
            }
            match self.skip.activity(c) {
                ChunkActivity::Skip => {
                    stats.chunks_skipped += 1;
                    stats.rows_skipped += rows;
                }
                ChunkActivity::Full => {
                    if let Some(rc) = &ctx.result_cache {
                        if let Some(hit) = rc.get(&self.signature, c as u32) {
                            stats.chunks_cached += 1;
                            stats.rows_cached += rows;
                            fold(&mut result, &hit)?;
                            continue;
                        }
                        let groups = Arc::new(self.chunk_groups(store, c, false)?);
                        rc.put(&self.signature, c as u32, groups.clone());
                        self.account_scan(&mut stats, ctx, c, rows);
                        fold(&mut result, &groups)?;
                    } else {
                        let groups = self.chunk_groups(store, c, false)?;
                        self.account_scan(&mut stats, ctx, c, rows);
                        fold(&mut result, &groups)?;
                    }
                }
                ChunkActivity::Partial => {
                    let groups = self.chunk_groups(store, c, true)?;
                    self.account_scan(&mut stats, ctx, c, rows);
                    fold(&mut result, &groups)?;
                }
            }
        }
        Ok((result, stats))
    }

    /// Record scan costs for chunk `c`: cells touched and the modeled I/O
    /// of bringing each touched column chunk into the uncompressed layer.
    fn account_scan(&self, stats: &mut ScanStats, ctx: &ExecContext, c: usize, rows: u64) {
        stats.chunks_scanned += 1;
        stats.rows_scanned += rows;
        stats.cells_scanned += rows * self.touched.len() as u64;
        if let Some(tiered) = &ctx.tiered {
            for (name, col) in &self.touched {
                let chunk = &col.chunks[c];
                let uncompressed = chunk.dict.heap_bytes() + chunk.elements.heap_bytes();
                // Modeled compressed size: the paper's Zippy achieves ~4x on
                // chunked payloads; the exact per-chunk compression is
                // measured by the Table 3 experiment, not per access.
                let compressed = (uncompressed / 4).max(1);
                let cost = tiered.touch(&(name.clone(), c as u32), uncompressed, compressed);
                stats.disk_bytes += cost.disk_bytes;
                stats.decompressed_bytes += cost.decompressed_bytes;
            }
        }
    }

    /// Group one chunk. `filtered` says whether the row filter applies
    /// (fully active chunks skip it by definition).
    fn chunk_groups(&self, store: &DataStore, c: usize, filtered: bool) -> Result<ChunkGroups> {
        let rows = store.chunk_rows(c);
        let key_chunks: Vec<_> = self.key_cols.iter().map(|col| &col.chunks[c]).collect();

        // Fast path: the paper's counts-array loop.
        if !filtered && self.key_cols.len() == 1 && self.aggs.len() == 1 {
            if let AggKind::Count = self.aggs[0].kind {
                let n = key_chunks[0].dict.len() as usize;
                let mut counts = vec![0u64; n];
                key_chunks[0].elements.for_each(|id| counts[id as usize] += 1);
                let col = &self.key_cols[0];
                return Ok(counts
                    .into_iter()
                    .enumerate()
                    .filter(|(_, n)| *n > 0)
                    .map(|(id, n)| {
                        let key: Box<[Value]> =
                            vec![col.dict.value(key_chunks[0].dict.global_id_of(id as u32))].into();
                        (key, vec![AggState::Count(n)])
                    })
                    .collect());
            }
        }

        let filter = if filtered {
            match &self.filter {
                Some(plan) => Some(CompiledFilter::compile(plan, c)?),
                None => None,
            }
        } else {
            None
        };

        // Pass A: group index per row (u32::MAX = filtered out).
        let sizes: Vec<usize> = key_chunks.iter().map(|ch| ch.dict.len() as usize).collect();
        let dense_capacity: Option<usize> =
            sizes.iter().try_fold(1usize, |acc, &n| {
                let prod = acc.checked_mul(n.max(1))?;
                (prod <= DENSE_GROUP_LIMIT).then_some(prod)
            });

        let mut group_of_row: Vec<u32> = vec![u32::MAX; rows];
        // Group key chunk-ids, indexed by group id (hash path); dense path
        // decodes ids from the group index directly.
        let mut hash_keys: Vec<Box<[u32]>> = Vec::new();
        let group_count;

        match dense_capacity {
            Some(capacity) => {
                for (row, slot) in group_of_row.iter_mut().enumerate() {
                    if let Some(f) = &filter {
                        if !f.matches(row)? {
                            continue;
                        }
                    }
                    let mut idx = 0usize;
                    for (ch, n) in key_chunks.iter().zip(&sizes) {
                        idx = idx * (*n).max(1) + ch.elements.get(row) as usize;
                    }
                    *slot = idx as u32;
                }
                group_count = capacity.max(1);
            }
            None => {
                let mut map: FxHashMap<Box<[u32]>, u32> = FxHashMap::default();
                let mut key_buf: Vec<u32> = vec![0; key_chunks.len()];
                for (row, slot) in group_of_row.iter_mut().enumerate() {
                    if let Some(f) = &filter {
                        if !f.matches(row)? {
                            continue;
                        }
                    }
                    for (k, ch) in key_buf.iter_mut().zip(&key_chunks) {
                        *k = ch.elements.get(row);
                    }
                    let next = map.len() as u32;
                    let idx = *map.entry(key_buf.clone().into_boxed_slice()).or_insert_with(|| {
                        hash_keys.push(key_buf.clone().into_boxed_slice());
                        next
                    });
                    *slot = idx;
                }
                group_count = hash_keys.len().max(1);
            }
        }

        let mut seen = vec![false; group_count];
        for &g in &group_of_row {
            if g != u32::MAX {
                seen[g as usize] = true;
            }
        }

        // Pass B: per-aggregate tight loops.
        let mut accs: Vec<ChunkAcc> = Vec::with_capacity(self.aggs.len());
        for agg in &self.aggs {
            accs.push(ChunkAcc::run(agg, c, group_count, &group_of_row)?);
        }

        // Convert to value-domain groups.
        let mut out: ChunkGroups = Vec::with_capacity(seen.iter().filter(|s| **s).count());
        for g in 0..group_count {
            if !seen[g] {
                continue;
            }
            let key: Box<[Value]> = match dense_capacity {
                Some(_) => {
                    // Decode the mixed-radix dense index back into per-key
                    // chunk ids (most-significant key first).
                    let mut ids = vec![0u32; key_chunks.len()];
                    let mut rem = g;
                    for (slot, &n) in ids.iter_mut().zip(&sizes).rev() {
                        let n = n.max(1);
                        *slot = (rem % n) as u32;
                        rem /= n;
                    }
                    ids.iter()
                        .zip(&key_chunks)
                        .zip(&self.key_cols)
                        .map(|((&id, ch), col)| col.dict.value(ch.dict.global_id_of(id)))
                        .collect()
                }
                None => hash_keys[g]
                    .iter()
                    .zip(&key_chunks)
                    .zip(&self.key_cols)
                    .map(|((&id, ch), col)| col.dict.value(ch.dict.global_id_of(id)))
                    .collect(),
            };
            let states: Vec<AggState> = accs.iter().map(|acc| acc.state_of(g)).collect();
            out.push((key, states));
        }
        Ok(out)
    }
}

fn require_arg_type(func: AggFunc, col: &Option<Arc<StoredColumn>>) -> Result<DataType> {
    col.as_ref()
        .map(|c| c.data_type())
        .ok_or_else(|| Error::Internal(format!("{}(*) is only valid for COUNT", func.name())))
}

fn fold(result: &mut PartialResult, groups: &ChunkGroups) -> Result<()> {
    for (key, states) in groups.iter() {
        match result.groups.entry(key.clone()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(states.clone());
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                for (a, b) in e.get_mut().iter_mut().zip(states) {
                    a.merge(b)?;
                }
            }
        }
    }
    Ok(())
}

/// Per-chunk accumulators for one aggregate.
enum ChunkAcc {
    Count(Vec<u64>),
    SumInt(Vec<i64>),
    SumFloat(Vec<f64>),
    /// Extreme chunk-id per group (chunk-id order == value order) plus the
    /// owning chunk's translation tables.
    MinMax { best: Vec<u32>, is_min: bool, values: Vec<Value> },
    Avg { sum: Vec<f64>, count: Vec<u64> },
    Distinct(Vec<KmvSketch>),
}

impl ChunkAcc {
    /// Run the pass-B loop for `agg` over `group_of_row`.
    fn run(agg: &AggPlan, c: usize, group_count: usize, group_of_row: &[u32]) -> Result<ChunkAcc> {
        let arg_chunk = agg.col.as_ref().map(|col| &col.chunks[c]);
        Ok(match &agg.kind {
            AggKind::Count => {
                let mut counts = vec![0u64; group_count];
                for &g in group_of_row {
                    if g != u32::MAX {
                        counts[g as usize] += 1;
                    }
                }
                ChunkAcc::Count(counts)
            }
            AggKind::SumInt => {
                let col = agg.col.as_ref().expect("SUM has an argument");
                let chunk = arg_chunk.expect("SUM has an argument");
                // Tabulate the numeric value per chunk-id once.
                let table: Vec<i64> = (0..chunk.dict.len())
                    .map(|cid| match col.dict.value(chunk.dict.global_id_of(cid)) {
                        Value::Int(v) => v,
                        other => unreachable!("typed as Int, got {other}"),
                    })
                    .collect();
                let mut sums = vec![0i64; group_count];
                for (row, &g) in group_of_row.iter().enumerate() {
                    if g != u32::MAX {
                        sums[g as usize] =
                            sums[g as usize].wrapping_add(table[chunk.elements.get(row) as usize]);
                    }
                }
                ChunkAcc::SumInt(sums)
            }
            AggKind::SumFloat => {
                let chunk = arg_chunk.expect("SUM has an argument");
                let table = float_table(agg, chunk);
                let mut sums = vec![0f64; group_count];
                for (row, &g) in group_of_row.iter().enumerate() {
                    if g != u32::MAX {
                        sums[g as usize] += table[chunk.elements.get(row) as usize];
                    }
                }
                ChunkAcc::SumFloat(sums)
            }
            AggKind::Avg => {
                let chunk = arg_chunk.expect("AVG has an argument");
                let table = float_table(agg, chunk);
                let mut sum = vec![0f64; group_count];
                let mut count = vec![0u64; group_count];
                for (row, &g) in group_of_row.iter().enumerate() {
                    if g != u32::MAX {
                        sum[g as usize] += table[chunk.elements.get(row) as usize];
                        count[g as usize] += 1;
                    }
                }
                ChunkAcc::Avg { sum, count }
            }
            AggKind::MinMax { is_min } => {
                let col = agg.col.as_ref().expect("MIN/MAX has an argument");
                let chunk = arg_chunk.expect("MIN/MAX has an argument");
                let mut best = vec![u32::MAX; group_count];
                for (row, &g) in group_of_row.iter().enumerate() {
                    if g == u32::MAX {
                        continue;
                    }
                    let id = chunk.elements.get(row);
                    let slot = &mut best[g as usize];
                    if *slot == u32::MAX
                        || (*is_min && id < *slot)
                        || (!*is_min && id > *slot)
                    {
                        *slot = id;
                    }
                }
                // Translate extremes to values once.
                let values: Vec<Value> = (0..chunk.dict.len())
                    .map(|cid| col.dict.value(chunk.dict.global_id_of(cid)))
                    .collect();
                ChunkAcc::MinMax { best, is_min: *is_min, values }
            }
            AggKind::Distinct { m } => {
                let col = agg.col.as_ref().expect("COUNT DISTINCT has an argument");
                let chunk = arg_chunk.expect("COUNT DISTINCT has an argument");
                // Hash each distinct value once per chunk.
                let hashes: Vec<u64> = (0..chunk.dict.len())
                    .map(|cid| fx_hash64(&col.dict.value(chunk.dict.global_id_of(cid))))
                    .collect();
                let mut sketches = vec![KmvSketch::new(*m); group_count];
                for (row, &g) in group_of_row.iter().enumerate() {
                    if g != u32::MAX {
                        sketches[g as usize].offer(hashes[chunk.elements.get(row) as usize]);
                    }
                }
                ChunkAcc::Distinct(sketches)
            }
        })
    }

    fn state_of(&self, g: usize) -> AggState {
        match self {
            ChunkAcc::Count(v) => AggState::Count(v[g]),
            ChunkAcc::SumInt(v) => AggState::SumInt(v[g]),
            ChunkAcc::SumFloat(v) => AggState::SumFloat(v[g]),
            ChunkAcc::MinMax { best, is_min, values } => {
                let v = (best[g] != u32::MAX).then(|| values[best[g] as usize].clone());
                if *is_min {
                    AggState::Min(v)
                } else {
                    AggState::Max(v)
                }
            }
            ChunkAcc::Avg { sum, count } => AggState::Avg { sum: sum[g], count: count[g] },
            ChunkAcc::Distinct(v) => AggState::Distinct(v[g].clone()),
        }
    }
}

fn float_table(agg: &AggPlan, chunk: &crate::column::ColumnChunk) -> Vec<f64> {
    let col = agg.col.as_ref().expect("aggregate has an argument");
    (0..chunk.dict.len())
        .map(|cid| col.dict.value(chunk.dict.global_id_of(cid)).numeric())
        .collect()
}

/// A filter compiled against one chunk.
struct CompiledFilter<'a> {
    pred: Pred,
    plan: &'a FilterPlan,
    /// Chunk-dictionary value caches per filter column (for row fallback).
    caches: Vec<Vec<Value>>,
    chunk: usize,
}

enum Pred {
    Const(bool),
    /// Truth table over one column's chunk-ids.
    Table { col: usize, table: Vec<bool> },
    And(Vec<Pred>),
    Or(Vec<Pred>),
    Not(Box<Pred>),
    /// Multi-column subtree: evaluate per row.
    RowEval(Expr),
}

impl<'a> CompiledFilter<'a> {
    fn compile(plan: &'a FilterPlan, chunk: usize) -> Result<CompiledFilter<'a>> {
        let caches: Vec<Vec<Value>> = plan
            .cols
            .iter()
            .map(|(_, col)| {
                let ch = &col.chunks[chunk];
                (0..ch.dict.len()).map(|cid| col.dict.value(ch.dict.global_id_of(cid))).collect()
            })
            .collect();
        let pred = compile_pred(&plan.expr, plan, &caches)?;
        Ok(CompiledFilter { pred, plan, caches, chunk })
    }

    fn matches(&self, row: usize) -> Result<bool> {
        self.eval(&self.pred, row)
    }

    fn eval(&self, pred: &Pred, row: usize) -> Result<bool> {
        Ok(match pred {
            Pred::Const(b) => *b,
            Pred::Table { col, table } => {
                let chunk = &self.plan.cols[*col].1.chunks[self.chunk];
                table[chunk.elements.get(row) as usize]
            }
            Pred::And(children) => {
                for c in children {
                    if !self.eval(c, row)? {
                        return Ok(false);
                    }
                }
                true
            }
            Pred::Or(children) => {
                for c in children {
                    if self.eval(c, row)? {
                        return Ok(true);
                    }
                }
                false
            }
            Pred::Not(inner) => !self.eval(inner, row)?,
            Pred::RowEval(expr) => {
                let ctx = FilterRowContext { filter: self, row };
                truthy(&eval_expr(expr, &ctx)?)
            }
        })
    }
}

fn compile_pred(expr: &Expr, plan: &FilterPlan, caches: &[Vec<Value>]) -> Result<Pred> {
    use pd_sql::{BinaryOp, UnaryOp};
    match expr {
        Expr::Binary { op: BinaryOp::And, lhs, rhs } => Ok(Pred::And(vec![
            compile_pred(lhs, plan, caches)?,
            compile_pred(rhs, plan, caches)?,
        ])),
        Expr::Binary { op: BinaryOp::Or, lhs, rhs } => Ok(Pred::Or(vec![
            compile_pred(lhs, plan, caches)?,
            compile_pred(rhs, plan, caches)?,
        ])),
        Expr::Unary { op: UnaryOp::Not, expr } => {
            Ok(Pred::Not(Box::new(compile_pred(expr, plan, caches)?)))
        }
        other => {
            let mut names = Vec::new();
            other.referenced_columns(&mut names);
            match names.len() {
                0 => {
                    let empty: &[(&str, Value)] = &[];
                    Ok(Pred::Const(truthy(&eval_expr(other, empty)?)))
                }
                1 => {
                    let col = plan
                        .cols
                        .iter()
                        .position(|(n, _)| *n == names[0])
                        .expect("filter columns were collected from this expression");
                    // Tabulate the predicate over the column's chunk values.
                    let table: Vec<bool> = caches[col]
                        .iter()
                        .map(|v| {
                            let ctx: &[(&str, Value)] = &[(names[0].as_str(), v.clone())];
                            Ok::<bool, Error>(truthy(&eval_expr(other, ctx)?))
                        })
                        .collect::<Result<_>>()?;
                    Ok(Pred::Table { col, table })
                }
                _ => Ok(Pred::RowEval(other.clone())),
            }
        }
    }
}

/// Row context for multi-column filter subtrees.
struct FilterRowContext<'a> {
    filter: &'a CompiledFilter<'a>,
    row: usize,
}

impl RowContext for FilterRowContext<'_> {
    fn column(&self, name: &str) -> Result<Value> {
        let idx = self
            .filter
            .plan
            .cols
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| Error::Schema(format!("unknown column `{name}`")))?;
        let chunk = &self.filter.plan.cols[idx].1.chunks[self.filter.chunk];
        Ok(self.filter.caches[idx][chunk.elements.get(self.row) as usize].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_state_finalize_values() {
        assert_eq!(AggState::Count(7).finalize(), Value::Int(7));
        assert_eq!(AggState::SumInt(-3).finalize(), Value::Int(-3));
        assert_eq!(AggState::SumFloat(2.5).finalize(), Value::Float(2.5));
        assert_eq!(AggState::Min(None).finalize(), Value::Null);
        assert_eq!(AggState::Max(Some(Value::from("z"))).finalize(), Value::from("z"));
        assert_eq!(AggState::Avg { sum: 10.0, count: 4 }.finalize(), Value::Float(2.5));
        assert_eq!(AggState::Avg { sum: 0.0, count: 0 }.finalize(), Value::Null);
    }

    #[test]
    fn agg_state_merge_mismatch_is_an_error() {
        let mut a = AggState::Count(1);
        assert!(a.merge(&AggState::SumInt(1)).is_err());
        let mut m = AggState::Min(Some(Value::Int(5)));
        m.merge(&AggState::Min(Some(Value::Int(3)))).unwrap();
        assert_eq!(m.finalize(), Value::Int(3));
        // Merging an empty Min keeps the present value.
        m.merge(&AggState::Min(None)).unwrap();
        assert_eq!(m.finalize(), Value::Int(3));
    }

    #[test]
    fn partial_results_merge_group_wise() {
        let mut a = PartialResult::default();
        a.groups.insert(
            vec![Value::from("x")].into_boxed_slice(),
            vec![AggState::Count(2)],
        );
        let mut b = PartialResult::default();
        b.groups.insert(
            vec![Value::from("x")].into_boxed_slice(),
            vec![AggState::Count(3)],
        );
        b.groups.insert(
            vec![Value::from("y")].into_boxed_slice(),
            vec![AggState::Count(1)],
        );
        a.merge(b).unwrap();
        assert_eq!(a.groups.len(), 2);
        let key: Box<[Value]> = vec![Value::from("x")].into_boxed_slice();
        assert_eq!(a.groups[&key], vec![AggState::Count(5)]);
    }

    #[test]
    fn query_result_helpers() {
        let r = QueryResult {
            columns: vec!["a".into(), "b".into()],
            rows: vec![Row(vec![Value::Int(1), Value::from("x")])],
        };
        assert_eq!(r.column_index("b"), Some(1));
        assert_eq!(r.column_index("zz"), None);
        let text = r.render();
        assert!(text.contains('a') && text.contains('x'));
    }
}
