//! Dictionary-code group-by kernels (§2.4's inner loops).
//!
//! Everything in this module operates on the raw `u32` element codes of a
//! chunk — never on [`Value`]s — so the hot loops are array arithmetic:
//!
//! - [`filter_mask`] compiles a `WHERE` tree against one chunk into a
//!   packed [`BitVec`]: single-column subtrees are tabulated once per
//!   chunk-dictionary entry and evaluated with one lookup per row, `AND` /
//!   `OR` / `NOT` combine whole masks word-wise, and only genuinely
//!   multi-column subtrees fall back to per-row evaluation.
//! - [`count_single`] / [`count_fused`] are the paper's
//!   `counts[elements[row]]++` loop, for one key and for two keys fused
//!   into a single flat array index — no per-row group map, no `Value`
//!   allocation.
//! - [`group_codes`] computes the per-row group index for the general case
//!   (dense mixed-radix when the key-dictionary product is small, a hash
//!   table of code tuples otherwise).
//! - [`ChunkAcc`] accumulates each aggregate over the group indices with a
//!   per-aggregate tight loop, translating codes to values only once per
//!   distinct chunk-dictionary entry.
//!
//! Each kernel dispatches on [`CodesView`] once per chunk and then runs a
//! monomorphized loop, so the element representation (const / bit-set / u8
//! / u16 / u32) costs no per-row branch.

use crate::column::ColumnChunk;
use crate::count_distinct::KmvSketch;
use crate::exec::{AggKind, AggPlan, AggState, FilterPlan};
use pd_common::{fx_hash64, BitVec, Error, FloatSum, FxHashMap, Result, Value};
use pd_encoding::CodesView;
use pd_sql::{eval_expr, truthy, Expr, RowContext};

/// Per-chunk dense-grouping limit: products of key-dictionary sizes up to
/// this use a flat array; larger products fall back to a hash map.
pub(crate) const DENSE_GROUP_LIMIT: usize = 1 << 16;

/// Dispatch once on the representation, monomorphize the loop body.
macro_rules! with_codes {
    ($view:expr, |$get:ident| $body:expr) => {
        match $view {
            CodesView::Const { .. } => {
                let $get = |_row: usize| 0u32;
                $body
            }
            CodesView::Bits(bits) => {
                let $get = |row: usize| bits.get(row) as u32;
                $body
            }
            CodesView::U8(v) => {
                let $get = |row: usize| v[row] as u32;
                $body
            }
            CodesView::U16(v) => {
                let $get = |row: usize| v[row] as u32;
                $body
            }
            CodesView::U32(v) => {
                let $get = |row: usize| v[row];
                $body
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Filter masks
// ---------------------------------------------------------------------------

/// Compile `plan` against chunk `chunk` and tabulate it into a row mask.
///
/// Bit `r` is set iff row `r` satisfies the filter.
pub(crate) fn filter_mask(plan: &FilterPlan, chunk: usize, rows: usize) -> Result<BitVec> {
    // Cache each filter column's chunk-dictionary values once: predicates
    // are then evaluated at most once per distinct value, not per row.
    let caches: Vec<Vec<Value>> = plan
        .cols
        .iter()
        .map(|(_, col)| {
            let ch = &col.chunks[chunk];
            (0..ch.dict.len()).map(|cid| col.dict.value(ch.dict.global_id_of(cid))).collect()
        })
        .collect();
    let pred = compile_pred(&plan.expr, plan, &caches)?;
    pred_mask(&pred, plan, &caches, chunk, rows, None)
}

/// A filter subtree compiled against one chunk.
enum Pred {
    Const(bool),
    /// Truth table over one column's chunk-ids.
    Table {
        col: usize,
        table: Vec<bool>,
    },
    And(Vec<Pred>),
    Or(Vec<Pred>),
    Not(Box<Pred>),
    /// Multi-column subtree: evaluate per row.
    RowEval(Expr),
}

fn compile_pred(expr: &Expr, plan: &FilterPlan, caches: &[Vec<Value>]) -> Result<Pred> {
    use pd_sql::{BinaryOp, UnaryOp};
    match expr {
        Expr::Binary { op: BinaryOp::And, lhs, rhs } => {
            Ok(Pred::And(vec![compile_pred(lhs, plan, caches)?, compile_pred(rhs, plan, caches)?]))
        }
        Expr::Binary { op: BinaryOp::Or, lhs, rhs } => {
            Ok(Pred::Or(vec![compile_pred(lhs, plan, caches)?, compile_pred(rhs, plan, caches)?]))
        }
        Expr::Unary { op: UnaryOp::Not, expr } => {
            Ok(Pred::Not(Box::new(compile_pred(expr, plan, caches)?)))
        }
        other => {
            let mut names = Vec::new();
            other.referenced_columns(&mut names);
            match names.len() {
                0 => {
                    let empty: &[(&str, Value)] = &[];
                    Ok(Pred::Const(truthy(&eval_expr(other, empty)?)))
                }
                1 => {
                    let col = plan
                        .cols
                        .iter()
                        .position(|(n, _)| *n == names[0])
                        .expect("filter columns were collected from this expression");
                    // Tabulate the predicate over the column's chunk values.
                    let table: Vec<bool> = caches[col]
                        .iter()
                        .map(|v| {
                            let ctx: &[(&str, Value)] = &[(names[0].as_str(), v.clone())];
                            Ok::<bool, Error>(truthy(&eval_expr(other, ctx)?))
                        })
                        .collect::<Result<_>>()?;
                    Ok(Pred::Table { col, table })
                }
                _ => Ok(Pred::RowEval(other.clone())),
            }
        }
    }
}

/// Does this subtree contain a per-row evaluation leaf?
fn has_row_eval(pred: &Pred) -> bool {
    match pred {
        Pred::Const(_) | Pred::Table { .. } => false,
        Pred::And(children) | Pred::Or(children) => children.iter().any(has_row_eval),
        Pred::Not(inner) => has_row_eval(inner),
        Pred::RowEval(_) => true,
    }
}

/// Evaluate `pred` into a mask.
///
/// `scope` is the set of rows whose bits the caller will actually use: an
/// `AND` passes its accumulated mask down so expensive `RowEval` subtrees
/// run only on rows that survived the cheaper siblings (the per-row
/// short-circuit of a row-at-a-time evaluator, recovered in mask form).
/// Outside `scope` the returned bits are unspecified — every scope
/// provider intersects the child result with that scope.
fn pred_mask(
    pred: &Pred,
    plan: &FilterPlan,
    caches: &[Vec<Value>],
    chunk: usize,
    rows: usize,
    scope: Option<&BitVec>,
) -> Result<BitVec> {
    Ok(match pred {
        Pred::Const(b) => BitVec::filled(rows, *b),
        Pred::Table { col, table } => {
            let view = plan.cols[*col].1.chunks[chunk].codes();
            with_codes!(view, |get| (0..rows).map(|r| table[get(r) as usize]).collect())
        }
        Pred::And(children) => {
            let mut mask = match scope {
                Some(s) => s.clone(),
                None => BitVec::filled(rows, true),
            };
            // Tabulated (cheap) children first, so per-row subtrees see
            // the narrowest possible scope.
            let (cheap, costly): (Vec<&Pred>, Vec<&Pred>) =
                children.iter().partition(|c| !has_row_eval(c));
            for c in cheap.into_iter().chain(costly) {
                if mask.none() {
                    break;
                }
                let child = pred_mask(c, plan, caches, chunk, rows, Some(&mask))?;
                mask.and_assign(&child);
            }
            mask
        }
        Pred::Or(children) => {
            let mut mask = BitVec::filled(rows, false);
            // Cheap disjuncts first; per-row disjuncts then only evaluate
            // rows no cheap sibling already satisfied (and that are in
            // scope) — the other half of the per-row short-circuit.
            let (cheap, costly): (Vec<&Pred>, Vec<&Pred>) =
                children.iter().partition(|c| !has_row_eval(c));
            for c in &cheap {
                if mask.all() {
                    break;
                }
                mask.or_assign(&pred_mask(c, plan, caches, chunk, rows, scope)?);
            }
            for c in costly {
                let mut remaining = match scope {
                    Some(s) => s.clone(),
                    None => BitVec::filled(rows, true),
                };
                let mut satisfied = mask.clone();
                satisfied.negate();
                remaining.and_assign(&satisfied);
                if remaining.none() {
                    break;
                }
                // Bits outside `remaining` are unspecified in the child
                // result; clear them before accumulating.
                let mut child = pred_mask(c, plan, caches, chunk, rows, Some(&remaining))?;
                child.and_assign(&remaining);
                mask.or_assign(&child);
            }
            mask
        }
        Pred::Not(inner) => {
            let mut mask = pred_mask(inner, plan, caches, chunk, rows, scope)?;
            mask.negate();
            mask
        }
        Pred::RowEval(expr) => match scope {
            None => {
                let mut mask = BitVec::with_capacity(rows);
                for row in 0..rows {
                    let ctx = FilterRowContext { plan, caches, chunk, row };
                    mask.push(truthy(&eval_expr(expr, &ctx)?));
                }
                mask
            }
            Some(s) => {
                let mut mask = BitVec::filled(rows, false);
                for row in s.iter_ones() {
                    let ctx = FilterRowContext { plan, caches, chunk, row };
                    if truthy(&eval_expr(expr, &ctx)?) {
                        mask.set(row, true);
                    }
                }
                mask
            }
        },
    })
}

/// Row context for multi-column filter subtrees.
struct FilterRowContext<'a> {
    plan: &'a FilterPlan,
    caches: &'a [Vec<Value>],
    chunk: usize,
    row: usize,
}

impl RowContext for FilterRowContext<'_> {
    fn column(&self, name: &str) -> Result<Value> {
        let idx = self
            .plan
            .cols
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| Error::Schema(format!("unknown column `{name}`")))?;
        let chunk = &self.plan.cols[idx].1.chunks[self.chunk];
        Ok(self.caches[idx][chunk.elements.get(self.row) as usize].clone())
    }
}

// ---------------------------------------------------------------------------
// Count kernels — the paper's `counts[elements[row]]++`
// ---------------------------------------------------------------------------

/// Single-key `COUNT(*)`: one pass over the codes into a flat array.
pub(crate) fn count_single(
    view: CodesView<'_>,
    distinct: usize,
    mask: Option<&BitVec>,
) -> Vec<u64> {
    let rows = view.len();
    match mask {
        None => match view {
            // Degenerate representations count in O(1) / O(words).
            CodesView::Const { len } => vec![len as u64],
            CodesView::Bits(bits) => {
                let ones = bits.count_ones() as u64;
                vec![rows as u64 - ones, ones]
            }
            _ => {
                let mut counts = vec![0u64; distinct];
                with_codes!(view, |get| {
                    for row in 0..rows {
                        counts[get(row) as usize] += 1;
                    }
                });
                counts
            }
        },
        Some(mask) => {
            let mut counts = vec![0u64; distinct.max(1)];
            with_codes!(view, |get| {
                for row in mask.iter_ones() {
                    counts[get(row) as usize] += 1;
                }
            });
            counts
        }
    }
}

/// Two-key fused `COUNT(*)`: `counts[code_a * nb + code_b]++` over a flat
/// array of size `na * nb` (callers guarantee the product is dense-sized).
pub(crate) fn count_fused(
    a: CodesView<'_>,
    b: CodesView<'_>,
    nb: usize,
    capacity: usize,
    mask: Option<&BitVec>,
) -> Vec<u64> {
    let rows = a.len();
    let mut counts = vec![0u64; capacity.max(1)];
    with_codes!(a, |get_a| with_codes!(b, |get_b| {
        match mask {
            None => {
                for row in 0..rows {
                    counts[get_a(row) as usize * nb + get_b(row) as usize] += 1;
                }
            }
            Some(mask) => {
                for row in mask.iter_ones() {
                    counts[get_a(row) as usize * nb + get_b(row) as usize] += 1;
                }
            }
        }
    }));
    counts
}

// ---------------------------------------------------------------------------
// Group-index computation (pass A of the general path)
// ---------------------------------------------------------------------------

/// Per-row group indices for one chunk. `u32::MAX` marks a filtered row.
pub(crate) struct GroupIndex {
    pub group_of_row: Vec<u32>,
    /// Number of group slots (dense capacity, or distinct hash keys).
    pub group_count: usize,
    /// Code tuples per group id — `None` on the dense path, where ids
    /// decode positionally.
    pub hash_keys: Option<Vec<Box<[u32]>>>,
}

/// Compute group indices for `key_chunks` over `rows` rows.
///
/// `dense_capacity` is the checked product of the key-dictionary sizes if
/// it fits [`DENSE_GROUP_LIMIT`] — the caller computes it once per chunk.
pub(crate) fn group_codes(
    key_chunks: &[&ColumnChunk],
    sizes: &[usize],
    rows: usize,
    mask: Option<&BitVec>,
    dense_capacity: Option<usize>,
) -> GroupIndex {
    match dense_capacity {
        Some(capacity) => {
            let group_of_row = match key_chunks.len() {
                0 => match mask {
                    None => vec![0u32; rows],
                    Some(m) => (0..rows).map(|r| if m.get(r) { 0 } else { u32::MAX }).collect(),
                },
                1 => dense_one(key_chunks[0].codes(), rows, mask),
                2 => dense_two(key_chunks[0].codes(), key_chunks[1].codes(), sizes[1], rows, mask),
                _ => dense_many(key_chunks, sizes, rows, mask),
            };
            GroupIndex { group_of_row, group_count: capacity.max(1), hash_keys: None }
        }
        None => {
            let mut map: FxHashMap<Box<[u32]>, u32> = FxHashMap::default();
            let mut hash_keys: Vec<Box<[u32]>> = Vec::new();
            let mut key_buf: Vec<u32> = vec![0; key_chunks.len()];
            let mut group_of_row: Vec<u32> = vec![u32::MAX; rows];
            for (row, slot) in group_of_row.iter_mut().enumerate() {
                if let Some(m) = mask {
                    if !m.get(row) {
                        continue;
                    }
                }
                for (k, ch) in key_buf.iter_mut().zip(key_chunks) {
                    *k = ch.elements.get(row);
                }
                let next = map.len() as u32;
                let idx = *map.entry(key_buf.clone().into_boxed_slice()).or_insert_with(|| {
                    hash_keys.push(key_buf.clone().into_boxed_slice());
                    next
                });
                *slot = idx;
            }
            let group_count = hash_keys.len().max(1);
            GroupIndex { group_of_row, group_count, hash_keys: Some(hash_keys) }
        }
    }
}

fn dense_one(view: CodesView<'_>, rows: usize, mask: Option<&BitVec>) -> Vec<u32> {
    with_codes!(view, |get| match mask {
        None => (0..rows).map(get).collect(),
        Some(m) => (0..rows).map(|r| if m.get(r) { get(r) } else { u32::MAX }).collect(),
    })
}

fn dense_two(
    a: CodesView<'_>,
    b: CodesView<'_>,
    nb: usize,
    rows: usize,
    mask: Option<&BitVec>,
) -> Vec<u32> {
    let nb = nb.max(1) as u32;
    with_codes!(a, |get_a| with_codes!(b, |get_b| {
        let fused = |r: usize| get_a(r) * nb + get_b(r);
        match mask {
            None => (0..rows).map(fused).collect(),
            Some(m) => (0..rows).map(|r| if m.get(r) { fused(r) } else { u32::MAX }).collect(),
        }
    }))
}

fn dense_many(
    key_chunks: &[&ColumnChunk],
    sizes: &[usize],
    rows: usize,
    mask: Option<&BitVec>,
) -> Vec<u32> {
    let mut group_of_row: Vec<u32> = vec![u32::MAX; rows];
    for (row, slot) in group_of_row.iter_mut().enumerate() {
        if let Some(m) = mask {
            if !m.get(row) {
                continue;
            }
        }
        let mut idx = 0usize;
        for (ch, n) in key_chunks.iter().zip(sizes) {
            idx = idx * (*n).max(1) + ch.elements.get(row) as usize;
        }
        *slot = idx as u32;
    }
    group_of_row
}

// ---------------------------------------------------------------------------
// Aggregate accumulators (pass B)
// ---------------------------------------------------------------------------

/// Per-chunk accumulators for one aggregate.
///
/// Float sums accumulate into [`FloatSum`] superaccumulators so the chunk
/// state is *exact* — the fold across chunks, threads and shards can then
/// merge states in any grouping and still produce bit-identical results.
pub(crate) enum ChunkAcc {
    Count(Vec<u64>),
    SumInt(Vec<i64>),
    SumFloat(Vec<FloatSum>),
    /// Extreme chunk-id per group (chunk-id order == value order) plus the
    /// owning chunk's translation tables.
    MinMax {
        best: Vec<u32>,
        is_min: bool,
        values: Vec<Value>,
    },
    Avg {
        sum: Vec<FloatSum>,
        count: Vec<u64>,
    },
    Distinct(Vec<KmvSketch>),
}

impl ChunkAcc {
    /// Run the pass-B loop for `agg` over `group_of_row`.
    pub(crate) fn run(
        agg: &AggPlan,
        c: usize,
        group_count: usize,
        group_of_row: &[u32],
    ) -> Result<ChunkAcc> {
        let arg_chunk = agg.col.as_ref().map(|col| &col.chunks[c]);
        Ok(match &agg.kind {
            AggKind::Count => {
                let mut counts = vec![0u64; group_count];
                for &g in group_of_row {
                    if g != u32::MAX {
                        counts[g as usize] += 1;
                    }
                }
                ChunkAcc::Count(counts)
            }
            AggKind::SumInt => {
                let col = agg.col.as_ref().expect("SUM has an argument");
                let chunk = arg_chunk.expect("SUM has an argument");
                // Tabulate the numeric value per chunk-id once.
                let table: Vec<i64> = (0..chunk.dict.len())
                    .map(|cid| match col.dict.value(chunk.dict.global_id_of(cid)) {
                        Value::Int(v) => v,
                        other => unreachable!("typed as Int, got {other}"),
                    })
                    .collect();
                let mut sums = vec![0i64; group_count];
                with_codes!(chunk.codes(), |get| {
                    for (row, &g) in group_of_row.iter().enumerate() {
                        if g != u32::MAX {
                            sums[g as usize] =
                                sums[g as usize].wrapping_add(table[get(row) as usize]);
                        }
                    }
                });
                ChunkAcc::SumInt(sums)
            }
            AggKind::SumFloat => {
                let chunk = arg_chunk.expect("SUM has an argument");
                let table = float_table(agg, chunk);
                let mut sums = vec![FloatSum::new(); group_count];
                with_codes!(chunk.codes(), |get| {
                    for (row, &g) in group_of_row.iter().enumerate() {
                        if g != u32::MAX {
                            sums[g as usize].add(table[get(row) as usize]);
                        }
                    }
                });
                ChunkAcc::SumFloat(sums)
            }
            AggKind::Avg => {
                let chunk = arg_chunk.expect("AVG has an argument");
                let table = float_table(agg, chunk);
                let mut sum = vec![FloatSum::new(); group_count];
                let mut count = vec![0u64; group_count];
                with_codes!(chunk.codes(), |get| {
                    for (row, &g) in group_of_row.iter().enumerate() {
                        if g != u32::MAX {
                            sum[g as usize].add(table[get(row) as usize]);
                            count[g as usize] += 1;
                        }
                    }
                });
                ChunkAcc::Avg { sum, count }
            }
            AggKind::MinMax { is_min } => {
                let col = agg.col.as_ref().expect("MIN/MAX has an argument");
                let chunk = arg_chunk.expect("MIN/MAX has an argument");
                let mut best = vec![u32::MAX; group_count];
                with_codes!(chunk.codes(), |get| {
                    for (row, &g) in group_of_row.iter().enumerate() {
                        if g == u32::MAX {
                            continue;
                        }
                        let id = get(row);
                        let slot = &mut best[g as usize];
                        if *slot == u32::MAX || (*is_min && id < *slot) || (!*is_min && id > *slot)
                        {
                            *slot = id;
                        }
                    }
                });
                // Translate extremes to values once.
                let values: Vec<Value> = (0..chunk.dict.len())
                    .map(|cid| col.dict.value(chunk.dict.global_id_of(cid)))
                    .collect();
                ChunkAcc::MinMax { best, is_min: *is_min, values }
            }
            AggKind::Distinct { m } => {
                let col = agg.col.as_ref().expect("COUNT DISTINCT has an argument");
                let chunk = arg_chunk.expect("COUNT DISTINCT has an argument");
                // Hash each distinct value once per chunk.
                let hashes: Vec<u64> = (0..chunk.dict.len())
                    .map(|cid| fx_hash64(&col.dict.value(chunk.dict.global_id_of(cid))))
                    .collect();
                let mut sketches = vec![KmvSketch::new(*m); group_count];
                with_codes!(chunk.codes(), |get| {
                    for (row, &g) in group_of_row.iter().enumerate() {
                        if g != u32::MAX {
                            sketches[g as usize].offer(hashes[get(row) as usize]);
                        }
                    }
                });
                ChunkAcc::Distinct(sketches)
            }
        })
    }

    pub(crate) fn state_of(&self, g: usize) -> AggState {
        match self {
            ChunkAcc::Count(v) => AggState::Count(v[g]),
            ChunkAcc::SumInt(v) => AggState::SumInt(v[g]),
            ChunkAcc::SumFloat(v) => AggState::SumFloat(Box::new(v[g].clone())),
            ChunkAcc::MinMax { best, is_min, values } => {
                let v = (best[g] != u32::MAX).then(|| values[best[g] as usize].clone());
                if *is_min {
                    AggState::Min(v)
                } else {
                    AggState::Max(v)
                }
            }
            ChunkAcc::Avg { sum, count } => {
                AggState::Avg { sum: Box::new(sum[g].clone()), count: count[g] }
            }
            ChunkAcc::Distinct(v) => AggState::Distinct(v[g].clone()),
        }
    }
}

fn float_table(agg: &AggPlan, chunk: &ColumnChunk) -> Vec<f64> {
    let col = agg.col.as_ref().expect("aggregate has an argument");
    (0..chunk.dict.len())
        .map(|cid| col.dict.value(chunk.dict.global_id_of(cid)).numeric())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_encoding::{Elements, ElementsMode};

    fn elements(ids: &[u32], distinct: u32) -> Elements {
        Elements::encode(ids, distinct, ElementsMode::Optimized)
    }

    #[test]
    fn count_single_matches_naive_for_every_repr() {
        for distinct in [1u32, 2, 5, 300, 70_000] {
            let ids: Vec<u32> = (0..500).map(|i| (i * 7 + 3) % distinct).collect();
            let e = elements(&ids, distinct);
            let counts = count_single(e.codes(), distinct as usize, None);
            let mut naive = vec![0u64; distinct as usize];
            for &id in &ids {
                naive[id as usize] += 1;
            }
            assert_eq!(counts, naive, "distinct={distinct}");
        }
    }

    #[test]
    fn count_single_respects_mask() {
        let ids: Vec<u32> = (0..100).map(|i| i % 4).collect();
        let e = elements(&ids, 4);
        let mask: BitVec = (0..100).map(|i| i % 2 == 0).collect();
        let counts = count_single(e.codes(), 4, Some(&mask));
        let mut naive = vec![0u64; 4];
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                naive[id as usize] += 1;
            }
        }
        assert_eq!(counts, naive);
    }

    #[test]
    fn count_fused_equals_pairwise_naive() {
        let a: Vec<u32> = (0..300).map(|i| i % 3).collect();
        let b: Vec<u32> = (0..300).map(|i| (i * 11) % 7).collect();
        let ea = elements(&a, 3);
        let eb = elements(&b, 7);
        let counts = count_fused(ea.codes(), eb.codes(), 7, 21, None);
        let mut naive = vec![0u64; 21];
        for i in 0..300 {
            naive[(a[i] * 7 + b[i]) as usize] += 1;
        }
        assert_eq!(counts, naive);
    }

    #[test]
    fn dense_group_codes_fuse_and_mask() {
        let a: Vec<u32> = (0..50).map(|i| i % 2).collect();
        let b: Vec<u32> = (0..50).map(|i| i % 5).collect();
        let ea = elements(&a, 2);
        let eb = elements(&b, 5);
        let mask: BitVec = (0..50).map(|i| i != 7).collect();
        let fused = dense_two(ea.codes(), eb.codes(), 5, 50, Some(&mask));
        for i in 0..50 {
            if i == 7 {
                assert_eq!(fused[i], u32::MAX);
            } else {
                assert_eq!(fused[i], a[i] * 5 + b[i]);
            }
        }
    }
}
