//! Dictionary-code group-by kernels (§2.4's inner loops).
//!
//! Everything in this module operates on the raw `u32` element codes of a
//! chunk — never on [`Value`]s — so the hot loops are array arithmetic:
//!
//! - [`filter_mask`] compiles a `WHERE` tree against one chunk into a
//!   packed [`BitVec`]: single-column subtrees are tabulated once per
//!   chunk-dictionary entry and evaluated with one lookup per row, `AND` /
//!   `OR` / `NOT` combine whole masks word-wise, and only genuinely
//!   multi-column subtrees fall back to per-row evaluation.
//! - [`count_single`] / [`count_fused`] are the paper's
//!   `counts[elements[row]]++` loop, for one key and for two keys fused
//!   into a single flat array index — no per-row group map, no `Value`
//!   allocation.
//! - [`group_codes`] computes the per-row group index for the general case
//!   (dense mixed-radix when the key-dictionary product is small, a hash
//!   table of code tuples otherwise).
//! - [`ChunkAcc`] accumulates each aggregate over the group indices with a
//!   per-aggregate tight loop, translating codes to values only once per
//!   distinct chunk-dictionary entry.
//!
//! Each kernel dispatches on [`CodesView`] once per chunk and then runs a
//! monomorphized loop, so the element representation (const / bit-set / u8
//! / u16 / u32) costs no per-row branch.

use crate::column::ColumnChunk;
use crate::count_distinct::KmvSketch;
use crate::exec::{AggKind, AggPlan, AggState, FilterPlan};
use pd_common::{fx_hash64, BitVec, Error, FloatSum, FxHashMap, Result, Value};
use pd_encoding::CodesView;
use pd_sql::{eval_expr, truthy, Expr, RowContext};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-chunk dense-grouping limit: products of key-dictionary sizes up to
/// this use a flat array; larger products fall back to a hash map.
pub(crate) const DENSE_GROUP_LIMIT: usize = 1 << 16;

/// A/B switches for the compressed-domain kernel fast paths.
///
/// Every path is asserted bit-identical to the materializing baseline —
/// the switches exist so equivalence tests and benches can pin either
/// side, not because results differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Consume `Elements` runs directly in count/sum kernels: a run of
    /// length `n` with code `c` contributes `n × weight(c)` without
    /// touching per-row codes.
    pub run_aware: bool,
    /// Accumulate dense float SUM/AVG into a per-group double-double
    /// (16 bytes/slot instead of a ~280-byte [`FloatSum`]), converting to
    /// the exact accumulator only for groups whose chunk-local sum is
    /// provably exact; other groups fall back to a materializing re-pass.
    pub dense_float: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig { run_aware: true, dense_float: true }
    }
}

impl KernelConfig {
    /// The materializing baseline: every fast path off.
    pub fn materializing() -> Self {
        KernelConfig { run_aware: false, dense_float: false }
    }
}

/// What the caller knows about `group_of_row`'s structure, letting pass B
/// consume runs instead of rows when groups are derivable from codes.
#[derive(Clone, Copy)]
pub(crate) enum GroupShape<'a> {
    /// No keys, no mask: every row belongs to group 0.
    AllRows,
    /// One dense key, no mask: a row's group *is* its key code.
    KeyCodes(CodesView<'a>),
    /// No exploitable structure: use `group_of_row` per row.
    General,
}

/// Dispatch once on the representation, monomorphize the loop body.
macro_rules! with_codes {
    ($view:expr, |$get:ident| $body:expr) => {
        match $view {
            CodesView::Const { .. } => {
                let $get = |_row: usize| 0u32;
                $body
            }
            CodesView::Bits(bits) => {
                let $get = |row: usize| bits.get(row) as u32;
                $body
            }
            CodesView::U8(v) => {
                let $get = |row: usize| v[row] as u32;
                $body
            }
            CodesView::U16(v) => {
                let $get = |row: usize| v[row] as u32;
                $body
            }
            CodesView::U32(v) => {
                let $get = |row: usize| v[row];
                $body
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Filter masks
// ---------------------------------------------------------------------------

/// Compile `plan` against chunk `chunk` and tabulate it into a row mask.
///
/// Bit `r` is set iff row `r` satisfies the filter.
pub(crate) fn filter_mask(plan: &FilterPlan, chunk: usize, rows: usize) -> Result<BitVec> {
    // Cache each filter column's chunk-dictionary values once: predicates
    // are then evaluated at most once per distinct value, not per row.
    let caches: Vec<Vec<Value>> = plan
        .cols
        .iter()
        .map(|(_, col)| {
            let ch = &col.chunks[chunk];
            (0..ch.dict.len()).map(|cid| col.dict.value(ch.dict.global_id_of(cid))).collect()
        })
        .collect();
    let pred = compile_pred(&plan.expr, plan, &caches)?;
    pred_mask(&pred, plan, &caches, chunk, rows, None)
}

/// A filter subtree compiled against one chunk.
enum Pred {
    Const(bool),
    /// Truth table over one column's chunk-ids.
    Table {
        col: usize,
        table: Vec<bool>,
    },
    And(Vec<Pred>),
    Or(Vec<Pred>),
    Not(Box<Pred>),
    /// Multi-column subtree: evaluate per row.
    RowEval(Expr),
}

fn compile_pred(expr: &Expr, plan: &FilterPlan, caches: &[Vec<Value>]) -> Result<Pred> {
    use pd_sql::{BinaryOp, UnaryOp};
    match expr {
        Expr::Binary { op: BinaryOp::And, lhs, rhs } => {
            Ok(Pred::And(vec![compile_pred(lhs, plan, caches)?, compile_pred(rhs, plan, caches)?]))
        }
        Expr::Binary { op: BinaryOp::Or, lhs, rhs } => {
            Ok(Pred::Or(vec![compile_pred(lhs, plan, caches)?, compile_pred(rhs, plan, caches)?]))
        }
        Expr::Unary { op: UnaryOp::Not, expr } => {
            Ok(Pred::Not(Box::new(compile_pred(expr, plan, caches)?)))
        }
        other => {
            let mut names = Vec::new();
            other.referenced_columns(&mut names);
            match names.len() {
                0 => {
                    let empty: &[(&str, Value)] = &[];
                    Ok(Pred::Const(truthy(&eval_expr(other, empty)?)))
                }
                1 => {
                    let col = plan
                        .cols
                        .iter()
                        .position(|(n, _)| *n == names[0])
                        .expect("filter columns were collected from this expression");
                    // Tabulate the predicate over the column's chunk values.
                    let table: Vec<bool> = caches[col]
                        .iter()
                        .map(|v| {
                            let ctx: &[(&str, Value)] = &[(names[0].as_str(), v.clone())];
                            Ok::<bool, Error>(truthy(&eval_expr(other, ctx)?))
                        })
                        .collect::<Result<_>>()?;
                    Ok(Pred::Table { col, table })
                }
                _ => Ok(Pred::RowEval(other.clone())),
            }
        }
    }
}

/// Does this subtree contain a per-row evaluation leaf?
fn has_row_eval(pred: &Pred) -> bool {
    match pred {
        Pred::Const(_) | Pred::Table { .. } => false,
        Pred::And(children) | Pred::Or(children) => children.iter().any(has_row_eval),
        Pred::Not(inner) => has_row_eval(inner),
        Pred::RowEval(_) => true,
    }
}

/// Evaluate `pred` into a mask.
///
/// `scope` is the set of rows whose bits the caller will actually use: an
/// `AND` passes its accumulated mask down so expensive `RowEval` subtrees
/// run only on rows that survived the cheaper siblings (the per-row
/// short-circuit of a row-at-a-time evaluator, recovered in mask form).
/// Outside `scope` the returned bits are unspecified — every scope
/// provider intersects the child result with that scope.
fn pred_mask(
    pred: &Pred,
    plan: &FilterPlan,
    caches: &[Vec<Value>],
    chunk: usize,
    rows: usize,
    scope: Option<&BitVec>,
) -> Result<BitVec> {
    Ok(match pred {
        Pred::Const(b) => BitVec::filled(rows, *b),
        Pred::Table { col, table } => {
            let view = plan.cols[*col].1.chunks[chunk].codes();
            with_codes!(view, |get| (0..rows).map(|r| table[get(r) as usize]).collect())
        }
        Pred::And(children) => {
            let mut mask = match scope {
                Some(s) => s.clone(),
                None => BitVec::filled(rows, true),
            };
            // Tabulated (cheap) children first, so per-row subtrees see
            // the narrowest possible scope.
            let (cheap, costly): (Vec<&Pred>, Vec<&Pred>) =
                children.iter().partition(|c| !has_row_eval(c));
            for c in cheap.into_iter().chain(costly) {
                if mask.none() {
                    break;
                }
                let child = pred_mask(c, plan, caches, chunk, rows, Some(&mask))?;
                mask.and_assign(&child);
            }
            mask
        }
        Pred::Or(children) => {
            let mut mask = BitVec::filled(rows, false);
            // Cheap disjuncts first; per-row disjuncts then only evaluate
            // rows no cheap sibling already satisfied (and that are in
            // scope) — the other half of the per-row short-circuit.
            let (cheap, costly): (Vec<&Pred>, Vec<&Pred>) =
                children.iter().partition(|c| !has_row_eval(c));
            for c in &cheap {
                if mask.all() {
                    break;
                }
                mask.or_assign(&pred_mask(c, plan, caches, chunk, rows, scope)?);
            }
            for c in costly {
                let mut remaining = match scope {
                    Some(s) => s.clone(),
                    None => BitVec::filled(rows, true),
                };
                let mut satisfied = mask.clone();
                satisfied.negate();
                remaining.and_assign(&satisfied);
                if remaining.none() {
                    break;
                }
                // Bits outside `remaining` are unspecified in the child
                // result; clear them before accumulating.
                let mut child = pred_mask(c, plan, caches, chunk, rows, Some(&remaining))?;
                child.and_assign(&remaining);
                mask.or_assign(&child);
            }
            mask
        }
        Pred::Not(inner) => {
            let mut mask = pred_mask(inner, plan, caches, chunk, rows, scope)?;
            mask.negate();
            mask
        }
        Pred::RowEval(expr) => match scope {
            None => {
                let mut mask = BitVec::with_capacity(rows);
                for row in 0..rows {
                    let ctx = FilterRowContext { plan, caches, chunk, row };
                    mask.push(truthy(&eval_expr(expr, &ctx)?));
                }
                mask
            }
            Some(s) => {
                let mut mask = BitVec::filled(rows, false);
                for row in s.iter_ones() {
                    let ctx = FilterRowContext { plan, caches, chunk, row };
                    if truthy(&eval_expr(expr, &ctx)?) {
                        mask.set(row, true);
                    }
                }
                mask
            }
        },
    })
}

/// Row context for multi-column filter subtrees.
struct FilterRowContext<'a> {
    plan: &'a FilterPlan,
    caches: &'a [Vec<Value>],
    chunk: usize,
    row: usize,
}

impl RowContext for FilterRowContext<'_> {
    fn column(&self, name: &str) -> Result<Value> {
        let idx = self
            .plan
            .cols
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| Error::Schema(format!("unknown column `{name}`")))?;
        let chunk = &self.plan.cols[idx].1.chunks[self.chunk];
        Ok(self.caches[idx][chunk.elements.get(self.row) as usize].clone())
    }
}

// ---------------------------------------------------------------------------
// Count kernels — the paper's `counts[elements[row]]++`
// ---------------------------------------------------------------------------

/// Single-key `COUNT(*)`: one pass over the codes into a flat array.
pub(crate) fn count_single(
    view: CodesView<'_>,
    distinct: usize,
    mask: Option<&BitVec>,
    run_aware: bool,
) -> Vec<u64> {
    let rows = view.len();
    match mask {
        None => match view {
            // Degenerate representations count in O(1) / O(words).
            CodesView::Const { len } => vec![len as u64],
            CodesView::Bits(bits) => {
                let ones = bits.count_ones() as u64;
                vec![rows as u64 - ones, ones]
            }
            _ if run_aware => {
                // Compressed-domain form: one add per run, not per row.
                let mut counts = vec![0u64; distinct];
                view.for_each_run(|code, n| counts[code as usize] += n as u64);
                counts
            }
            _ => {
                let mut counts = vec![0u64; distinct];
                with_codes!(view, |get| {
                    for row in 0..rows {
                        counts[get(row) as usize] += 1;
                    }
                });
                counts
            }
        },
        Some(mask) => {
            let mut counts = vec![0u64; distinct.max(1)];
            with_codes!(view, |get| {
                for row in mask.iter_ones() {
                    counts[get(row) as usize] += 1;
                }
            });
            counts
        }
    }
}

/// Two-key fused `COUNT(*)`: `counts[code_a * nb + code_b]++` over a flat
/// array of size `na * nb` (callers guarantee the product is dense-sized).
pub(crate) fn count_fused(
    a: CodesView<'_>,
    b: CodesView<'_>,
    nb: usize,
    capacity: usize,
    mask: Option<&BitVec>,
) -> Vec<u64> {
    let rows = a.len();
    let mut counts = vec![0u64; capacity.max(1)];
    with_codes!(a, |get_a| with_codes!(b, |get_b| {
        match mask {
            None => {
                for row in 0..rows {
                    counts[get_a(row) as usize * nb + get_b(row) as usize] += 1;
                }
            }
            Some(mask) => {
                for row in mask.iter_ones() {
                    counts[get_a(row) as usize * nb + get_b(row) as usize] += 1;
                }
            }
        }
    }));
    counts
}

// ---------------------------------------------------------------------------
// Group-index computation (pass A of the general path)
// ---------------------------------------------------------------------------

/// Per-row group indices for one chunk. `u32::MAX` marks a filtered row.
pub(crate) struct GroupIndex {
    pub group_of_row: Vec<u32>,
    /// Number of group slots (dense capacity, or distinct hash keys).
    pub group_count: usize,
    /// Code tuples per group id — `None` on the dense path, where ids
    /// decode positionally.
    pub hash_keys: Option<Vec<Box<[u32]>>>,
}

/// Compute group indices for `key_chunks` over `rows` rows.
///
/// `dense_capacity` is the checked product of the key-dictionary sizes if
/// it fits [`DENSE_GROUP_LIMIT`] — the caller computes it once per chunk.
pub(crate) fn group_codes(
    key_chunks: &[&ColumnChunk],
    sizes: &[usize],
    rows: usize,
    mask: Option<&BitVec>,
    dense_capacity: Option<usize>,
) -> GroupIndex {
    match dense_capacity {
        Some(capacity) => {
            let group_of_row = match key_chunks.len() {
                0 => match mask {
                    None => vec![0u32; rows],
                    Some(m) => (0..rows).map(|r| if m.get(r) { 0 } else { u32::MAX }).collect(),
                },
                1 => dense_one(key_chunks[0].codes(), rows, mask),
                2 => dense_two(key_chunks[0].codes(), key_chunks[1].codes(), sizes[1], rows, mask),
                _ => dense_many(key_chunks, sizes, rows, mask),
            };
            GroupIndex { group_of_row, group_count: capacity.max(1), hash_keys: None }
        }
        None => {
            let mut map: FxHashMap<Box<[u32]>, u32> = FxHashMap::default();
            let mut hash_keys: Vec<Box<[u32]>> = Vec::new();
            let mut key_buf: Vec<u32> = vec![0; key_chunks.len()];
            let mut group_of_row: Vec<u32> = vec![u32::MAX; rows];
            for (row, slot) in group_of_row.iter_mut().enumerate() {
                if let Some(m) = mask {
                    if !m.get(row) {
                        continue;
                    }
                }
                for (k, ch) in key_buf.iter_mut().zip(key_chunks) {
                    *k = ch.elements.get(row);
                }
                let next = map.len() as u32;
                let idx = *map.entry(key_buf.clone().into_boxed_slice()).or_insert_with(|| {
                    hash_keys.push(key_buf.clone().into_boxed_slice());
                    next
                });
                *slot = idx;
            }
            let group_count = hash_keys.len().max(1);
            GroupIndex { group_of_row, group_count, hash_keys: Some(hash_keys) }
        }
    }
}

fn dense_one(view: CodesView<'_>, rows: usize, mask: Option<&BitVec>) -> Vec<u32> {
    with_codes!(view, |get| match mask {
        None => (0..rows).map(get).collect(),
        Some(m) => (0..rows).map(|r| if m.get(r) { get(r) } else { u32::MAX }).collect(),
    })
}

fn dense_two(
    a: CodesView<'_>,
    b: CodesView<'_>,
    nb: usize,
    rows: usize,
    mask: Option<&BitVec>,
) -> Vec<u32> {
    let nb = nb.max(1) as u32;
    with_codes!(a, |get_a| with_codes!(b, |get_b| {
        let fused = |r: usize| get_a(r) * nb + get_b(r);
        match mask {
            None => (0..rows).map(fused).collect(),
            Some(m) => (0..rows).map(|r| if m.get(r) { fused(r) } else { u32::MAX }).collect(),
        }
    }))
}

fn dense_many(
    key_chunks: &[&ColumnChunk],
    sizes: &[usize],
    rows: usize,
    mask: Option<&BitVec>,
) -> Vec<u32> {
    let mut group_of_row: Vec<u32> = vec![u32::MAX; rows];
    for (row, slot) in group_of_row.iter_mut().enumerate() {
        if let Some(m) = mask {
            if !m.get(row) {
                continue;
            }
        }
        let mut idx = 0usize;
        for (ch, n) in key_chunks.iter().zip(sizes) {
            idx = idx * (*n).max(1) + ch.elements.get(row) as usize;
        }
        *slot = idx as u32;
    }
    group_of_row
}

// ---------------------------------------------------------------------------
// Aggregate accumulators (pass B)
// ---------------------------------------------------------------------------

/// Per-chunk accumulators for one aggregate.
///
/// Float sums accumulate into [`FloatSum`] superaccumulators so the chunk
/// state is *exact* — the fold across chunks, threads and shards can then
/// merge states in any grouping and still produce bit-identical results.
pub(crate) enum ChunkAcc {
    Count(Vec<u64>),
    SumInt(Vec<i64>),
    SumFloat(Vec<FloatSum>),
    /// Dense-float fast path: double-double per group plus a materializing
    /// fallback map for the (rare) groups whose sum wasn't provably exact.
    SumFloatDense {
        dd: DenseFloat,
        fallback: FxHashMap<u32, FloatSum>,
    },
    /// Extreme chunk-id per group (chunk-id order == value order) plus the
    /// owning chunk's translation tables.
    MinMax {
        best: Vec<u32>,
        is_min: bool,
        values: Vec<Value>,
    },
    Avg {
        sum: Vec<FloatSum>,
        count: Vec<u64>,
    },
    AvgDense {
        dd: DenseFloat,
        fallback: FxHashMap<u32, FloatSum>,
        count: Vec<u64>,
    },
    Distinct(Vec<KmvSketch>),
}

impl ChunkAcc {
    /// Run the pass-B loop for `agg` over `group_of_row`.
    ///
    /// `shape` describes structure the caller proved about `group_of_row`
    /// (see [`GroupShape`]), `cfg` gates the fast paths, and `float_table`
    /// is the memoized per-(column, chunk) dictionary→f64 table for
    /// float-summing aggregates (built here when absent).
    pub(crate) fn run(
        agg: &AggPlan,
        c: usize,
        group_count: usize,
        group_of_row: &[u32],
        shape: GroupShape<'_>,
        cfg: KernelConfig,
        float_table_memo: Option<&[f64]>,
    ) -> Result<ChunkAcc> {
        let arg_chunk = agg.col.as_ref().map(|col| &col.chunks[c]);
        Ok(match &agg.kind {
            AggKind::Count => {
                let mut counts = vec![0u64; group_count];
                match shape {
                    // No mask: every row counts, straight off the runs.
                    GroupShape::AllRows if cfg.run_aware => counts[0] = group_of_row.len() as u64,
                    GroupShape::KeyCodes(keys) if cfg.run_aware => {
                        keys.for_each_run(|code, n| counts[code as usize] += n as u64)
                    }
                    _ => {
                        for &g in group_of_row {
                            if g != u32::MAX {
                                counts[g as usize] += 1;
                            }
                        }
                    }
                }
                ChunkAcc::Count(counts)
            }
            AggKind::SumInt => {
                let col = agg.col.as_ref().expect("SUM has an argument");
                let chunk = arg_chunk.expect("SUM has an argument");
                // Tabulate the numeric value per chunk-id once.
                let table: Vec<i64> = (0..chunk.dict.len())
                    .map(|cid| match col.dict.value(chunk.dict.global_id_of(cid)) {
                        Value::Int(v) => v,
                        other => unreachable!("typed as Int, got {other}"),
                    })
                    .collect();
                let mut sums = vec![0i64; group_count];
                match shape {
                    // Wrapping addition is associative mod 2^64, so a run
                    // contributes `weight × n` bit-identically.
                    GroupShape::AllRows if cfg.run_aware => {
                        chunk.codes().for_each_run(|code, n| {
                            sums[0] =
                                sums[0].wrapping_add(table[code as usize].wrapping_mul(n as i64));
                        });
                    }
                    GroupShape::KeyCodes(keys) if cfg.run_aware => {
                        joint_runs(keys, chunk.codes(), |kc, ac, n| {
                            sums[kc as usize] = sums[kc as usize]
                                .wrapping_add(table[ac as usize].wrapping_mul(n as i64));
                        });
                    }
                    _ => with_codes!(chunk.codes(), |get| {
                        for (row, &g) in group_of_row.iter().enumerate() {
                            if g != u32::MAX {
                                sums[g as usize] =
                                    sums[g as usize].wrapping_add(table[get(row) as usize]);
                            }
                        }
                    }),
                }
                ChunkAcc::SumInt(sums)
            }
            AggKind::SumFloat => {
                let chunk = arg_chunk.expect("SUM has an argument");
                let table_own;
                let table: &[f64] = match float_table_memo {
                    Some(t) => t,
                    None => {
                        table_own = float_table(agg, chunk);
                        &table_own
                    }
                };
                match float_strategy(shape, cfg) {
                    FloatPath::Runs => {
                        // `FloatSum::add_repeated` is exact, so the run
                        // form needs no fallback.
                        let mut sums = vec![FloatSum::new(); group_count];
                        match shape {
                            GroupShape::AllRows => chunk.codes().for_each_run(|code, n| {
                                sums[0].add_repeated(table[code as usize], n as u64)
                            }),
                            GroupShape::KeyCodes(keys) => {
                                joint_runs(keys, chunk.codes(), |kc, ac, n| {
                                    sums[kc as usize].add_repeated(table[ac as usize], n as u64)
                                })
                            }
                            GroupShape::General => unreachable!("Runs needs structure"),
                        }
                        ChunkAcc::SumFloat(sums)
                    }
                    FloatPath::DoubleDouble => {
                        let mut dd = DenseFloat::new(group_count);
                        with_codes!(chunk.codes(), |get| {
                            for (row, &g) in group_of_row.iter().enumerate() {
                                if g != u32::MAX {
                                    dd.add(g as usize, table[get(row) as usize]);
                                }
                            }
                        });
                        let fallback = dd.fallback(table, chunk.codes(), group_of_row);
                        ChunkAcc::SumFloatDense { dd, fallback }
                    }
                    FloatPath::Materializing => {
                        let mut sums = vec![FloatSum::new(); group_count];
                        with_codes!(chunk.codes(), |get| {
                            for (row, &g) in group_of_row.iter().enumerate() {
                                if g != u32::MAX {
                                    sums[g as usize].add(table[get(row) as usize]);
                                }
                            }
                        });
                        ChunkAcc::SumFloat(sums)
                    }
                }
            }
            AggKind::Avg => {
                let chunk = arg_chunk.expect("AVG has an argument");
                let table_own;
                let table: &[f64] = match float_table_memo {
                    Some(t) => t,
                    None => {
                        table_own = float_table(agg, chunk);
                        &table_own
                    }
                };
                let mut count = vec![0u64; group_count];
                match float_strategy(shape, cfg) {
                    FloatPath::Runs => {
                        let mut sum = vec![FloatSum::new(); group_count];
                        match shape {
                            GroupShape::AllRows => chunk.codes().for_each_run(|code, n| {
                                sum[0].add_repeated(table[code as usize], n as u64);
                                count[0] += n as u64;
                            }),
                            GroupShape::KeyCodes(keys) => {
                                joint_runs(keys, chunk.codes(), |kc, ac, n| {
                                    sum[kc as usize].add_repeated(table[ac as usize], n as u64);
                                    count[kc as usize] += n as u64;
                                })
                            }
                            GroupShape::General => unreachable!("Runs needs structure"),
                        }
                        ChunkAcc::Avg { sum, count }
                    }
                    FloatPath::DoubleDouble => {
                        let mut dd = DenseFloat::new(group_count);
                        with_codes!(chunk.codes(), |get| {
                            for (row, &g) in group_of_row.iter().enumerate() {
                                if g != u32::MAX {
                                    dd.add(g as usize, table[get(row) as usize]);
                                    count[g as usize] += 1;
                                }
                            }
                        });
                        let fallback = dd.fallback(table, chunk.codes(), group_of_row);
                        ChunkAcc::AvgDense { dd, fallback, count }
                    }
                    FloatPath::Materializing => {
                        let mut sum = vec![FloatSum::new(); group_count];
                        with_codes!(chunk.codes(), |get| {
                            for (row, &g) in group_of_row.iter().enumerate() {
                                if g != u32::MAX {
                                    sum[g as usize].add(table[get(row) as usize]);
                                    count[g as usize] += 1;
                                }
                            }
                        });
                        ChunkAcc::Avg { sum, count }
                    }
                }
            }
            AggKind::MinMax { is_min } => {
                let col = agg.col.as_ref().expect("MIN/MAX has an argument");
                let chunk = arg_chunk.expect("MIN/MAX has an argument");
                // Translate the chunk dictionary to values once.
                let values: Vec<Value> = (0..chunk.dict.len())
                    .map(|cid| col.dict.value(chunk.dict.global_id_of(cid)))
                    .collect();
                let mut best = vec![u32::MAX; group_count];
                if col.dict.is_value_ordered() {
                    // Sorted global dictionary: chunk-id order is value
                    // order, so extremes reduce to integer comparisons.
                    with_codes!(chunk.codes(), |get| {
                        for (row, &g) in group_of_row.iter().enumerate() {
                            if g == u32::MAX {
                                continue;
                            }
                            let id = get(row);
                            let slot = &mut best[g as usize];
                            if *slot == u32::MAX
                                || (*is_min && id < *slot)
                                || (!*is_min && id > *slot)
                            {
                                *slot = id;
                            }
                        }
                    });
                } else {
                    // A tailed dictionary appends ids out of value order;
                    // compare the translated values instead.
                    with_codes!(chunk.codes(), |get| {
                        for (row, &g) in group_of_row.iter().enumerate() {
                            if g == u32::MAX {
                                continue;
                            }
                            let id = get(row);
                            let slot = &mut best[g as usize];
                            let better = *slot == u32::MAX
                                || (*is_min && values[id as usize] < values[*slot as usize])
                                || (!*is_min && values[id as usize] > values[*slot as usize]);
                            if better {
                                *slot = id;
                            }
                        }
                    });
                }
                ChunkAcc::MinMax { best, is_min: *is_min, values }
            }
            AggKind::Distinct { m } => {
                let col = agg.col.as_ref().expect("COUNT DISTINCT has an argument");
                let chunk = arg_chunk.expect("COUNT DISTINCT has an argument");
                // Hash each distinct value once per chunk.
                let hashes: Vec<u64> = (0..chunk.dict.len())
                    .map(|cid| fx_hash64(&col.dict.value(chunk.dict.global_id_of(cid))))
                    .collect();
                let mut sketches = vec![KmvSketch::new(*m); group_count];
                with_codes!(chunk.codes(), |get| {
                    for (row, &g) in group_of_row.iter().enumerate() {
                        if g != u32::MAX {
                            sketches[g as usize].offer(hashes[get(row) as usize]);
                        }
                    }
                });
                ChunkAcc::Distinct(sketches)
            }
        })
    }

    pub(crate) fn state_of(&self, g: usize) -> AggState {
        match self {
            ChunkAcc::Count(v) => AggState::Count(v[g]),
            ChunkAcc::SumInt(v) => AggState::SumInt(v[g]),
            ChunkAcc::SumFloat(v) => AggState::SumFloat(Box::new(v[g].clone())),
            ChunkAcc::SumFloatDense { dd, fallback } => {
                AggState::SumFloat(Box::new(dd.float_sum(g, fallback)))
            }
            ChunkAcc::MinMax { best, is_min, values } => {
                let v = (best[g] != u32::MAX).then(|| values[best[g] as usize].clone());
                if *is_min {
                    AggState::Min(v)
                } else {
                    AggState::Max(v)
                }
            }
            ChunkAcc::Avg { sum, count } => {
                AggState::Avg { sum: Box::new(sum[g].clone()), count: count[g] }
            }
            ChunkAcc::AvgDense { dd, fallback, count } => {
                AggState::Avg { sum: Box::new(dd.float_sum(g, fallback)), count: count[g] }
            }
            ChunkAcc::Distinct(v) => AggState::Distinct(v[g].clone()),
        }
    }
}

/// Which float-sum loop to run for a given shape and configuration.
enum FloatPath {
    /// Exact `add_repeated` over runs (no fallback needed).
    Runs,
    /// Double-double per group with a per-group exactness proof.
    DoubleDouble,
    /// The baseline: a `FloatSum` per group slot, one `add` per row.
    Materializing,
}

fn float_strategy(shape: GroupShape<'_>, cfg: KernelConfig) -> FloatPath {
    match shape {
        // A single global sum can't blow up on slot memory; the run form
        // is strictly better than double-double there (exact, no re-pass).
        GroupShape::AllRows if cfg.run_aware => FloatPath::Runs,
        _ if cfg.dense_float => FloatPath::DoubleDouble,
        GroupShape::KeyCodes(_) if cfg.run_aware => FloatPath::Runs,
        _ => FloatPath::Materializing,
    }
}

/// Per-group double-double accumulator (16 bytes/slot), with a running
/// exactness proof per group.
///
/// Each add performs two branchless Knuth `two_sum`s; the residual of the
/// second (`e2`) is zero iff the pair `(hi, lo)` still equals the exact
/// chunk-local sum. A non-finite input or an overflow makes `e2`
/// non-zero/NaN, so tainted groups are exactly the ones where the pair is
/// not a proof — they get an exact [`FloatSum`] from a materializing
/// re-pass instead. Untainted groups convert exactly: `hi + lo` *is* the
/// sum, and adding both into a fresh accumulator reproduces the limbs a
/// per-row accumulation would have produced, bit for bit.
pub(crate) struct DenseFloat {
    hi: Vec<f64>,
    lo: Vec<f64>,
    tainted: BitVec,
    any_tainted: bool,
}

#[inline(always)]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    // pd-analysis: allow(float-exactness) -- this IS the double-double primitive: Knuth's TwoSum, whose raw adds are exactly compensated by `err`
    let s = a + b;
    let bv = s - a;
    // pd-analysis: allow(float-exactness) -- error term of Knuth's TwoSum; exact by construction
    let err = (a - (s - bv)) + (b - bv);
    (s, err)
}

impl DenseFloat {
    fn new(group_count: usize) -> DenseFloat {
        DenseFloat {
            hi: vec![0.0; group_count],
            lo: vec![0.0; group_count],
            tainted: BitVec::filled(group_count, false),
            any_tainted: false,
        }
    }

    #[inline(always)]
    fn add(&mut self, g: usize, x: f64) {
        let (s1, e1) = two_sum(self.hi[g], x);
        let (s2, e2) = two_sum(self.lo[g], e1);
        self.hi[g] = s1;
        self.lo[g] = s2;
        // NaN compares unequal, so non-finite inputs taint automatically;
        // -0.0 == 0.0 keeps signed-zero residuals exact.
        if e2 != 0.0 {
            self.tainted.set(g, true);
            self.any_tainted = true;
        }
    }

    /// Materializing re-pass over only the tainted groups' rows.
    fn fallback(
        &self,
        table: &[f64],
        view: CodesView<'_>,
        group_of_row: &[u32],
    ) -> FxHashMap<u32, FloatSum> {
        let mut map: FxHashMap<u32, FloatSum> = FxHashMap::default();
        if !self.any_tainted {
            return map;
        }
        with_codes!(view, |get| {
            for (row, &g) in group_of_row.iter().enumerate() {
                if g != u32::MAX && self.tainted.get(g as usize) {
                    map.entry(g).or_default().add(table[get(row) as usize]);
                }
            }
        });
        map
    }

    /// The exact accumulator for group `g`.
    fn float_sum(&self, g: usize, fallback: &FxHashMap<u32, FloatSum>) -> FloatSum {
        if self.tainted.get(g) {
            fallback.get(&(g as u32)).cloned().unwrap_or_default()
        } else {
            let mut fs = FloatSum::new();
            fs.add(self.hi[g]);
            fs.add(self.lo[g]);
            fs
        }
    }
}

/// Visit maximal runs over which *both* the key code and the argument code
/// are constant: `f(key_code, arg_code, run_len)`. Sorted or clustered
/// chunks make these runs long; the worst case is one compare pair per row.
fn joint_runs(keys: CodesView<'_>, args: CodesView<'_>, mut f: impl FnMut(u32, u32, usize)) {
    let rows = keys.len();
    debug_assert_eq!(rows, args.len());
    with_codes!(keys, |get_k| with_codes!(args, |get_a| {
        let mut i = 0;
        while i < rows {
            let (kc, ac) = (get_k(i), get_a(i));
            let mut j = i + 1;
            while j < rows && get_k(j) == kc && get_a(j) == ac {
                j += 1;
            }
            f(kc, ac, j - i);
            i = j;
        }
    }));
}

/// Process-wide count of dictionary→f64 tables built (diagnostics: the
/// kernel bench asserts memoization keeps this from scaling with the
/// aggregate count).
pub(crate) static FLOAT_TABLE_BUILDS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn float_table(agg: &AggPlan, chunk: &ColumnChunk) -> Vec<f64> {
    FLOAT_TABLE_BUILDS.fetch_add(1, Ordering::Relaxed);
    let col = agg.col.as_ref().expect("aggregate has an argument");
    (0..chunk.dict.len())
        .map(|cid| col.dict.value(chunk.dict.global_id_of(cid)).numeric())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_encoding::{Elements, ElementsMode};

    fn elements(ids: &[u32], distinct: u32) -> Elements {
        Elements::encode(ids, distinct, ElementsMode::Optimized)
    }

    #[test]
    fn count_single_matches_naive_for_every_repr() {
        for distinct in [1u32, 2, 5, 300, 70_000] {
            let ids: Vec<u32> = (0..500).map(|i| (i * 7 + 3) % distinct).collect();
            let e = elements(&ids, distinct);
            let mut naive = vec![0u64; distinct as usize];
            for &id in &ids {
                naive[id as usize] += 1;
            }
            for run_aware in [false, true] {
                let counts = count_single(e.codes(), distinct as usize, None, run_aware);
                assert_eq!(counts, naive, "distinct={distinct} run_aware={run_aware}");
            }
        }
    }

    #[test]
    fn count_single_respects_mask() {
        let ids: Vec<u32> = (0..100).map(|i| i % 4).collect();
        let e = elements(&ids, 4);
        let mask: BitVec = (0..100).map(|i| i % 2 == 0).collect();
        let counts = count_single(e.codes(), 4, Some(&mask), true);
        let mut naive = vec![0u64; 4];
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                naive[id as usize] += 1;
            }
        }
        assert_eq!(counts, naive);
    }

    #[test]
    fn joint_runs_cover_every_row_pairwise() {
        let keys: Vec<u32> = (0..400).map(|i| i / 40).collect();
        let args: Vec<u32> = (0..400).map(|i| i / 10 % 5).collect();
        let ek = elements(&keys, 10);
        let ea = elements(&args, 5);
        let mut rebuilt: Vec<(u32, u32)> = Vec::new();
        joint_runs(ek.codes(), ea.codes(), |kc, ac, n| {
            rebuilt.extend(std::iter::repeat_n((kc, ac), n));
        });
        let expect: Vec<(u32, u32)> = keys.iter().copied().zip(args.iter().copied()).collect();
        assert_eq!(rebuilt, expect);
    }

    #[test]
    fn dense_float_untainted_matches_per_row_floatsum() {
        // Values with exact double-double sums (powers of two scale).
        let table = [1.5f64, -2.25, 1024.0, 0.125];
        let group_of_row: Vec<u32> = (0..64).map(|i| i % 4).collect();
        let codes: Vec<u32> = (0..64).map(|i| (i * 3) % 4).collect();
        let view = elements(&codes, 4);
        let mut dd = DenseFloat::new(4);
        let mut reference = vec![FloatSum::new(); 4];
        for (row, &g) in group_of_row.iter().enumerate() {
            let x = table[view.get(row) as usize];
            dd.add(g as usize, x);
            reference[g as usize].add(x);
        }
        assert!(!dd.any_tainted);
        let fallback = dd.fallback(&table, view.codes(), &group_of_row);
        for (g, want) in reference.iter().enumerate() {
            assert_eq!(dd.float_sum(g, &fallback), *want, "group {g}");
        }
    }

    #[test]
    fn dense_float_taints_on_nonfinite_and_falls_back_exactly() {
        let table = [1e308f64, 1e308, f64::NAN, 0.5];
        let group_of_row: Vec<u32> = vec![0, 0, 1, 2, 2];
        let codes: Vec<u32> = vec![0, 1, 3, 2, 3]; // group 0 overflows, 2 sees NaN
        let view = elements(&codes, 4);
        let mut dd = DenseFloat::new(3);
        let mut reference = vec![FloatSum::new(); 3];
        for (row, &g) in group_of_row.iter().enumerate() {
            let x = table[view.get(row) as usize];
            dd.add(g as usize, x);
            reference[g as usize].add(x);
        }
        assert!(dd.tainted.get(0), "overflowing group must taint");
        assert!(dd.tainted.get(2), "NaN group must taint");
        let fallback = dd.fallback(&table, view.codes(), &group_of_row);
        for (g, want) in reference.iter().enumerate() {
            assert_eq!(dd.float_sum(g, &fallback), *want, "group {g}");
        }
    }

    #[test]
    fn count_fused_equals_pairwise_naive() {
        let a: Vec<u32> = (0..300).map(|i| i % 3).collect();
        let b: Vec<u32> = (0..300).map(|i| (i * 11) % 7).collect();
        let ea = elements(&a, 3);
        let eb = elements(&b, 7);
        let counts = count_fused(ea.codes(), eb.codes(), 7, 21, None);
        let mut naive = vec![0u64; 21];
        for i in 0..300 {
            naive[(a[i] * 7 + b[i]) as usize] += 1;
        }
        assert_eq!(counts, naive);
    }

    #[test]
    fn dense_group_codes_fuse_and_mask() {
        let a: Vec<u32> = (0..50).map(|i| i % 2).collect();
        let b: Vec<u32> = (0..50).map(|i| i % 5).collect();
        let ea = elements(&a, 2);
        let eb = elements(&b, 5);
        let mask: BitVec = (0..50).map(|i| i != 7).collect();
        let fused = dense_two(ea.codes(), eb.codes(), 5, 50, Some(&mask));
        for i in 0..50 {
            if i == 7 {
                assert_eq!(fused[i], u32::MAX);
            } else {
                assert_eq!(fused[i], a[i] * 5 + b[i]);
            }
        }
    }
}
