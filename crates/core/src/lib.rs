//! The PowerDrill column-store — the paper's core contribution.
//!
//! The store imports a [`pd_data::Table`] once (partitioning, reordering and
//! dictionary-encoding it, §2.2–2.3) and then answers group-by SQL queries
//! by skipping inactive chunks (§2.4) and running tight counts-array loops
//! over the active ones. The §3 "key optimizations" are all build options
//! ([`BuildOptions`]), so the evaluation ladder (Basic → Chunks → OptCols →
//! OptDicts → Zippy → Reorder) is expressible as six configurations of the
//! same store.
//!
//! Modules:
//!
//! - [`options`] — build configuration (one constructor per paper variant);
//! - [`partition`] — composite range partitioning, heaviest-chunk-first;
//! - [`column`](module@crate::column) — a stored column: global dict + per-chunk (chunk dict,
//!   elements);
//! - [`datastore`] — the import pipeline and column registry, including §5
//!   materialized virtual fields;
//! - [`skip`] — chunk activity analysis (skip / partial / fully active);
//! - [`exec`] — the query executor (dense-array group-by, aggregation
//!   states, HAVING/ORDER/LIMIT), with partial execution + merge for the
//!   distributed layer; the per-chunk inner loops are the dictionary-code
//!   kernels of `kernels` (filter masks as packed bit vectors, flat
//!   counts/sums arrays over raw `u32` codes);
//! - [`scheduler`] — the persistent morsel-driven worker pool that scans
//!   active chunks in parallel ([`ExecContext::threads`], default =
//!   `EXEC_THREADS` or available parallelism) with results folded
//!   deterministically in task order; the same pool serves the distributed
//!   layer's shard fan-out (waiting submitters help drain the queue, so
//!   nested fan-outs cannot deadlock);
//! - [`count_distinct`] — the §5 m-smallest-hashes sketch;
//! - [`cache`] — LRU / 2Q / ARC eviction, the two-layer residency model and
//!   the chunk-result cache (§5, §6);
//! - [`stats`] — scan accounting (skipped / cached / scanned, disk bytes);
//! - [`memory`] — the per-query memory reports behind Tables 1–4.

pub mod cache;
pub mod codec;
pub mod column;
pub mod count_distinct;
pub mod datastore;
pub mod exec;
pub(crate) mod kernels;
pub mod memory;
pub mod options;
pub mod partition;
pub mod scheduler;
pub mod skip;
pub mod stats;

pub use cache::{cost_score, BoundedCache, CachePolicy, ResultCache, TieredCache};
pub use kernels::KernelConfig;

/// Dictionary→f64 translation tables built since process start (a
/// monotone, process-wide counter). The kernel bench asserts the
/// per-(column, chunk) memoization keeps this from scaling with the number
/// of float aggregates in a query.
pub fn float_table_builds() -> u64 {
    kernels::FLOAT_TABLE_BUILDS.load(std::sync::atomic::Ordering::Relaxed)
}
pub use column::{ColumnChunk, StoredColumn};
pub use count_distinct::KmvSketch;
pub use datastore::DataStore;
pub use exec::{
    execute, execute_partial, execute_partial_seeded, finalize, query, AggState, ExecContext,
    PartialResult, QueryResult,
};
pub use memory::{report_for_query, ColumnMemory, MemoryReport};
pub use options::{BuildOptions, DictMode, PartitionSpec};
pub use partition::Partitioning;
pub use scheduler::WorkerPool;
pub use skip::ChunkActivity;
pub use stats::ScanStats;
