//! Per-query memory reports — the measurement behind Tables 1–4.
//!
//! §2.5: *"for Dremel and our own data-structures this reflects only the
//! columns present in the individual queries"*. A [`MemoryReport`] breaks a
//! set of columns down the way §3 discusses them: global dictionaries,
//! chunk dictionaries, and elements, plus the compressed sizes under a
//! codec (Tables 3–4's "Zippy" rows).

use crate::datastore::DataStore;
use pd_common::{HeapSize, Result};
use pd_compress::CodecKind;
use pd_sql::{analyze, parse_query, Expr};

/// Memory breakdown of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMemory {
    pub name: String,
    pub dict_bytes: usize,
    pub chunk_dict_bytes: usize,
    pub elements_bytes: usize,
}

impl ColumnMemory {
    pub fn total(&self) -> usize {
        self.dict_bytes + self.chunk_dict_bytes + self.elements_bytes
    }

    /// The "Elements" subset Table 2 reports (elements + chunk dicts).
    pub fn elements_and_chunk_dicts(&self) -> usize {
        self.chunk_dict_bytes + self.elements_bytes
    }
}

/// Memory report over the columns a query touches.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryReport {
    pub columns: Vec<ColumnMemory>,
}

impl MemoryReport {
    pub fn total(&self) -> usize {
        self.columns.iter().map(ColumnMemory::total).sum()
    }

    pub fn dict_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.dict_bytes).sum()
    }

    pub fn elements_and_chunk_dicts(&self) -> usize {
        self.columns.iter().map(ColumnMemory::elements_and_chunk_dicts).sum()
    }
}

/// Columns (as expressions) touched by a SQL query: group keys, aggregate
/// arguments, filter fields.
pub fn query_columns(sql: &str) -> Result<Vec<Expr>> {
    let analyzed = analyze(&parse_query(sql)?)?;
    let mut exprs: Vec<Expr> = Vec::new();
    let mut push = |e: &Expr| {
        if !exprs.contains(e) {
            exprs.push(e.clone());
        }
    };
    for k in &analyzed.keys {
        push(k);
    }
    for a in &analyzed.aggs {
        if let Some(arg) = &a.arg {
            push(arg);
        }
    }
    if let Some(filter) = &analyzed.filter {
        let mut names = Vec::new();
        filter.referenced_columns(&mut names);
        for n in names {
            push(&Expr::Column(n));
        }
    }
    Ok(exprs)
}

/// Uncompressed memory report for the columns touched by `sql`.
pub fn report_for_query(store: &DataStore, sql: &str) -> Result<MemoryReport> {
    let mut report = MemoryReport::default();
    for expr in query_columns(sql)? {
        let col = store.column_for_expr(&expr)?;
        report.columns.push(ColumnMemory {
            name: expr.canonical(),
            dict_bytes: col.dict.heap_bytes(),
            chunk_dict_bytes: col.chunk_dict_bytes(),
            elements_bytes: col.elements_bytes(),
        });
    }
    Ok(report)
}

/// Compressed total (bytes) for the columns touched by `sql` under `codec`.
pub fn compressed_for_query(store: &DataStore, sql: &str, codec: CodecKind) -> Result<usize> {
    let mut total = 0;
    for expr in query_columns(sql)? {
        let col = store.column_for_expr(&expr)?;
        total += col.compressed_bytes(codec.codec());
    }
    Ok(total)
}

/// Compressed size of elements + chunk dictionaries only (the §3 reorder
/// experiment's metric).
pub fn compressed_chunks_for_query(
    store: &DataStore,
    sql: &str,
    codec: CodecKind,
) -> Result<usize> {
    let mut total = 0;
    for expr in query_columns(sql)? {
        let col = store.column_for_expr(&expr)?;
        total += col.compressed_chunk_bytes(codec.codec());
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{BuildOptions, PartitionSpec};
    use pd_data::{generate_logs, LogsSpec};

    const Q1: &str =
        "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;";
    const Q2: &str = "SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data GROUP BY date ORDER BY date ASC LIMIT 10;";
    const Q3: &str =
        "SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10;";

    fn store(options: &BuildOptions) -> DataStore {
        let table = generate_logs(&LogsSpec::scaled(4_000));
        DataStore::build(&table, options).unwrap()
    }

    #[test]
    fn query_columns_cover_keys_aggs_filters() {
        let cols = query_columns(
            "SELECT country, SUM(latency) FROM data WHERE table_name = 'x' GROUP BY country",
        )
        .unwrap();
        let names: Vec<String> = cols.iter().map(Expr::canonical).collect();
        assert_eq!(names, vec!["country", "latency", "table_name"]);
    }

    #[test]
    fn q1_reports_only_country() {
        let s = store(&BuildOptions::basic());
        let r = report_for_query(&s, Q1).unwrap();
        assert_eq!(r.columns.len(), 1);
        assert_eq!(r.columns[0].name, "country");
        assert!(r.total() > 0);
    }

    #[test]
    fn q2_includes_virtual_field_and_latency() {
        let s = store(&BuildOptions::basic());
        let r = report_for_query(&s, Q2).unwrap();
        let names: Vec<&str> = r.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["date(timestamp)", "latency"]);
    }

    #[test]
    fn optcols_shrinks_q1_dramatically() {
        // Table 2's headline: 80 KB suffice for the country column of 5M
        // rows once partitioned + optimized. Scaled down, the elements
        // bytes must collapse relative to Basic.
        let spec = PartitionSpec::new(&["country", "table_name"], 500);
        let basic = report_for_query(&store(&BuildOptions::basic()), Q1).unwrap();
        let opt = report_for_query(&store(&BuildOptions::optcols(spec)), Q1).unwrap();
        assert!(
            opt.elements_and_chunk_dicts() * 5 < basic.elements_and_chunk_dicts(),
            "optimized {} vs basic {}",
            opt.elements_and_chunk_dicts(),
            basic.elements_and_chunk_dicts()
        );
    }

    #[test]
    fn trie_shrinks_q3_dict() {
        let spec = PartitionSpec::new(&["country", "table_name"], 500);
        let sorted = report_for_query(&store(&BuildOptions::optcols(spec.clone())), Q3).unwrap();
        let trie = report_for_query(&store(&BuildOptions::optdicts(spec)), Q3).unwrap();
        assert!(
            trie.dict_bytes() < sorted.dict_bytes() / 2,
            "trie {} vs sorted {}",
            trie.dict_bytes(),
            sorted.dict_bytes()
        );
    }

    #[test]
    fn compression_reduces_reported_bytes() {
        let s = store(&BuildOptions::basic());
        let uncompressed = report_for_query(&s, Q3).unwrap().total();
        let compressed = compressed_for_query(&s, Q3, CodecKind::Zippy).unwrap();
        assert!(compressed < uncompressed, "{compressed} vs {uncompressed}");
    }

    #[test]
    fn reorder_improves_compressed_chunks() {
        let spec = PartitionSpec::new(&["country", "table_name"], 500);
        let plain = store(&BuildOptions::optdicts(spec.clone()));
        let reordered = store(&BuildOptions::reordered(spec));
        let a = compressed_chunks_for_query(&plain, Q3, CodecKind::Zippy).unwrap();
        let b = compressed_chunks_for_query(&reordered, Q3, CodecKind::Zippy).unwrap();
        assert!(b < a, "reorder must improve compression: {b} vs {a}");
    }
}
