//! Build configuration: the §3 optimization ladder as options.
//!
//! Each of the paper's successive variants (Table 4) is a named
//! constructor, so experiments can build the same dataset six ways and
//! diff the memory reports.

use pd_compress::CodecKind;
use pd_encoding::ElementsMode;

/// How string global-dictionaries are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DictMode {
    /// Sorted array + binary search (the "canonical" §2.3 layout).
    #[default]
    Sorted,
    /// Hand-crafted 4-bit trie ("OptDicts", §3).
    Trie,
}

/// Composite range partitioning configuration (§2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Ordered fields — "3–5 fields which amount to a 'natural primary
    /// key'". Split attempts use the first field with ≥ 2 distinct values
    /// remaining in the chunk.
    pub fields: Vec<String>,
    /// Stop splitting once no chunk exceeds this many rows (the paper's
    /// example threshold is 50'000).
    pub max_chunk_rows: usize,
}

impl PartitionSpec {
    pub fn new(fields: &[&str], max_chunk_rows: usize) -> Self {
        PartitionSpec { fields: fields.iter().map(|s| (*s).to_owned()).collect(), max_chunk_rows }
    }
}

/// Options controlling the import pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildOptions {
    /// `None` treats the whole table as one chunk ("Basic").
    pub partition: Option<PartitionSpec>,
    /// Element array encoding.
    pub elements: ElementsMode,
    /// String dictionary representation.
    pub dicts: DictMode,
    /// Lexicographic row reordering by the partition field order (§3
    /// "Reordering Rows"). Ignored without a partition spec.
    pub reorder: bool,
    /// Codec used by the compressed in-memory layer and the compressed-size
    /// reports (Tables 3–4).
    pub codec: CodecKind,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions::reordered(PartitionSpec { fields: Vec::new(), max_chunk_rows: 50_000 })
    }
}

impl BuildOptions {
    /// "Basic" (§2.3): one chunk, 32-bit elements, sorted-array dicts.
    pub fn basic() -> Self {
        BuildOptions {
            partition: None,
            elements: ElementsMode::Basic,
            dicts: DictMode::Sorted,
            reorder: false,
            codec: CodecKind::Zippy,
        }
    }

    /// "Chunks" (§3): partitioned, otherwise basic.
    pub fn chunked(spec: PartitionSpec) -> Self {
        BuildOptions { partition: Some(spec), ..BuildOptions::basic() }
    }

    /// "OptCols" (§3): + adaptive element encodings.
    pub fn optcols(spec: PartitionSpec) -> Self {
        BuildOptions { elements: ElementsMode::Optimized, ..BuildOptions::chunked(spec) }
    }

    /// "OptDicts" (§3): + trie string dictionaries.
    pub fn optdicts(spec: PartitionSpec) -> Self {
        BuildOptions { dicts: DictMode::Trie, ..BuildOptions::optcols(spec) }
    }

    /// "Reorder" (§3): + lexicographic row reordering (the Zippy step of
    /// the ladder is a measurement over any of these builds, not a distinct
    /// layout).
    pub fn reordered(spec: PartitionSpec) -> Self {
        BuildOptions { reorder: true, ..BuildOptions::optdicts(spec) }
    }

    /// The production-style default for a dataset with the given natural
    /// key fields.
    pub fn production(fields: &[&str]) -> Self {
        BuildOptions::reordered(PartitionSpec::new(fields, 50_000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        let spec = PartitionSpec::new(&["country", "table_name"], 50_000);
        let basic = BuildOptions::basic();
        assert!(basic.partition.is_none());
        assert_eq!(basic.elements, ElementsMode::Basic);

        let chunks = BuildOptions::chunked(spec.clone());
        assert!(chunks.partition.is_some());
        assert_eq!(chunks.elements, ElementsMode::Basic);

        let optcols = BuildOptions::optcols(spec.clone());
        assert_eq!(optcols.elements, ElementsMode::Optimized);
        assert_eq!(optcols.dicts, DictMode::Sorted);

        let optdicts = BuildOptions::optdicts(spec.clone());
        assert_eq!(optdicts.dicts, DictMode::Trie);
        assert!(!optdicts.reorder);

        let reorder = BuildOptions::reordered(spec);
        assert!(reorder.reorder);
    }

    #[test]
    fn partition_spec_holds_field_order() {
        let spec = PartitionSpec::new(&["country", "table_name"], 1000);
        assert_eq!(spec.fields, vec!["country".to_owned(), "table_name".to_owned()]);
        assert_eq!(spec.max_chunk_rows, 1000);
    }
}
