//! Composite range partitioning (§2.2).
//!
//! *"the user chooses an ordered set of fields [...]. At the start the data
//! is seen as one large chunk. Successively, the largest chunk is split into
//! two (ideally evenly balanced) chunks. For such a split the chosen fields
//! are considered in the given order. The first field with at least two
//! remaining distinct values is used to essentially do a range split [...].
//! The iteration is stopped once no chunk with more rows than a given
//! threshold, e.g., 50'000, exists. This 'heaviest first' splitting
//! generally leads to very evenly distributed chunk sizes."*
//!
//! The splitter works on the *global-ids* of the partition fields: ids are
//! rank-order isomorphic to the values (§2.3 dictionaries are sorted), so a
//! range split on ids is a range split on values.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The result of partitioning: a row permutation and chunk boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// `row_order[new_position] = original_row_index`.
    pub row_order: Vec<u32>,
    /// Chunk `c` holds new positions `chunk_starts[c] .. chunk_starts[c+1]`;
    /// length is `chunk_count() + 1`.
    pub chunk_starts: Vec<u32>,
}

impl Partitioning {
    /// Trivial partitioning: one chunk, original order.
    pub fn single_chunk(n_rows: usize) -> Partitioning {
        Partitioning {
            row_order: (0..n_rows as u32).collect(),
            chunk_starts: vec![0, n_rows as u32],
        }
    }

    pub fn chunk_count(&self) -> usize {
        self.chunk_starts.len() - 1
    }

    /// The new-position range of chunk `c`.
    pub fn chunk_range(&self, c: usize) -> std::ops::Range<usize> {
        self.chunk_starts[c] as usize..self.chunk_starts[c + 1] as usize
    }

    /// Row count of the largest chunk.
    pub fn max_chunk_rows(&self) -> usize {
        (0..self.chunk_count()).map(|c| self.chunk_range(c).len()).max().unwrap_or(0)
    }

    /// Extend with appended rows, kept in arrival order: the permutation
    /// gains identity entries (appended row `i` stays at position
    /// `old_rows + i`) and each length in `chunk_lens` becomes one new
    /// chunk. Appended data is *not* re-partitioned — the composite range
    /// invariant holds only for the chunks built at import time.
    pub fn append_identity_chunks(&mut self, chunk_lens: &[usize]) {
        for &len in chunk_lens {
            let start = self.row_order.len() as u32;
            self.row_order.extend(start..start + len as u32);
            self.chunk_starts.push(self.row_order.len() as u32);
        }
    }
}

/// Partition `n_rows` rows by the ordered `key_columns` (global-ids per
/// partition field, in original row order), stopping once every chunk is at
/// most `max_chunk_rows` (or unsplittable).
pub fn partition(key_columns: &[&[u32]], n_rows: usize, max_chunk_rows: usize) -> Partitioning {
    if n_rows == 0 {
        return Partitioning { row_order: Vec::new(), chunk_starts: vec![0] };
    }
    let max_chunk_rows = max_chunk_rows.max(1);
    if key_columns.is_empty() || n_rows <= max_chunk_rows {
        return Partitioning::single_chunk(n_rows);
    }

    // Work chunks as index vectors; a max-heap drives heaviest-first.
    let mut chunks: Vec<Vec<u32>> = vec![(0..n_rows as u32).collect()];
    let mut heap: BinaryHeap<(usize, Reverse<usize>)> = BinaryHeap::new();
    heap.push((n_rows, Reverse(0)));

    while let Some((size, Reverse(idx))) = heap.pop() {
        if size <= max_chunk_rows {
            // Heaviest chunk is small enough — all others are too.
            heap.push((size, Reverse(idx)));
            break;
        }
        // Unsplittable chunks (one distinct value in every key field) are
        // kept as they are and not re-queued.
        if let Some((left, right)) = split_chunk(&chunks[idx], key_columns) {
            heap.push((left.len(), Reverse(idx)));
            heap.push((right.len(), Reverse(chunks.len())));
            chunks[idx] = left;
            chunks.push(right);
        }
    }

    // Restore the original (import) row order within each chunk; the §3
    // lexicographic reorder is a separate, optional step applied later.
    for chunk in &mut chunks {
        chunk.sort_unstable();
    }
    // Deterministic chunk order: by the lexicographically smallest key
    // tuple occurring in the chunk.
    let mut order: Vec<usize> = (0..chunks.len()).collect();
    order.sort_by_cached_key(|&c| {
        chunks[c]
            .iter()
            .map(|&r| key_columns.iter().map(|col| col[r as usize]).collect::<Vec<u32>>())
            .min()
            .expect("chunks are non-empty")
    });

    let mut row_order = Vec::with_capacity(n_rows);
    let mut chunk_starts = Vec::with_capacity(chunks.len() + 1);
    chunk_starts.push(0u32);
    for &c in &order {
        row_order.extend_from_slice(&chunks[c]);
        chunk_starts.push(row_order.len() as u32);
    }
    Partitioning { row_order, chunk_starts }
}

/// Split one chunk by the first key field with ≥ 2 distinct values,
/// choosing the value boundary closest to the middle. Returns `None` if
/// every field is constant within the chunk.
fn split_chunk(rows: &[u32], key_columns: &[&[u32]]) -> Option<(Vec<u32>, Vec<u32>)> {
    for col in key_columns {
        let first_id = col[rows[0] as usize];
        if rows.iter().all(|&r| col[r as usize] == first_id) {
            continue;
        }
        // Sort row indices by this field's id (stable to preserve the
        // original order inside each side).
        let mut sorted: Vec<u32> = rows.to_vec();
        sorted.sort_by_key(|&r| col[r as usize]);

        // Candidate split positions are value boundaries; pick the one
        // closest to the middle.
        let mid = sorted.len() / 2;
        let mut best: Option<usize> = None;
        // Scan outward from the middle for the nearest boundary.
        for delta in 0..sorted.len() {
            for pos in [mid.saturating_sub(delta), (mid + delta).min(sorted.len() - 1)] {
                if pos == 0 || pos >= sorted.len() {
                    continue;
                }
                if col[sorted[pos - 1] as usize] != col[sorted[pos] as usize] {
                    best = Some(pos);
                    break;
                }
            }
            if best.is_some() {
                break;
            }
        }
        let cut = best.expect("field has >= 2 distinct values, a boundary exists");
        let right = sorted.split_off(cut);
        return Some((sorted, right));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks structural invariants and returns per-chunk row lists.
    fn validate(p: &Partitioning, n_rows: usize) -> Vec<Vec<u32>> {
        assert_eq!(p.row_order.len(), n_rows);
        let mut seen = vec![false; n_rows];
        for &r in &p.row_order {
            assert!(!seen[r as usize], "row {r} appears twice");
            seen[r as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "permutation must cover all rows");
        assert_eq!(p.chunk_starts[0], 0);
        assert_eq!(*p.chunk_starts.last().unwrap() as usize, n_rows);
        (0..p.chunk_count()).map(|c| p.row_order[p.chunk_range(c)].to_vec()).collect()
    }

    #[test]
    fn single_chunk_when_small() {
        let ids: Vec<u32> = (0..10).collect();
        let p = partition(&[&ids], 10, 50);
        assert_eq!(p.chunk_count(), 1);
        validate(&p, 10);
    }

    #[test]
    fn splits_until_threshold() {
        // 1000 rows, key = row % 100 (100 distinct values).
        let ids: Vec<u32> = (0..1000u32).map(|i| i % 100).collect();
        let p = partition(&[&ids], 1000, 64);
        validate(&p, 1000);
        assert!(p.max_chunk_rows() <= 64, "largest chunk {}", p.max_chunk_rows());
        // Balanced-ish: no chunk under a sixteenth of the threshold unless
        // forced (here values spread evenly, so chunks are healthy).
        assert!(p.chunk_count() >= 1000 / 64);
    }

    #[test]
    fn chunks_are_id_range_disjoint() {
        // After splitting on one field, chunks must occupy disjoint id
        // ranges of that field (it's a *range* partition).
        let ids: Vec<u32> = (0..500u32).map(|i| (i * 7) % 50).collect();
        let p = partition(&[&ids], 500, 60);
        let chunks = validate(&p, 500);
        let ranges: Vec<(u32, u32)> = chunks
            .iter()
            .map(|rows| {
                let vals: Vec<u32> = rows.iter().map(|&r| ids[r as usize]).collect();
                (*vals.iter().min().unwrap(), *vals.iter().max().unwrap())
            })
            .collect();
        let mut sorted = ranges.clone();
        sorted.sort();
        for pair in sorted.windows(2) {
            assert!(pair[0].1 < pair[1].0, "overlapping ranges {pair:?}");
        }
    }

    #[test]
    fn second_field_used_when_first_exhausted() {
        // First field constant; second field must drive the split.
        let first = vec![7u32; 400];
        let second: Vec<u32> = (0..400u32).map(|i| i % 20).collect();
        let p = partition(&[&first, &second], 400, 50);
        validate(&p, 400);
        assert!(p.chunk_count() > 1, "second field must enable splitting");
        assert!(p.max_chunk_rows() <= 50);
    }

    #[test]
    fn unsplittable_chunk_survives_oversized() {
        // A single dominant value cannot be split below the threshold.
        let mut ids = vec![0u32; 300];
        ids.extend([1u32, 2, 3]);
        let p = partition(&[&ids], 303, 100);
        validate(&p, 303);
        // The heavy id=0 chunk stays oversized but everything still works.
        assert!(p.max_chunk_rows() >= 300);
    }

    #[test]
    fn heaviest_first_balances_sizes() {
        // Uniform ids: sizes should end up within a factor ~2 of each other
        // (the bisector analysis the paper cites).
        let ids: Vec<u32> = (0..4096u32).collect();
        let p = partition(&[&ids], 4096, 300);
        let sizes: Vec<usize> = (0..p.chunk_count()).map(|c| p.chunk_range(c).len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max <= 300);
        assert!(min * 4 >= max, "sizes too skewed: min={min} max={max}");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let p = partition(&[], 0, 10);
        assert_eq!(p.chunk_count(), 0);
        let ids: Vec<u32> = vec![];
        let p = partition(&[&ids], 0, 10);
        assert_eq!(p.row_order.len(), 0);
        // No key columns: one big chunk regardless of threshold.
        let p = partition(&[], 100, 10);
        assert_eq!(p.chunk_count(), 1);
        validate(&p, 100);
    }

    #[test]
    fn chunk_order_follows_key_ranges() {
        let ids: Vec<u32> = (0..1000u32).map(|i| i % 10).collect();
        let p = partition(&[&ids], 1000, 200);
        let chunks = validate(&p, 1000);
        // Chunks sorted by their minimum id.
        let mins: Vec<u32> = chunks
            .iter()
            .map(|rows| rows.iter().map(|&r| ids[r as usize]).min().unwrap())
            .collect();
        let mut sorted = mins.clone();
        sorted.sort_unstable();
        assert_eq!(mins, sorted);
    }
}
