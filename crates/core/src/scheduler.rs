//! Morsel-driven parallel task execution over immutable chunks.
//!
//! The paper's layout makes every chunk independently scannable: chunk
//! dictionaries and element arrays are immutable after import, per-chunk
//! group states are mergeable (§4 relies on exactly this to aggregate
//! across machines). This module exploits the same property across cores:
//! a query's active chunks become a work queue, a **persistent worker
//! pool** pulls tasks off a shared atomic cursor (morsel-at-a-time, so
//! load imbalance between cheap and expensive chunks self-corrects), and
//! each worker's results are returned to the caller *in task order* so the
//! final fold is deterministic — parallel execution is bit-identical to
//! sequential execution regardless of thread count.
//!
//! The pool is spawned once and reused by every query (and by the
//! distributed layer's shard fan-out), eliminating the per-query thread
//! spawn cost (~50 µs with `std::thread::scope`) that dominates µs-scale
//! cached queries. Waiting submitters *help*: while a fan-out waits for
//! its straggler tasks it drains other queued jobs, so nested fan-outs
//! (shards on the outside, chunks on the inside) cannot deadlock a
//! fixed-size pool.

use pd_common::sync::Mutex;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, OnceLock};
use std::time::Duration;

/// Number of worker threads for `threads = 0` (auto): the machine's
/// available parallelism.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Resolve the default thread count for `ExecContext::threads == 0`: the
/// `EXEC_THREADS` environment variable when set to a positive integer
/// (used by CI to force the concurrent paths), the machine's available
/// parallelism otherwise. Resolved once — it is launch-time configuration,
/// and reading the environment takes a process-global lock this would
/// otherwise put on every query's hot path.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| threads_from_env(std::env::var("EXEC_THREADS").ok().as_deref()))
}

fn threads_from_env(value: Option<&str>) -> usize {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(available_threads)
}

/// A queued unit of work. Jobs are type-erased closures whose borrows are
/// guaranteed (by the submitting call, which blocks until every job it
/// queued has finished) to outlive the job.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signaled when jobs are queued (workers sleep on this).
    available: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    fn pop(&self) -> Option<Job> {
        self.queue.lock().pop_front()
    }
}

/// A persistent pool of worker threads executing queued jobs.
///
/// Submission is *scoped*: [`WorkerPool::run_tasks`] queues helper jobs
/// that borrow from the caller's stack and does not return until all of
/// them have completed, so the borrows stay valid — the classic scoped
/// thread-pool contract, amortizing thread spawns across queries.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    /// Create a pool with `initial` pre-spawned workers; the pool grows on
    /// demand when a fan-out requests more helpers than exist.
    pub fn new(initial: usize) -> WorkerPool {
        let pool = WorkerPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            workers: Mutex::new(Vec::new()),
        };
        pool.ensure_workers(initial);
        pool
    }

    /// The process-wide shared pool (lazily created, never torn down).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(0))
    }

    /// Number of worker threads currently alive.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }

    /// Grow the pool to at least `n` workers.
    fn ensure_workers(&self, n: usize) {
        let mut workers = self.workers.lock();
        while workers.len() < n {
            let shared = self.shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("pd-worker-{}", workers.len()))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
            workers.push(handle);
        }
    }

    /// Run `n_tasks` tasks on up to `threads` workers (the calling thread
    /// participates), returning the results in task order.
    ///
    /// `run` is invoked exactly once per task index. Errors short-circuit:
    /// the first failing task's error is returned and the remaining queue
    /// is abandoned (workers drain out at the next poll). Panics in `run`
    /// propagate to the caller after all helpers have stopped. With
    /// `threads <= 1` (or a single task) everything runs inline on the
    /// caller's thread — no queueing, identical code path.
    pub fn run_tasks<T, F>(
        &self,
        threads: usize,
        n_tasks: usize,
        run: F,
    ) -> pd_common::Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> pd_common::Result<T> + Sync,
    {
        let threads = threads.max(1).min(n_tasks.max(1));
        if threads <= 1 || n_tasks <= 1 {
            return (0..n_tasks).map(&run).collect();
        }

        let helpers = threads - 1;
        self.ensure_workers(helpers);
        let group: TaskGroup<T> = TaskGroup {
            cursor: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            n_tasks,
            results: Mutex::new(Vec::new()),
            error: Mutex::new(None),
            panic: Mutex::new(None),
            remaining: Mutex::new(helpers),
            done: Condvar::new(),
        };

        {
            let mut queue = self.shared.queue.lock();
            for _ in 0..helpers {
                let g: &TaskGroup<T> = &group;
                let r: &F = &run;
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || helper_job(g, r));
                // SAFETY: the transmute only erases the closure's lifetime
                // (`Box<dyn FnOnce + Send + '_>` -> `'static`); the vtable and
                // layout are unchanged. The borrows of `group` and `run` it
                // captures live on this stack frame, and this function cannot
                // return before every queued helper job has finished: the
                // wait loops below block until `group.remaining == 0`, and
                // `helper_job` decrements `remaining` only after its last use
                // of those borrows. A panic on this thread is caught by the
                // `catch_unwind` below, so no unwind can pop the frame while
                // a helper still borrows from it.
                let job: Job = unsafe { std::mem::transmute(job) };
                queue.push_back(job);
            }
        }
        self.shared.available.notify_all();

        // The caller is the first worker; its panics are caught so the
        // latch below always gets to run before any unwind escapes (the
        // queued helper jobs borrow from this stack frame).
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            group.work(&run);
        })) {
            group.record_panic(payload);
        }

        // Wait for the helpers. A submitter running *on a pool worker*
        // (a nested fan-out) must keep draining queued jobs while it
        // waits — every blocked worker doubling as a worker is what makes
        // the fixed-size pool deadlock-free. An external submitter (a
        // query's driver thread) just sleeps: at least one real worker
        // exists (`ensure_workers`) and workers never sleep on groups, so
        // queued jobs always make progress — and the driver never gets
        // stuck inside some other query's long-running job.
        if IS_POOL_WORKER.with(std::cell::Cell::get) {
            loop {
                if *group.remaining.lock() == 0 {
                    break;
                }
                match self.shared.pop() {
                    Some(job) => run_stolen(job),
                    None => {
                        let remaining = group.remaining.lock();
                        if *remaining == 0 {
                            break;
                        }
                        let _ = group
                            .done
                            .wait_timeout(remaining, Duration::from_micros(200))
                            .unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        } else {
            let mut remaining = group.remaining.lock();
            while *remaining > 0 {
                remaining = group.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
            }
        }

        if let Some(payload) = group.panic.lock().take() {
            std::panic::resume_unwind(payload);
        }
        if let Some(error) = group.error.lock().take() {
            return Err(error);
        }
        let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
        for (i, t) in group.results.lock().drain(..) {
            slots[i] = Some(t);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every task index was claimed exactly once"))
            .collect())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // The store must happen under the queue lock: a worker that has
        // checked `shutdown` but not yet parked still holds that lock, so
        // storing under it orders the flag before every future park and
        // the notify below cannot be missed.
        {
            let _queue = self.shared.queue.lock();
            self.shared.shutdown.store(true, Ordering::Relaxed);
        }
        self.shared.available.notify_all();
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

thread_local! {
    /// Set for the lifetime of a pool worker thread: such threads must
    /// never sleep while waiting for a fan-out (they steal queued jobs
    /// instead), or nested fan-outs could deadlock the fixed-size pool.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };

    /// Monotone per-thread total of time spent executing *stolen* jobs —
    /// work this thread drained from the queue while waiting for its own
    /// fan-out. Callers timing their own work with wall clocks subtract
    /// the delta (see [`stolen_time`]), so a task's measured latency is
    /// not inflated by whole foreign subqueries it happened to help with.
    static STOLEN_TIME: std::cell::Cell<Duration> = const { std::cell::Cell::new(Duration::ZERO) };
}

/// This thread's cumulative stolen-job time. Snapshot before and after a
/// timed region and subtract the delta from the wall-clock measurement.
pub fn stolen_time() -> Duration {
    STOLEN_TIME.with(std::cell::Cell::get)
}

/// Run a stolen job, charging its wall time to [`STOLEN_TIME`] exactly
/// once: nested steals inside the job already charged themselves, so the
/// cell is *set* to `before + wall` rather than incremented (wall time
/// subsumes the nested additions).
fn run_stolen(job: Job) {
    let before = STOLEN_TIME.with(std::cell::Cell::get);
    let started = std::time::Instant::now();
    job();
    STOLEN_TIME.with(|cell| cell.set(before + started.elapsed()));
}

fn worker_loop(shared: &PoolShared) {
    IS_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        let job = {
            let mut queue = shared.queue.lock();
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.available.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        job();
    }
}

/// Shared state of one `run_tasks` fan-out.
struct TaskGroup<T> {
    cursor: AtomicUsize,
    failed: AtomicBool,
    n_tasks: usize,
    results: Mutex<Vec<(usize, T)>>,
    error: Mutex<Option<pd_common::Error>>,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Helper jobs not yet finished; guarded by a mutex so the submitter
    /// can sleep on `done`.
    remaining: Mutex<usize>,
    done: Condvar,
}

impl<T: Send> TaskGroup<T> {
    /// Claim and run tasks until the cursor (or the group) is exhausted.
    fn work<F>(&self, run: &F)
    where
        F: Fn(usize) -> pd_common::Result<T> + Sync,
    {
        let mut local: Vec<(usize, T)> = Vec::new();
        loop {
            if self.failed.load(Ordering::Relaxed) {
                break;
            }
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                break;
            }
            match run(i) {
                Ok(t) => local.push((i, t)),
                Err(e) => {
                    self.failed.store(true, Ordering::Relaxed);
                    let mut slot = self.error.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    break;
                }
            }
        }
        if !local.is_empty() {
            self.results.lock().extend(local);
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        self.failed.store(true, Ordering::Relaxed);
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

fn helper_job<T, F>(group: &TaskGroup<T>, run: &F)
where
    T: Send,
    F: Fn(usize) -> pd_common::Result<T> + Sync,
{
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        group.work(run);
    })) {
        group.record_panic(payload);
    }
    let mut remaining = group.remaining.lock();
    *remaining -= 1;
    group.done.notify_all();
}

/// Run `n_tasks` tasks on the process-wide pool, returning the results in
/// task order (see [`WorkerPool::run_tasks`]).
pub fn run_tasks<T, F>(threads: usize, n_tasks: usize, run: F) -> pd_common::Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> pd_common::Result<T> + Sync,
{
    WorkerPool::global().run_tasks(threads, n_tasks, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::Error;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_tasks(threads, 100, |i| Ok(i * i)).unwrap();
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_tasks(4, 1000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(i)
        })
        .unwrap();
        assert_eq!(out.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn errors_propagate_and_stop_the_queue() {
        let calls = AtomicUsize::new(0);
        let result: pd_common::Result<Vec<usize>> = run_tasks(4, 10_000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 17 {
                Err(Error::Internal("boom".into()))
            } else {
                Ok(i)
            }
        });
        assert!(result.is_err());
        assert!(
            calls.load(Ordering::Relaxed) < 10_000,
            "the failure flag should abandon most of the queue"
        );
    }

    #[test]
    fn zero_and_single_task_edge_cases() {
        assert!(run_tasks(8, 0, |_| Ok(())).unwrap().is_empty());
        assert_eq!(run_tasks(8, 1, Ok).unwrap(), vec![0]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn env_knob_parses_positive_integers_only() {
        assert_eq!(threads_from_env(Some("2")), 2);
        assert_eq!(threads_from_env(Some(" 16 ")), 16);
        assert_eq!(threads_from_env(Some("0")), available_threads());
        assert_eq!(threads_from_env(Some("banana")), available_threads());
        assert_eq!(threads_from_env(None), available_threads());
    }

    #[test]
    fn pool_workers_persist_across_calls() {
        let pool = WorkerPool::new(0);
        pool.run_tasks(4, 64, Ok).unwrap();
        let after_first = pool.worker_count();
        assert_eq!(after_first, 3, "threads-1 helpers (the caller participates)");
        for _ in 0..10 {
            pool.run_tasks(4, 64, Ok).unwrap();
        }
        assert_eq!(pool.worker_count(), after_first, "no re-spawn on later queries");
        pool.run_tasks(8, 64, Ok).unwrap();
        assert_eq!(pool.worker_count(), 7, "the pool grows on demand");
    }

    #[test]
    fn nested_fan_out_does_not_deadlock() {
        // Shards on the outside, chunks on the inside, all on one shared
        // pool that is smaller than the total helper demand.
        let pool = WorkerPool::new(2);
        let out = pool
            .run_tasks(4, 8, |outer| {
                let inner = pool.run_tasks(4, 16, |i| Ok(outer * 100 + i))?;
                Ok(inner.iter().sum::<usize>())
            })
            .unwrap();
        let expect: Vec<usize> = (0..8).map(|o| (0..16).map(|i| o * 100 + i).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = WorkerPool::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.run_tasks(4, 100, |i| {
                if i == 50 {
                    panic!("task exploded");
                }
                Ok(i)
            });
        }));
        assert!(result.is_err(), "the task panic must surface");
        // The pool must still be usable afterwards.
        assert_eq!(pool.run_tasks(4, 10, Ok).unwrap().len(), 10);
    }
}
