//! Morsel-driven parallel task execution over immutable chunks.
//!
//! The paper's layout makes every chunk independently scannable: chunk
//! dictionaries and element arrays are immutable after import, per-chunk
//! group states are mergeable (§4 relies on exactly this to aggregate
//! across machines). This module exploits the same property across cores:
//! a query's active chunks become a work queue, a `std::thread::scope`
//! worker pool pulls tasks off a shared atomic cursor (morsel-at-a-time, so
//! load imbalance between cheap and expensive chunks self-corrects), and
//! each worker's results are returned to the caller *in task order* so the
//! final fold is deterministic — parallel execution is bit-identical to
//! sequential execution regardless of thread count.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Number of worker threads for `threads = 0` (auto): the machine's
/// available parallelism.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Run `n_tasks` tasks on up to `threads` workers, returning the results in
/// task order.
///
/// `run` is invoked exactly once per task index. Errors short-circuit: the
/// first failing task's error is returned and the remaining queue is
/// abandoned (workers drain out at the next poll). With `threads <= 1` (or
/// a single task) everything runs inline on the caller's thread — no
/// spawning, identical code path.
pub fn run_tasks<T, F>(threads: usize, n_tasks: usize, run: F) -> pd_common::Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> pd_common::Result<T> + Sync,
{
    let threads = threads.max(1).min(n_tasks.max(1));
    if threads <= 1 || n_tasks <= 1 {
        return (0..n_tasks).map(&run).collect();
    }

    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let worker = || -> pd_common::Result<Vec<(usize, T)>> {
        let mut out = Vec::new();
        loop {
            if failed.load(Ordering::Relaxed) {
                break;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n_tasks {
                break;
            }
            match run(i) {
                Ok(t) => out.push((i, t)),
                Err(e) => {
                    failed.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
        Ok(out)
    };

    let buckets: Vec<pd_common::Result<Vec<(usize, T)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
    for bucket in buckets {
        for (i, t) in bucket? {
            slots[i] = Some(t);
        }
    }
    Ok(slots.into_iter().map(|s| s.expect("every task index was claimed exactly once")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::Error;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_tasks(threads, 100, |i| Ok(i * i)).unwrap();
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_tasks(4, 1000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(i)
        })
        .unwrap();
        assert_eq!(out.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn errors_propagate_and_stop_the_queue() {
        let calls = AtomicUsize::new(0);
        let result: pd_common::Result<Vec<usize>> = run_tasks(4, 10_000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 17 {
                Err(Error::Internal("boom".into()))
            } else {
                Ok(i)
            }
        });
        assert!(result.is_err());
        assert!(
            calls.load(Ordering::Relaxed) < 10_000,
            "the failure flag should abandon most of the queue"
        );
    }

    #[test]
    fn zero_and_single_task_edge_cases() {
        assert!(run_tasks(8, 0, |_| Ok(())).unwrap().is_empty());
        assert_eq!(run_tasks(8, 1, Ok).unwrap(), vec![0]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
