//! Chunk activity analysis — the skipping decision of §2.4.
//!
//! For each chunk, the restriction tree is evaluated against the chunk
//! dictionaries into a three-valued verdict:
//!
//! - [`ChunkActivity::Skip`] — no row can match; the chunk is not scanned
//!   (92.41 % of production records, §6);
//! - [`ChunkActivity::Full`] — every row matches; the result for this chunk
//!   can come from the chunk-result cache (§6: "we also cache results for
//!   chunks which are fully active");
//! - [`ChunkActivity::Partial`] — some rows may match; the chunk is scanned
//!   with a row-level filter.

use crate::datastore::DataStore;
use pd_common::{FxHashMap, Result};
use pd_sql::Restriction;

/// Three-valued chunk verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkActivity {
    /// No row of the chunk can satisfy the restriction.
    Skip,
    /// Every row of the chunk satisfies the restriction.
    Full,
    /// Mixed — scan with a row filter.
    Partial,
}

impl ChunkActivity {
    /// Conjunction of two *sound* verdicts over the same chunk: any proof
    /// of emptiness wins, Full survives only when both sides prove it.
    /// Public because remote metadata verdicts (computed by a parent from
    /// a shard's zone maps) compose with the local dictionary verdicts
    /// through exactly this lattice.
    pub fn and(self, other: ChunkActivity) -> ChunkActivity {
        use ChunkActivity::*;
        match (self, other) {
            (Skip, _) | (_, Skip) => Skip,
            (Full, Full) => Full,
            _ => Partial,
        }
    }

    fn or(self, other: ChunkActivity) -> ChunkActivity {
        use ChunkActivity::*;
        match (self, other) {
            (Full, _) | (_, Full) => Full,
            (Skip, Skip) => Skip,
            _ => Partial,
        }
    }
}

/// Pre-resolved restriction: literal values translated to sorted global-id
/// lists per field (done once per query, not per chunk).
pub struct ResolvedRestriction {
    node: ResolvedNode,
}

enum ResolvedNode {
    True,
    And(Vec<ResolvedNode>),
    Or(Vec<ResolvedNode>),
    In {
        /// Index into the fields list.
        field: usize,
        /// Sorted global-ids of the restriction's literals that exist in
        /// the dictionary.
        ids: Vec<u32>,
        /// Did every literal resolve? (If not, `NOT IN` can never be Full
        /// by subset reasoning alone — absent literals match no row, which
        /// only *helps* `NOT IN`, so this flag is unused there; it is kept
        /// for clarity.)
        negated: bool,
    },
    /// Half-open global-id interval `[lo, hi)`: the extension range
    /// restriction (value order == id order in sorted dictionaries).
    Range {
        field: usize,
        lo: u32,
        hi: u32,
    },
    Opaque,
}

/// The per-query skipping context: resolved restriction + the stored
/// columns it touches.
pub struct SkipAnalysis {
    resolved: ResolvedRestriction,
    columns: Vec<std::sync::Arc<crate::column::StoredColumn>>,
    /// Externally supplied verdicts (one per chunk), typically computed by
    /// a tree parent from shard metadata and shipped down with the query.
    /// Each seed must be *sound* for the same restriction: a `Skip` seed is
    /// a proof and short-circuits the local evaluation entirely; other
    /// seeds compose with the local verdict through [`ChunkActivity::and`].
    seeds: Option<Vec<ChunkActivity>>,
}

impl SkipAnalysis {
    /// Resolve `restriction` against `store`, materializing any virtual
    /// fields it references (§5: restrictions on materialized expressions
    /// skip chunks through the expression's own chunk dictionaries).
    pub fn prepare(store: &DataStore, restriction: &Restriction) -> Result<SkipAnalysis> {
        SkipAnalysis::prepare_seeded(store, restriction, None)
    }

    /// [`SkipAnalysis::prepare`], with pre-computed chunk verdicts from a
    /// metadata layer. Seeds beyond the store's chunk count are ignored;
    /// missing seeds fall back to pure local evaluation.
    pub fn prepare_seeded(
        store: &DataStore,
        restriction: &Restriction,
        seeds: Option<Vec<ChunkActivity>>,
    ) -> Result<SkipAnalysis> {
        let mut columns = Vec::new();
        let mut index: FxHashMap<String, usize> = FxHashMap::default();
        let node = resolve(store, restriction, &mut columns, &mut index)?;
        Ok(SkipAnalysis { resolved: ResolvedRestriction { node }, columns, seeds })
    }

    /// Verdict for chunk `c`.
    pub fn activity(&self, c: usize) -> ChunkActivity {
        if let Some(seed) = self.seeds.as_ref().and_then(|s| s.get(c)) {
            // A Skip seed is already a proof — the whole point of seeding
            // is that the scan need not re-derive it from dictionaries.
            if *seed == ChunkActivity::Skip {
                return ChunkActivity::Skip;
            }
            return seed.and(evaluate(&self.resolved.node, &self.columns, c));
        }
        evaluate(&self.resolved.node, &self.columns, c)
    }

    /// Verdicts for every chunk.
    pub fn all(&self, chunk_count: usize) -> Vec<ChunkActivity> {
        (0..chunk_count).map(|c| self.activity(c)).collect()
    }
}

fn resolve(
    store: &DataStore,
    restriction: &Restriction,
    columns: &mut Vec<std::sync::Arc<crate::column::StoredColumn>>,
    index: &mut FxHashMap<String, usize>,
) -> Result<ResolvedNode> {
    Ok(match restriction {
        Restriction::True => ResolvedNode::True,
        Restriction::Opaque => ResolvedNode::Opaque,
        Restriction::And(children) => ResolvedNode::And(
            children.iter().map(|r| resolve(store, r, columns, index)).collect::<Result<_>>()?,
        ),
        Restriction::Or(children) => ResolvedNode::Or(
            children.iter().map(|r| resolve(store, r, columns, index)).collect::<Result<_>>()?,
        ),
        Restriction::In { field, values, negated } => {
            let idx = resolve_column(store, field, columns, index)?;
            let ids = columns[idx].global_ids_of(values);
            ResolvedNode::In { field: idx, ids, negated: *negated }
        }
        Restriction::Range { field, min, max } => {
            let idx = resolve_column(store, field, columns, index)?;
            match columns[idx].dict.range_ids(min.as_ref(), max.as_ref()) {
                // Trie dictionaries / type mismatches cannot rank bounds:
                // fall back to scanning (the row filter still applies).
                None => ResolvedNode::Opaque,
                Some((lo, hi)) => ResolvedNode::Range { field: idx, lo, hi },
            }
        }
    })
}

fn resolve_column(
    store: &DataStore,
    field: &pd_sql::Expr,
    columns: &mut Vec<std::sync::Arc<crate::column::StoredColumn>>,
    index: &mut FxHashMap<String, usize>,
) -> Result<usize> {
    let key = field.canonical();
    if let Some(&i) = index.get(&key) {
        return Ok(i);
    }
    let col = store.column_for_expr(field)?;
    columns.push(col);
    index.insert(key, columns.len() - 1);
    Ok(columns.len() - 1)
}

fn evaluate(
    node: &ResolvedNode,
    columns: &[std::sync::Arc<crate::column::StoredColumn>],
    c: usize,
) -> ChunkActivity {
    match node {
        ResolvedNode::True => ChunkActivity::Full,
        ResolvedNode::Opaque => ChunkActivity::Partial,
        ResolvedNode::And(children) => children
            .iter()
            .map(|n| evaluate(n, columns, c))
            .fold(ChunkActivity::Full, ChunkActivity::and),
        ResolvedNode::Or(children) => children
            .iter()
            .map(|n| evaluate(n, columns, c))
            .fold(ChunkActivity::Skip, ChunkActivity::or),
        ResolvedNode::Range { field, lo, hi } => {
            let dict = &columns[*field].chunks[c].dict;
            let (Some(cmin), Some(cmax)) = (dict.min_global_id(), dict.max_global_id()) else {
                return ChunkActivity::Skip; // empty chunk
            };
            if *lo >= *hi || cmax < *lo || cmin >= *hi {
                ChunkActivity::Skip
            } else if cmin >= *lo && cmax < *hi {
                ChunkActivity::Full
            } else {
                ChunkActivity::Partial
            }
        }
        ResolvedNode::In { field, ids, negated } => {
            let dict = &columns[*field].chunks[c].dict;
            if !*negated {
                if !dict.contains_any(ids) {
                    ChunkActivity::Skip
                } else if dict.subset_of(ids) {
                    ChunkActivity::Full
                } else {
                    ChunkActivity::Partial
                }
            } else {
                // NOT IN: a chunk whose dictionary avoids all the ids is
                // fully active; one entirely inside them is skippable.
                if !dict.contains_any(ids) {
                    ChunkActivity::Full
                } else if dict.subset_of(ids) {
                    ChunkActivity::Skip
                } else {
                    ChunkActivity::Partial
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{BuildOptions, PartitionSpec};
    use pd_common::{DataType, Row, Schema, Value};
    use pd_data::Table;
    use pd_sql::parse_query;

    /// A table partitioned by country into (at least) one chunk per value.
    fn store() -> DataStore {
        let schema = Schema::of(&[("country", DataType::Str), ("latency", DataType::Int)]);
        let mut t = Table::new(schema);
        for i in 0..300i64 {
            let country = ["DE", "FR", "US"][(i % 3) as usize];
            t.push_row(Row(vec![Value::from(country), Value::Int(i)])).unwrap();
        }
        DataStore::build(&t, &BuildOptions::optcols(PartitionSpec::new(&["country"], 100))).unwrap()
    }

    fn verdicts(store: &DataStore, where_sql: &str) -> Vec<ChunkActivity> {
        let q = parse_query(&format!("SELECT COUNT(*) FROM t WHERE {where_sql}")).unwrap();
        let r = Restriction::from_expr(&q.where_clause.unwrap());
        SkipAnalysis::prepare(store, &r).unwrap().all(store.chunk_count())
    }

    #[test]
    fn equality_skips_other_countries() {
        let s = store();
        let v = verdicts(&s, "country = 'DE'");
        assert!(v.contains(&ChunkActivity::Full), "the DE chunk is fully active: {v:?}");
        assert!(v.contains(&ChunkActivity::Skip), "other chunks skip: {v:?}");
        assert!(!v.contains(&ChunkActivity::Partial), "country chunks are pure: {v:?}");
    }

    #[test]
    fn absent_value_skips_everything() {
        let s = store();
        let v = verdicts(&s, "country = 'ZZ'");
        assert!(v.iter().all(|a| *a == ChunkActivity::Skip));
    }

    #[test]
    fn not_in_flips_verdicts() {
        let s = store();
        let v_in = verdicts(&s, "country IN ('DE')");
        let v_not = verdicts(&s, "country NOT IN ('DE')");
        for (a, b) in v_in.iter().zip(&v_not) {
            match a {
                ChunkActivity::Full => assert_eq!(*b, ChunkActivity::Skip),
                ChunkActivity::Skip => assert_eq!(*b, ChunkActivity::Full),
                ChunkActivity::Partial => assert_eq!(*b, ChunkActivity::Partial),
            }
        }
    }

    #[test]
    fn and_or_combine() {
        let s = store();
        let v = verdicts(&s, "country = 'DE' AND country = 'FR'");
        assert!(v.iter().all(|a| *a == ChunkActivity::Skip), "contradiction skips all: {v:?}");
        let v = verdicts(&s, "country = 'DE' OR country = 'FR'");
        let full = v.iter().filter(|a| **a == ChunkActivity::Full).count();
        assert!(full >= 2, "both countries' chunks fully active: {v:?}");
    }

    #[test]
    fn opaque_forces_partial_scan() {
        let s = store();
        let v = verdicts(&s, "latency > 100");
        assert!(v.iter().all(|a| *a == ChunkActivity::Partial));
        // ... but an AND with a discriminative leg still skips.
        let v = verdicts(&s, "country = 'DE' AND latency > 100");
        assert!(v.contains(&ChunkActivity::Skip));
        assert!(!v.contains(&ChunkActivity::Full), "opaque leg prevents Full");
    }

    #[test]
    fn no_restriction_is_fully_active() {
        let s = store();
        let analysis = SkipAnalysis::prepare(&s, &Restriction::True).unwrap();
        assert!(analysis.all(s.chunk_count()).iter().all(|a| *a == ChunkActivity::Full));
    }

    #[test]
    fn virtual_field_restrictions_skip() {
        // §5's example: a restriction on date(timestamp) skips chunks via
        // the materialized virtual field. Timestamps here are chosen so the
        // partitioning on `latency` (a proxy) splits dates across chunks.
        let schema = Schema::of(&[("timestamp", DataType::Int)]);
        let mut t = Table::new(schema);
        for i in 0..400i64 {
            t.push_row(Row(vec![Value::Int(i * 86_400 / 4)])).unwrap(); // 100 days
        }
        let s =
            DataStore::build(&t, &BuildOptions::optcols(PartitionSpec::new(&["timestamp"], 64)))
                .unwrap();
        let v = verdicts(&s, "date(timestamp) IN ('1970-01-05')");
        assert!(v.contains(&ChunkActivity::Skip), "{v:?}");
        assert!(
            v.iter().any(|a| *a != ChunkActivity::Skip),
            "the chunk containing Jan 5 must stay active: {v:?}"
        );
    }

    #[test]
    fn range_restrictions_skip_via_min_max_ids() {
        // Partitioned by latency itself: chunks occupy disjoint latency
        // ranges, so a range restriction skips cleanly.
        let schema = Schema::of(&[("latency", DataType::Int)]);
        let mut t = Table::new(schema);
        for i in 0..400i64 {
            t.push_row(Row(vec![Value::Int(i)])).unwrap();
        }
        let s = DataStore::build(&t, &BuildOptions::optcols(PartitionSpec::new(&["latency"], 64)))
            .unwrap();
        let v = verdicts(&s, "latency > 350");
        assert!(v.contains(&ChunkActivity::Skip), "{v:?}");
        assert!(v.iter().any(|a| *a != ChunkActivity::Skip), "rows above 350 exist: {v:?}");
        // Fully-covered chunks are recognized.
        let v = verdicts(&s, "latency >= 0");
        assert!(v.iter().all(|a| *a == ChunkActivity::Full), "{v:?}");
        // Exclusive vs inclusive boundaries.
        let v_lt = verdicts(&s, "latency < 0");
        assert!(v_lt.iter().all(|a| *a == ChunkActivity::Skip), "{v_lt:?}");
        let v_le = verdicts(&s, "latency <= 0");
        assert!(v_le.iter().any(|a| *a != ChunkActivity::Skip), "{v_le:?}");
        // Two-sided ranges via AND.
        let v = verdicts(&s, "latency >= 100 AND latency < 130");
        let active = v.iter().filter(|a| **a != ChunkActivity::Skip).count();
        assert!(active <= 2, "narrow band touches few chunks: {v:?}");
    }

    #[test]
    fn float_ranges_against_int_columns() {
        let schema = Schema::of(&[("n", DataType::Int)]);
        let mut t = Table::new(schema);
        for i in 0..100i64 {
            t.push_row(Row(vec![Value::Int(i)])).unwrap();
        }
        let s =
            DataStore::build(&t, &BuildOptions::optcols(PartitionSpec::new(&["n"], 20))).unwrap();
        // 99.5 excludes everything below 100 — all chunks skip.
        let v = verdicts(&s, "n > 99.5");
        assert!(v.iter().all(|a| *a == ChunkActivity::Skip), "{v:?}");
        // > 98.0 keeps only the last chunk.
        let v = verdicts(&s, "n > 98.0");
        assert_eq!(v.iter().filter(|a| **a != ChunkActivity::Skip).count(), 1, "{v:?}");
    }

    #[test]
    fn seeds_short_circuit_and_compose_soundly() {
        let s = store();
        let q = parse_query("SELECT COUNT(*) FROM t WHERE latency > 100").unwrap();
        let r = Restriction::from_expr(&q.where_clause.unwrap());
        // Locally the trie-free store resolves this range, but pretend a
        // parent proved chunk 0 dead and knew nothing about the rest.
        let mut seeds = vec![ChunkActivity::Partial; s.chunk_count()];
        seeds[0] = ChunkActivity::Skip;
        let analysis = SkipAnalysis::prepare_seeded(&s, &r, Some(seeds)).unwrap();
        assert_eq!(analysis.activity(0), ChunkActivity::Skip, "Skip seeds are decisive");
        let plain = SkipAnalysis::prepare(&s, &r).unwrap();
        for c in 1..s.chunk_count() {
            // Partial seeds never upgrade the local verdict: `and` keeps
            // the scan at least as careful as the unseeded analysis.
            assert_eq!(
                analysis.activity(c),
                plain.activity(c).and(ChunkActivity::Partial),
                "chunk {c}"
            );
        }
        // Short seed vectors leave the tail on the local verdict.
        let analysis =
            SkipAnalysis::prepare_seeded(&s, &r, Some(vec![ChunkActivity::Skip])).unwrap();
        let last = s.chunk_count() - 1;
        assert_eq!(analysis.activity(last), plain.activity(last));
    }

    #[test]
    fn paper_worked_example() {
        // §2.4: restriction IN ("la redoute", "voyages sncf") over the
        // Figure 1 layout — only chunk 2 stays active.
        let schema = Schema::of(&[("search_string", DataType::Str), ("chunk", DataType::Int)]);
        let mut t = Table::new(schema);
        let chunks: [&[&str]; 3] = [
            &["ebay", "cheap flights", "amazon", "ebay", "pages jaunes"],
            &["ab in den Urlaub", "amazon", "ebay", "faschingskostüme", "immobilienscout"],
            &["chaussures", "voyages sncf", "la redoute", "chaussures", "karnevalskostüme"],
        ];
        for (ci, values) in chunks.iter().enumerate() {
            for v in *values {
                t.push_row(Row(vec![Value::from(*v), Value::Int(ci as i64)])).unwrap();
            }
        }
        let s = DataStore::build(&t, &BuildOptions::optcols(PartitionSpec::new(&["chunk"], 5)))
            .unwrap();
        assert_eq!(s.chunk_count(), 3);
        let v = verdicts(&s, "search_string IN ('la redoute', 'voyages sncf')");
        assert_eq!(v[0], ChunkActivity::Skip);
        assert_eq!(v[1], ChunkActivity::Skip);
        assert_eq!(v[2], ChunkActivity::Partial);
    }
}
