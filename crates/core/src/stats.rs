//! Scan accounting: the numbers behind §6.
//!
//! The production section of the paper reports, over three months of
//! queries: *"On average 92.41% of underlying records were skipped and
//! 5.02% served from cached results, leaving only 2.66% to be scanned"*,
//! plus the latency-vs-disk-bytes relation of Figure 5. [`ScanStats`]
//! captures exactly those quantities per query and aggregates across
//! queries.

use std::ops::AddAssign;
use std::time::Duration;

/// Per-query (or aggregated) scan statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanStats {
    pub chunks_total: usize,
    /// Chunks proven inactive by the chunk dictionaries.
    pub chunks_skipped: usize,
    /// Fully active chunks served from the chunk-result cache.
    pub chunks_cached: usize,
    /// Chunks actually scanned.
    pub chunks_scanned: usize,

    pub rows_total: u64,
    pub rows_skipped: u64,
    pub rows_cached: u64,
    pub rows_scanned: u64,

    /// Computation-tree subtrees (leaf shards or whole merge-server
    /// subtrees) pruned *before any network hop* because the shard
    /// metadata proved no row could match the restriction. Their rows are
    /// counted in `rows_skipped`/`chunks_skipped`; this counter records
    /// how many tree edges never carried the query at all.
    pub subtrees_pruned: usize,

    /// Chunks beneath pruned tree edges: when a parent's chunk-granular
    /// metadata (zone maps, Bloom filters) proves every chunk of a child
    /// dead and prunes the edge, the child's chunks are counted here. Like
    /// `subtrees_pruned` this is an annotation *outside* the
    /// skipped+cached+scanned balance — the same chunks still appear in
    /// `chunks_skipped`; this counter records that the proof happened
    /// remotely, before any frame was sent.
    pub chunks_pruned_remote: usize,

    /// Computation-tree nodes (leaf servers or merge servers) that
    /// answered from their own result cache instead of scanning /
    /// fanning out. A merge-server hit counts once even though it covers
    /// every shard beneath it — the counter records *nodes* that stopped
    /// the query, not rows (those land in `rows_cached`).
    pub worker_cache_hits: usize,

    /// Cells touched: scanned rows × columns accessed by the query (the
    /// unit of the paper's title).
    pub cells_scanned: u64,

    /// Modeled bytes read from disk (compressed payloads + dictionary
    /// loads).
    pub disk_bytes: u64,
    /// Modeled bytes produced by decompression.
    pub decompressed_bytes: u64,

    /// Wall-clock execution time (zero when aggregating unless added).
    pub elapsed: Duration,
}

impl ScanStats {
    /// Fraction of rows skipped (0 if the store is empty).
    pub fn skipped_fraction(&self) -> f64 {
        ratio(self.rows_skipped, self.rows_total)
    }

    /// Fraction of rows served from cached chunk results.
    pub fn cached_fraction(&self) -> f64 {
        ratio(self.rows_cached, self.rows_total)
    }

    /// Fraction of rows scanned.
    pub fn scanned_fraction(&self) -> f64 {
        ratio(self.rows_scanned, self.rows_total)
    }

    /// Did this query complete without touching (modeled) disk? §6 reports
    /// that over 70% of production queries do.
    pub fn disk_free(&self) -> bool {
        self.disk_bytes == 0
    }

    /// One-line summary in the paper's reporting style.
    pub fn summary(&self) -> String {
        format!(
            "chunks {}/{} skipped, {} cached, {} scanned | rows: {:.2}% skipped, {:.2}% cached, {:.2}% scanned | {} cells | {} KiB disk",
            self.chunks_skipped,
            self.chunks_total,
            self.chunks_cached,
            self.chunks_scanned,
            100.0 * self.skipped_fraction(),
            100.0 * self.cached_fraction(),
            100.0 * self.scanned_fraction(),
            self.cells_scanned,
            self.disk_bytes / 1024,
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl AddAssign<&ScanStats> for ScanStats {
    fn add_assign(&mut self, rhs: &ScanStats) {
        self.chunks_total += rhs.chunks_total;
        self.chunks_skipped += rhs.chunks_skipped;
        self.chunks_cached += rhs.chunks_cached;
        self.chunks_scanned += rhs.chunks_scanned;
        self.rows_total += rhs.rows_total;
        self.rows_skipped += rhs.rows_skipped;
        self.rows_cached += rhs.rows_cached;
        self.rows_scanned += rhs.rows_scanned;
        self.subtrees_pruned += rhs.subtrees_pruned;
        self.chunks_pruned_remote += rhs.chunks_pruned_remote;
        self.worker_cache_hits += rhs.worker_cache_hits;
        self.cells_scanned += rhs.cells_scanned;
        self.disk_bytes += rhs.disk_bytes;
        self.decompressed_bytes += rhs.decompressed_bytes;
        self.elapsed += rhs.elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let s = ScanStats {
            rows_total: 1000,
            rows_skipped: 900,
            rows_cached: 60,
            rows_scanned: 40,
            ..Default::default()
        };
        let total = s.skipped_fraction() + s.cached_fraction() + s.scanned_fraction();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(s.skipped_fraction(), 0.9);
    }

    #[test]
    fn empty_stats_are_calm() {
        let s = ScanStats::default();
        assert_eq!(s.skipped_fraction(), 0.0);
        assert!(s.disk_free());
        assert!(s.summary().contains("0.00%"));
    }

    #[test]
    fn aggregation_adds_fields() {
        let mut total = ScanStats::default();
        let one = ScanStats {
            chunks_total: 10,
            chunks_skipped: 9,
            chunks_scanned: 1,
            rows_total: 100,
            rows_skipped: 90,
            rows_scanned: 10,
            cells_scanned: 30,
            disk_bytes: 4096,
            elapsed: Duration::from_millis(5),
            ..Default::default()
        };
        total += &one;
        total += &one;
        assert_eq!(total.chunks_total, 20);
        assert_eq!(total.rows_scanned, 20);
        assert_eq!(total.disk_bytes, 8192);
        assert_eq!(total.elapsed, Duration::from_millis(10));
    }
}
