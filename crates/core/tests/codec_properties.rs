//! Wire-format properties for the types that cross the §4 process
//! boundary:
//!
//! 1. **Round trip**: `decode(encode(x)) == x` *bit-identically* for
//!    [`PartialResult`] / [`FloatSum`] over seeded-PRNG-generated
//!    aggregates — including NaN (with odd payloads), ±0.0 and subnormal
//!    floats, empty group-by maps and empty (global-aggregation) keys.
//!    Equality is exact: `Value` compares floats with `total_cmp` and
//!    `FloatSum` compares raw limbs, so a single flipped bit fails.
//! 2. **Corruption safety**: decoding truncated or bit-flipped frames
//!    returns `Err` (or a different valid value, for flips that land in
//!    payload bytes) — never a panic, never an absurd allocation.

use pd_common::rng::Rng;
use pd_common::wire::{from_bytes, to_bytes};
use pd_common::{FloatSum, Value};
use pd_core::{AggState, KmvSketch, PartialResult};

/// Floats that stress every encoding edge: NaNs with payloads, signed
/// zeros, subnormals, the extremes, and ordinary values.
fn random_float(rng: &mut Rng) -> f64 {
    match rng.range_usize(0, 10) {
        0 => f64::NAN,
        1 => f64::from_bits(f64::NAN.to_bits() | 0xbeef), // NaN payload
        2 => -0.0,
        3 => 0.0,
        4 => 5e-324,  // smallest subnormal
        5 => -2e-308, // subnormal-range
        6 => f64::INFINITY,
        7 => f64::NEG_INFINITY,
        8 => f64::MAX,
        _ => rng.range_i64_inclusive(-1_000_000, 1_000_000) as f64 * 0.001,
    }
}

fn random_value(rng: &mut Rng) -> Value {
    match rng.range_usize(0, 4) {
        0 => Value::Null,
        1 => Value::Int(rng.range_i64_inclusive(i64::MIN / 2, i64::MAX / 2)),
        2 => Value::Float(random_float(rng)),
        _ => {
            let len = rng.range_usize(0, 12);
            Value::Str((0..len).map(|_| char::from(rng.range_usize(32, 127) as u8)).collect())
        }
    }
}

fn random_float_sum(rng: &mut Rng) -> FloatSum {
    let mut sum = FloatSum::new();
    for _ in 0..rng.range_usize(0, 20) {
        sum.add(random_float(rng));
    }
    sum
}

fn random_agg_state(rng: &mut Rng, kind: usize) -> AggState {
    match kind {
        0 => AggState::Count(rng.next_u64()),
        1 => AggState::SumInt(rng.range_i64_inclusive(i64::MIN / 2, i64::MAX / 2)),
        2 => AggState::SumFloat(Box::new(random_float_sum(rng))),
        3 => AggState::Min(if rng.chance(0.2) { None } else { Some(random_value(rng)) }),
        4 => AggState::Max(if rng.chance(0.2) { None } else { Some(random_value(rng)) }),
        5 => AggState::Avg {
            sum: Box::new(random_float_sum(rng)),
            count: rng.range_u64(0, 1_000_000),
        },
        _ => {
            let m = rng.range_usize(1, 64);
            AggState::Distinct(KmvSketch::from_parts(
                m,
                (0..rng.range_usize(0, 100)).map(|_| rng.next_u64()),
            ))
        }
    }
}

/// A random partial with a consistent aggregate-column shape across
/// groups, like real execution produces. Empty group maps and empty
/// (global-aggregation) keys are both in-distribution.
fn random_partial(rng: &mut Rng) -> PartialResult {
    let mut partial = PartialResult::default();
    let agg_kinds: Vec<usize> = (0..rng.range_usize(1, 5)).map(|_| rng.range_usize(0, 7)).collect();
    let key_width = rng.range_usize(0, 3);
    let groups = if rng.chance(0.1) { 0 } else { rng.range_usize(1, 30) };
    for _ in 0..groups {
        let key: Box<[Value]> = (0..key_width).map(|_| random_value(rng)).collect();
        let states: Vec<AggState> =
            agg_kinds.iter().map(|&kind| random_agg_state(rng, kind)).collect();
        partial.groups.insert(key, states);
        if key_width == 0 {
            break; // only one global group can exist
        }
    }
    partial
}

#[test]
fn float_sums_round_trip_bit_identically() {
    let mut rng = Rng::seed_from_u64(0xc0de_c001);
    for _ in 0..500 {
        let sum = random_float_sum(&mut rng);
        let back: FloatSum = from_bytes(&to_bytes(&sum)).unwrap();
        // Struct equality is limb-level — bit identity of the exact sum —
        // and the rounded values must agree bit-for-bit too.
        assert_eq!(back, sum);
        assert_eq!(back.value().to_bits(), sum.value().to_bits());
    }
}

#[test]
fn partial_results_round_trip_bit_identically() {
    let mut rng = Rng::seed_from_u64(0xc0de_c002);
    for case in 0..200 {
        let partial = random_partial(&mut rng);
        let back: PartialResult = from_bytes(&to_bytes(&partial)).unwrap();
        assert_eq!(back, partial, "case {case}");
    }
}

#[test]
fn merging_decoded_partials_equals_merging_originals() {
    // The wire sits *between* merge levels, so decode∘encode must commute
    // with the associative fold.
    let mut rng = Rng::seed_from_u64(0xc0de_c003);
    for _ in 0..50 {
        let a = random_partial(&mut rng);
        let mut b = random_partial(&mut rng);
        // Align b's aggregate shapes with a's where keys could collide:
        // mismatched shapes are a merge error by contract, not a wire
        // concern. Clear collisions instead.
        for key in a.groups.keys() {
            b.groups.remove(key);
        }
        let mut direct = a.clone();
        direct.merge(b.clone()).unwrap();
        let mut via_wire: PartialResult = from_bytes(&to_bytes(&a)).unwrap();
        via_wire.merge(from_bytes(&to_bytes(&b)).unwrap()).unwrap();
        assert_eq!(via_wire, direct);
    }
}

#[test]
fn truncated_frames_always_error() {
    let mut rng = Rng::seed_from_u64(0xc0de_c004);
    for _ in 0..20 {
        let partial = random_partial(&mut rng);
        let bytes = to_bytes(&partial);
        // Every strict prefix must fail: the length prefixes demand more
        // bytes than remain, and `from_bytes` rejects trailing slack.
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<PartialResult>(&bytes[..cut]).is_err(),
                "decode of {cut}/{} bytes must fail",
                bytes.len()
            );
        }
    }
}

#[test]
fn corrupt_frames_never_panic() {
    // Seeded fuzz over valid encodings: flip bytes anywhere in the frame.
    // The decode may legitimately succeed with a *different* value (a flip
    // in an f64's mantissa is just another float), but it must return —
    // no panics, no unwinds, no huge allocations. A panic would abort the
    // test process, so plain execution is the assertion.
    let mut rng = Rng::seed_from_u64(0xc0de_c005);
    let mut decoded_ok = 0u32;
    let mut decode_err = 0u32;
    for _ in 0..40 {
        let partial = random_partial(&mut rng);
        let bytes = to_bytes(&partial);
        if bytes.is_empty() {
            continue;
        }
        for _ in 0..50 {
            let mut corrupt = bytes.clone();
            let flips = rng.range_usize(1, 4);
            for _ in 0..flips {
                let pos = rng.range_usize(0, corrupt.len());
                corrupt[pos] ^= 1 << rng.range_usize(0, 8);
            }
            match from_bytes::<PartialResult>(&corrupt) {
                Ok(_) => decoded_ok += 1,
                Err(_) => decode_err += 1,
            }
        }
    }
    // Sanity: the fuzz actually exercised both outcomes.
    assert!(decode_err > 0, "bit flips that corrupt structure must error");
    assert_eq!(decoded_ok + decode_err, 2_000, "every corruption was decoded exactly once");
}

#[test]
fn float_sum_corruptions_never_panic() {
    let mut rng = Rng::seed_from_u64(0xc0de_c006);
    let sum = random_float_sum(&mut rng);
    let bytes = to_bytes(&sum);
    for cut in 0..bytes.len() {
        assert!(from_bytes::<FloatSum>(&bytes[..cut]).is_err());
    }
    for _ in 0..500 {
        let mut corrupt = bytes.clone();
        let pos = rng.range_usize(0, corrupt.len());
        corrupt[pos] ^= 0xff;
        // Flips in limb bytes decode to a different (valid) sum; flips in
        // the flag byte beyond bit 2 must error.
        let _ = from_bytes::<FloatSum>(&corrupt);
    }
    let mut bad_flags = bytes.clone();
    *bad_flags.last_mut().unwrap() = 0xf0;
    assert!(from_bytes::<FloatSum>(&bad_flags).is_err());
}
