//! Property tests on the store's structural invariants: partitioning is a
//! permutation into value-range boxes, skipping is sound (a skipped chunk
//! contains no matching row), caches respect budgets, and aggregation
//! states merge associatively.

use pd_common::{DataType, Row, Schema, Value};
use pd_core::exec::AggState;
use pd_core::partition::partition;
use pd_core::skip::{ChunkActivity, SkipAnalysis};
use pd_core::{BuildOptions, CachePolicy, DataStore, KmvSketch, PartitionSpec, TieredCache};
use pd_sql::{eval_expr, parse_query, truthy, Restriction, RowContext};
use proptest::prelude::*;

/// Row context over a store's reconstructed cell values.
struct StoreRow<'a> {
    store: &'a DataStore,
    chunk: usize,
    row: usize,
}

impl RowContext for StoreRow<'_> {
    fn column(&self, name: &str) -> pd_common::Result<Value> {
        Ok(self.store.column(name)?.value_at(self.chunk, self.row))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The partitioner must produce a permutation whose chunks respect the
    /// threshold whenever a split is possible, and whose chunks occupy
    /// disjoint key-ranges on the first field that distinguishes them.
    #[test]
    fn partition_invariants(
        ids_a in proptest::collection::vec(0u32..30, 1..400),
        ids_b in proptest::collection::vec(0u32..15, 1..400),
        threshold in 1usize..100,
    ) {
        let n = ids_a.len().min(ids_b.len());
        let a = &ids_a[..n];
        let b = &ids_b[..n];
        let p = partition(&[a, b], n, threshold);

        // Permutation.
        let mut seen = vec![false; n];
        for &r in &p.row_order {
            prop_assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(*p.chunk_starts.last().unwrap() as usize, n);

        // Threshold respected unless a chunk is a single (a, b) value pair
        // (unsplittable).
        for c in 0..p.chunk_count() {
            let rows = &p.row_order[p.chunk_range(c)];
            if rows.len() > threshold {
                let first = (a[rows[0] as usize], b[rows[0] as usize]);
                prop_assert!(
                    rows.iter().all(|&r| (a[r as usize], b[r as usize]) == first),
                    "oversized chunk must be single-valued"
                );
            }
        }

        // Chunks are boxes: for any two chunks, either their first-field
        // ranges are disjoint, or they share a single first-field value and
        // their second-field ranges are disjoint.
        let ranges: Vec<((u32, u32), (u32, u32))> = (0..p.chunk_count())
            .map(|c| {
                let rows = &p.row_order[p.chunk_range(c)];
                let fa: Vec<u32> = rows.iter().map(|&r| a[r as usize]).collect();
                let fb: Vec<u32> = rows.iter().map(|&r| b[r as usize]).collect();
                (
                    (*fa.iter().min().unwrap(), *fa.iter().max().unwrap()),
                    (*fb.iter().min().unwrap(), *fb.iter().max().unwrap()),
                )
            })
            .collect();
        for i in 0..ranges.len() {
            for j in i + 1..ranges.len() {
                let ((a_lo1, a_hi1), (b_lo1, b_hi1)) = ranges[i];
                let ((a_lo2, a_hi2), (b_lo2, b_hi2)) = ranges[j];
                let a_disjoint = a_hi1 < a_lo2 || a_hi2 < a_lo1;
                let same_single_a = a_lo1 == a_hi1 && a_lo2 == a_hi2 && a_lo1 == a_lo2;
                let b_disjoint = b_hi1 < b_lo2 || b_hi2 < b_lo1;
                prop_assert!(
                    a_disjoint || (same_single_a && b_disjoint),
                    "chunks {i} and {j} overlap: {:?} vs {:?}",
                    ranges[i],
                    ranges[j]
                );
            }
        }
    }

    /// Cache layers never exceed their byte budgets, and every access cost
    /// is consistent (a hit costs nothing).
    #[test]
    fn cache_respects_budget(
        accesses in proptest::collection::vec((0u32..64, 1usize..5_000), 1..300),
        policy_idx in 0usize..3,
        budget in 1_000usize..20_000,
    ) {
        let policy = [CachePolicy::Lru, CachePolicy::TwoQ, CachePolicy::Arc][policy_idx];
        let cache = TieredCache::new(policy, budget, budget / 2);
        for (chunk, size) in accesses {
            let key = (std::sync::Arc::from("col"), chunk);
            let cost = cache.touch(&key, size, size / 3 + 1);
            if cost.hit() {
                // A hit is free by definition; nothing more to check.
            } else {
                prop_assert!(cost.decompressed_bytes as usize == size);
            }
            let (u, c) = cache.resident_bytes();
            prop_assert!(u <= budget, "uncompressed layer over budget: {u} > {budget}");
            prop_assert!(c <= budget / 2, "compressed layer over budget: {c}");
        }
    }

    /// AggState merging is associative and commutative for the algebraic
    /// aggregates (the property the §4 computation tree relies on).
    #[test]
    fn agg_states_merge_associatively(values in proptest::collection::vec(-100i64..100, 3..60)) {
        let states: Vec<Vec<AggState>> = values
            .iter()
            .map(|&v| {
                vec![
                    AggState::Count(1),
                    AggState::SumInt(v),
                    AggState::SumFloat(v as f64 * 0.5),
                    AggState::Min(Some(Value::Int(v))),
                    AggState::Max(Some(Value::Int(v))),
                    AggState::Avg { sum: v as f64, count: 1 },
                ]
            })
            .collect();

        // Left fold vs right fold vs two-level tree fold.
        let merge_all = |chunks: &[Vec<AggState>]| -> Vec<AggState> {
            let mut acc = chunks[0].clone();
            for s in &chunks[1..] {
                for (a, b) in acc.iter_mut().zip(s) {
                    a.merge(b).unwrap();
                }
            }
            acc
        };
        let flat = merge_all(&states);
        let mid = states.len() / 2;
        let left = merge_all(&states[..mid.max(1)]);
        let right = merge_all(&states[mid.max(1)..]);
        let mut tree = left;
        for (a, b) in tree.iter_mut().zip(&right) {
            a.merge(b).unwrap();
        }
        for (a, b) in flat.iter().zip(&tree) {
            match (a.finalize(), b.finalize()) {
                (Value::Float(x), Value::Float(y)) => {
                    prop_assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
                }
                (x, y) => prop_assert_eq!(x, y),
            }
        }
    }

    /// Skipping soundness — the paper's central correctness claim: a chunk
    /// the dictionaries declare inactive contains NO matching row, and a
    /// fully active chunk contains ONLY matching rows.
    #[test]
    fn skipping_is_sound(
        rows in proptest::collection::vec((0usize..5, 0u32..12, -40i64..40), 1..200),
        where_idx in 0usize..8,
        v1 in 0u32..12,
        n1 in -40i64..40,
    ) {
        let schema = Schema::of(&[
            ("k", DataType::Str),
            ("g", DataType::Str),
            ("n", DataType::Int),
        ]);
        let mut table = pd_data::Table::new(schema);
        for (k, g, n) in &rows {
            table
                .push_row(Row(vec![
                    Value::from(["red", "green", "blue", "grey", "teal"][*k]),
                    Value::from(format!("g{g:02}")),
                    Value::Int(*n),
                ]))
                .unwrap();
        }
        let store = DataStore::build(
            &table,
            &BuildOptions::reordered(PartitionSpec::new(&["k", "g"], 8)),
        )
        .unwrap();

        let wheres = [
            format!("g = 'g{v1:02}'"),
            format!("k = 'red' AND g = 'g{v1:02}'"),
            format!("g IN ('g{v1:02}', 'g{:02}')", (v1 + 5) % 12),
            format!("g NOT IN ('g{v1:02}')"),
            format!("n > {n1}"),
            format!("n BETWEEN {n1} AND {}", n1 + 10),
            format!("k != 'red' OR g = 'g{v1:02}'"),
            format!("NOT (k = 'blue' AND n <= {n1})"),
        ];
        let sql = format!("SELECT COUNT(*) FROM t WHERE {}", wheres[where_idx]);
        let parsed = parse_query(&sql).unwrap();
        let filter = parsed.where_clause.clone().unwrap();
        let restriction = Restriction::from_expr(&filter);
        let analysis = SkipAnalysis::prepare(&store, &restriction).unwrap();

        for c in 0..store.chunk_count() {
            let verdict = analysis.activity(c);
            for r in 0..store.chunk_rows(c) {
                let ctx = StoreRow { store: &store, chunk: c, row: r };
                let matches = truthy(&eval_expr(&filter, &ctx).unwrap());
                match verdict {
                    ChunkActivity::Skip => prop_assert!(
                        !matches,
                        "skipped chunk {c} row {r} matches `{}`",
                        wheres[where_idx]
                    ),
                    ChunkActivity::Full => prop_assert!(
                        matches,
                        "fully-active chunk {c} row {r} fails `{}`",
                        wheres[where_idx]
                    ),
                    ChunkActivity::Partial => {}
                }
            }
        }
    }

    /// KMV sketches: merge order never changes the estimate, and estimates
    /// are exact below m.
    #[test]
    fn sketch_merge_order_irrelevant(
        xs in proptest::collection::hash_set(0u64..5_000, 1..200),
        split in 0usize..200,
    ) {
        let all: Vec<u64> = xs.into_iter().collect();
        let split = split.min(all.len());
        let mut a = KmvSketch::new(64);
        let mut b = KmvSketch::new(64);
        for &v in &all[..split] {
            a.offer(pd_common::fx_hash64(&v));
        }
        for &v in &all[split..] {
            b.offer(pd_common::fx_hash64(&v));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        if all.len() < 64 {
            prop_assert_eq!(ab.estimate(), all.len() as f64);
        }
    }
}
