//! Randomized properties on the store's structural invariants:
//! partitioning is a permutation into value-range boxes, skipping is sound
//! (a skipped chunk contains no matching row), caches respect budgets, and
//! aggregation states merge associatively. Driven by a seeded PRNG so
//! failures reproduce exactly.

use pd_common::rng::Rng;
use pd_common::{DataType, FloatSum, Row, Schema, Value};
use pd_core::exec::AggState;
use pd_core::partition::partition;
use pd_core::skip::{ChunkActivity, SkipAnalysis};
use pd_core::{BuildOptions, CachePolicy, DataStore, KmvSketch, PartitionSpec, TieredCache};
use pd_sql::{eval_expr, parse_query, truthy, Restriction, RowContext};

/// Row context over a store's reconstructed cell values.
struct StoreRow<'a> {
    store: &'a DataStore,
    chunk: usize,
    row: usize,
}

impl RowContext for StoreRow<'_> {
    fn column(&self, name: &str) -> pd_common::Result<Value> {
        Ok(self.store.column(name)?.value_at(self.chunk, self.row))
    }
}

/// The partitioner must produce a permutation whose chunks respect the
/// threshold whenever a split is possible, and whose chunks occupy
/// disjoint key-ranges on the first field that distinguishes them.
#[test]
fn partition_invariants() {
    let mut rng = Rng::seed_from_u64(0xc04e_0001);
    for case in 0..64 {
        let n = rng.range_usize(1, 400);
        let a: Vec<u32> = (0..n).map(|_| rng.range_u64(0, 30) as u32).collect();
        let b: Vec<u32> = (0..n).map(|_| rng.range_u64(0, 15) as u32).collect();
        let threshold = rng.range_usize(1, 100);
        let p = partition(&[&a, &b], n, threshold);

        // Permutation.
        let mut seen = vec![false; n];
        for &r in &p.row_order {
            assert!(!seen[r as usize], "case {case}: duplicate row");
            seen[r as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "case {case}: rows missing");
        assert_eq!(*p.chunk_starts.last().unwrap() as usize, n, "case {case}");

        // Threshold respected unless a chunk is a single (a, b) value pair
        // (unsplittable).
        for c in 0..p.chunk_count() {
            let rows = &p.row_order[p.chunk_range(c)];
            if rows.len() > threshold {
                let first = (a[rows[0] as usize], b[rows[0] as usize]);
                assert!(
                    rows.iter().all(|&r| (a[r as usize], b[r as usize]) == first),
                    "case {case}: oversized chunk must be single-valued"
                );
            }
        }

        // Chunks are boxes: for any two chunks, either their first-field
        // ranges are disjoint, or they share a single first-field value and
        // their second-field ranges are disjoint.
        let ranges: Vec<((u32, u32), (u32, u32))> = (0..p.chunk_count())
            .map(|c| {
                let rows = &p.row_order[p.chunk_range(c)];
                let fa: Vec<u32> = rows.iter().map(|&r| a[r as usize]).collect();
                let fb: Vec<u32> = rows.iter().map(|&r| b[r as usize]).collect();
                (
                    (*fa.iter().min().unwrap(), *fa.iter().max().unwrap()),
                    (*fb.iter().min().unwrap(), *fb.iter().max().unwrap()),
                )
            })
            .collect();
        for i in 0..ranges.len() {
            for j in i + 1..ranges.len() {
                let ((a_lo1, a_hi1), (b_lo1, b_hi1)) = ranges[i];
                let ((a_lo2, a_hi2), (b_lo2, b_hi2)) = ranges[j];
                let a_disjoint = a_hi1 < a_lo2 || a_hi2 < a_lo1;
                let same_single_a = a_lo1 == a_hi1 && a_lo2 == a_hi2 && a_lo1 == a_lo2;
                let b_disjoint = b_hi1 < b_lo2 || b_hi2 < b_lo1;
                assert!(
                    a_disjoint || (same_single_a && b_disjoint),
                    "case {case}: chunks {i} and {j} overlap: {:?} vs {:?}",
                    ranges[i],
                    ranges[j]
                );
            }
        }
    }
}

/// Cache layers never exceed their byte budgets, and every access cost is
/// consistent (a hit costs nothing).
#[test]
fn cache_respects_budget() {
    let mut rng = Rng::seed_from_u64(0xc04e_0002);
    for _ in 0..64 {
        let policy = [CachePolicy::Lru, CachePolicy::TwoQ, CachePolicy::Arc][rng.range_usize(0, 3)];
        let budget = rng.range_usize(1_000, 20_000);
        let cache = TieredCache::new(policy, budget, budget / 2);
        for _ in 0..rng.range_usize(1, 300) {
            let chunk = rng.range_u64(0, 64) as u32;
            let size = rng.range_usize(1, 5_000);
            let key = (std::sync::Arc::from("col"), chunk);
            let cost = cache.touch(&key, size, size / 3 + 1);
            if !cost.hit() {
                assert_eq!(cost.decompressed_bytes as usize, size);
            }
            let (u, c) = cache.resident_bytes();
            assert!(u <= budget, "uncompressed layer over budget: {u} > {budget}");
            assert!(c <= budget / 2, "compressed layer over budget: {c}");
        }
    }
}

/// AggState merging is associative and commutative for the algebraic
/// aggregates (the property the §4 computation tree — and the parallel
/// chunk scheduler's merge — relies on).
#[test]
fn agg_states_merge_associatively() {
    let mut rng = Rng::seed_from_u64(0xc04e_0003);
    for _ in 0..64 {
        let n = rng.range_usize(3, 60);
        let values: Vec<i64> = (0..n).map(|_| rng.range_i64_inclusive(-100, 100)).collect();
        let states: Vec<Vec<AggState>> = values
            .iter()
            .map(|&v| {
                vec![
                    AggState::Count(1),
                    AggState::SumInt(v),
                    AggState::SumFloat(Box::new(FloatSum::from(v as f64 * 0.5))),
                    AggState::Min(Some(Value::Int(v))),
                    AggState::Max(Some(Value::Int(v))),
                    AggState::Avg { sum: Box::new(FloatSum::from(v as f64)), count: 1 },
                ]
            })
            .collect();

        // Left fold vs two-level tree fold.
        let merge_all = |chunks: &[Vec<AggState>]| -> Vec<AggState> {
            let mut acc = chunks[0].clone();
            for s in &chunks[1..] {
                for (a, b) in acc.iter_mut().zip(s) {
                    a.merge(b).unwrap();
                }
            }
            acc
        };
        let flat = merge_all(&states);
        let mid = (values.len() / 2).max(1);
        let left = merge_all(&states[..mid]);
        let right = merge_all(&states[mid..]);
        let mut tree = left;
        for (a, b) in tree.iter_mut().zip(&right) {
            a.merge(b).unwrap();
        }
        for (a, b) in flat.iter().zip(&tree) {
            match (a.finalize(), b.finalize()) {
                (Value::Float(x), Value::Float(y)) => {
                    assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
                }
                (x, y) => assert_eq!(x, y),
            }
        }
    }
}

/// Skipping soundness — the paper's central correctness claim: a chunk the
/// dictionaries declare inactive contains NO matching row, and a fully
/// active chunk contains ONLY matching rows.
#[test]
fn skipping_is_sound() {
    let mut rng = Rng::seed_from_u64(0xc04e_0004);
    for case in 0..48 {
        let n = rng.range_usize(1, 200);
        let schema =
            Schema::of(&[("k", DataType::Str), ("g", DataType::Str), ("n", DataType::Int)]);
        let mut table = pd_data::Table::new(schema);
        for _ in 0..n {
            table
                .push_row(Row(vec![
                    Value::from(["red", "green", "blue", "grey", "teal"][rng.range_usize(0, 5)]),
                    Value::from(format!("g{:02}", rng.range_u64(0, 12))),
                    Value::Int(rng.range_i64_inclusive(-40, 39)),
                ]))
                .unwrap();
        }
        let store =
            DataStore::build(&table, &BuildOptions::reordered(PartitionSpec::new(&["k", "g"], 8)))
                .unwrap();

        let v1 = rng.range_u64(0, 12);
        let n1 = rng.range_i64_inclusive(-40, 39);
        let wheres = [
            format!("g = 'g{v1:02}'"),
            format!("k = 'red' AND g = 'g{v1:02}'"),
            format!("g IN ('g{v1:02}', 'g{:02}')", (v1 + 5) % 12),
            format!("g NOT IN ('g{v1:02}')"),
            format!("n > {n1}"),
            format!("n BETWEEN {n1} AND {}", n1 + 10),
            format!("k != 'red' OR g = 'g{v1:02}'"),
            format!("NOT (k = 'blue' AND n <= {n1})"),
        ];
        let where_sql = &wheres[rng.range_usize(0, wheres.len())];
        let sql = format!("SELECT COUNT(*) FROM t WHERE {where_sql}");
        let parsed = parse_query(&sql).unwrap();
        let filter = parsed.where_clause.clone().unwrap();
        let restriction = Restriction::from_expr(&filter);
        let analysis = SkipAnalysis::prepare(&store, &restriction).unwrap();

        for c in 0..store.chunk_count() {
            let verdict = analysis.activity(c);
            for r in 0..store.chunk_rows(c) {
                let ctx = StoreRow { store: &store, chunk: c, row: r };
                let matches = truthy(&eval_expr(&filter, &ctx).unwrap());
                match verdict {
                    ChunkActivity::Skip => assert!(
                        !matches,
                        "case {case}: skipped chunk {c} row {r} matches `{where_sql}`"
                    ),
                    ChunkActivity::Full => assert!(
                        matches,
                        "case {case}: fully-active chunk {c} row {r} fails `{where_sql}`"
                    ),
                    ChunkActivity::Partial => {}
                }
            }
        }
    }
}

/// KMV sketches: merge order never changes the estimate, and estimates are
/// exact below m.
#[test]
fn sketch_merge_order_irrelevant() {
    let mut rng = Rng::seed_from_u64(0xc04e_0005);
    for _ in 0..64 {
        let mut all: Vec<u64> =
            (0..rng.range_usize(1, 200)).map(|_| rng.range_u64(0, 5_000)).collect();
        all.sort_unstable();
        all.dedup();
        let split = rng.range_usize(0, all.len() + 1);
        let mut a = KmvSketch::new(64);
        let mut b = KmvSketch::new(64);
        for &v in &all[..split] {
            a.offer(pd_common::fx_hash64(&v));
        }
        for &v in &all[split..] {
            b.offer(pd_common::fx_hash64(&v));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        if all.len() < 64 {
            assert_eq!(ab.estimate(), all.len() as f64);
        }
    }
}
