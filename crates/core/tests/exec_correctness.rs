//! Executor correctness: the store must agree with a naive row-by-row
//! oracle on every supported query shape, under every build variant of the
//! §3 ladder, with and without the §6 result cache.

use pd_common::{Row, Value};
use pd_core::{execute, query, BuildOptions, DataStore, ExecContext, PartitionSpec, ResultCache};
use pd_data::{generate_logs, LogsSpec, Table};
use pd_sql::{analyze, eval_expr, parse_query, truthy, AggFunc, OutputCol, RowContext};
use std::collections::HashMap;
use std::sync::Arc;

/// Naive reference implementation evaluating the query over table rows.
fn oracle(table: &Table, sql: &str) -> Vec<Row> {
    let analyzed = analyze(&parse_query(sql).unwrap()).unwrap();

    struct Ctx<'a> {
        table: &'a Table,
        row: usize,
    }
    impl RowContext for Ctx<'_> {
        fn column(&self, name: &str) -> pd_common::Result<Value> {
            let idx = self.table.schema().resolve(name)?;
            Ok(self.table.column(idx)[self.row].clone())
        }
    }

    #[derive(Default)]
    struct OracleAgg {
        count: u64,
        sum: f64,
        sum_int: i64,
        min: Option<Value>,
        max: Option<Value>,
        distinct: std::collections::BTreeSet<Value>,
    }

    let mut groups: HashMap<Vec<Value>, Vec<OracleAgg>> = HashMap::new();
    for r in 0..table.len() {
        let ctx = Ctx { table, row: r };
        if let Some(filter) = &analyzed.filter {
            if !truthy(&eval_expr(filter, &ctx).unwrap()) {
                continue;
            }
        }
        let key: Vec<Value> = analyzed.keys.iter().map(|k| eval_expr(k, &ctx).unwrap()).collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| analyzed.aggs.iter().map(|_| OracleAgg::default()).collect());
        for (agg, state) in analyzed.aggs.iter().zip(states.iter_mut()) {
            let arg = agg.arg.as_ref().map(|a| eval_expr(a, &ctx).unwrap());
            state.count += 1;
            if let Some(v) = &arg {
                state.sum += v.numeric();
                if let Value::Int(i) = v {
                    state.sum_int += i;
                }
                if state.min.as_ref().is_none_or(|m| v < m) {
                    state.min = Some(v.clone());
                }
                if state.max.as_ref().is_none_or(|m| v > m) {
                    state.max = Some(v.clone());
                }
                state.distinct.insert(v.clone());
            }
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    if groups.is_empty() && analyzed.keys.is_empty() {
        let row: Vec<Value> = analyzed
            .output
            .iter()
            .map(|(_, src)| match src {
                OutputCol::Key(_) => Value::Null,
                OutputCol::Agg(i) => match analyzed.aggs[*i].func {
                    AggFunc::Count => Value::Int(0),
                    _ => Value::Null,
                },
            })
            .collect();
        rows.push(Row(row));
    }
    for (key, states) in &groups {
        let row: Vec<Value> = analyzed
            .output
            .iter()
            .map(|(_, src)| match src {
                OutputCol::Key(i) => key[*i].clone(),
                OutputCol::Agg(i) => {
                    let agg = &analyzed.aggs[*i];
                    let s = &states[*i];
                    if agg.distinct {
                        return Value::Int(s.distinct.len() as i64);
                    }
                    match agg.func {
                        AggFunc::Count => Value::Int(s.count as i64),
                        AggFunc::Sum => {
                            // Type follows the argument column.
                            let is_int = matches!(s.min, Some(Value::Int(_)));
                            if is_int {
                                Value::Int(s.sum_int)
                            } else {
                                Value::Float(s.sum)
                            }
                        }
                        AggFunc::Min => s.min.clone().unwrap_or(Value::Null),
                        AggFunc::Max => s.max.clone().unwrap_or(Value::Null),
                        AggFunc::Avg => Value::Float(s.sum / s.count as f64),
                    }
                }
            })
            .collect();
        rows.push(Row(row));
    }

    // Same finalization as the engine: HAVING, base sort, ORDER BY, LIMIT.
    let names = analyzed.output_names();
    if let Some(having) = &analyzed.having {
        rows.retain(|row| {
            let pairs: Vec<(&str, Value)> =
                names.iter().map(String::as_str).zip(row.values().iter().cloned()).collect();
            truthy(&eval_expr(having, &pairs[..]).unwrap())
        });
    }
    rows.sort();
    if !analyzed.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for &(idx, desc) in &analyzed.order_by {
                let ord = a.0[idx].cmp(&b.0[idx]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(limit) = analyzed.limit {
        rows.truncate(limit);
    }
    rows
}

fn float_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())),
        _ => a == b,
    }
}

fn rows_eq(a: &[Row], b: &[Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.0.len() == rb.0.len() && ra.0.iter().zip(&rb.0).all(|(x, y)| float_eq(x, y))
        })
}

fn all_variants() -> Vec<(&'static str, BuildOptions)> {
    let spec = PartitionSpec::new(&["country", "table_name"], 300);
    vec![
        ("basic", BuildOptions::basic()),
        ("chunks", BuildOptions::chunked(spec.clone())),
        ("optcols", BuildOptions::optcols(spec.clone())),
        ("optdicts", BuildOptions::optdicts(spec.clone())),
        ("reorder", BuildOptions::reordered(spec)),
    ]
}

fn check(table: &Table, stores: &[(&str, DataStore)], sql: &str) {
    let expected = oracle(table, sql);
    for (name, store) in stores {
        let (result, stats) = query(store, sql).unwrap_or_else(|e| panic!("{name}: {sql}: {e}"));
        assert!(
            rows_eq(&result.rows, &expected),
            "variant {name} disagrees with oracle on {sql}\n got: {:?}\nwant: {:?}\nstats: {}",
            result.rows,
            expected,
            stats.summary()
        );
        assert_eq!(
            stats.rows_skipped + stats.rows_cached + stats.rows_scanned,
            stats.rows_total,
            "row accounting must balance for {name}: {sql}"
        );
    }
}

fn build_all(table: &Table) -> Vec<(&'static str, DataStore)> {
    all_variants()
        .into_iter()
        .map(|(name, opt)| (name, DataStore::build(table, &opt).unwrap()))
        .collect()
}

#[test]
fn paper_queries_match_oracle_on_all_variants() {
    let table = generate_logs(&LogsSpec::scaled(2_500));
    let stores = build_all(&table);
    for sql in [
        "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;",
        "SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data GROUP BY date ORDER BY date ASC LIMIT 10;",
        "SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10;",
    ] {
        check(&table, &stores, sql);
    }
}

#[test]
fn filters_match_oracle() {
    let table = generate_logs(&LogsSpec::scaled(2_000));
    let stores = build_all(&table);
    for sql in [
        "SELECT country, COUNT(*) c FROM data WHERE country = 'DE' GROUP BY country",
        "SELECT country, COUNT(*) c FROM data WHERE country IN ('DE','FR','JP') GROUP BY country ORDER BY c DESC",
        "SELECT country, COUNT(*) c FROM data WHERE country NOT IN ('US') GROUP BY country ORDER BY c DESC LIMIT 5",
        "SELECT country, COUNT(*) c FROM data WHERE latency > 500.0 GROUP BY country ORDER BY c DESC",
        "SELECT country, COUNT(*) c FROM data WHERE country = 'US' AND latency > 500.0 GROUP BY country",
        "SELECT country, COUNT(*) c FROM data WHERE country = 'US' OR country = 'DE' GROUP BY country",
        "SELECT country, COUNT(*) c FROM data WHERE NOT (country = 'US' OR country = 'DE') GROUP BY country ORDER BY c DESC LIMIT 3",
        "SELECT country, COUNT(*) c FROM data WHERE country = 'ZZ' GROUP BY country",
        "SELECT country, COUNT(*) c FROM data WHERE date(timestamp) IN ('2011-10-01','2011-10-02') GROUP BY country",
        "SELECT country, SUM(latency) s FROM data WHERE user != 'user_00003' GROUP BY country ORDER BY s DESC LIMIT 4",
        "SELECT country, COUNT(*) c FROM data WHERE latency BETWEEN 100.0 AND 400.0 GROUP BY country ORDER BY c DESC",
        // Multi-column subtrees hit the per-row RowEval path of the mask
        // compiler — alone (full-chunk evaluation) and under an AND whose
        // cheap sibling narrows the evaluation scope.
        "SELECT country, COUNT(*) c FROM data WHERE latency > timestamp - 1317427000 GROUP BY country ORDER BY c DESC",
        "SELECT country, COUNT(*) c FROM data WHERE country = 'US' AND latency > timestamp - 1317427000 GROUP BY country",
        "SELECT country, COUNT(*) c FROM data WHERE NOT (latency > timestamp - 1317427000) AND country != 'DE' GROUP BY country ORDER BY c DESC LIMIT 5",
        "SELECT country, COUNT(*) c FROM data WHERE country = 'US' OR latency > timestamp - 1317427000 GROUP BY country ORDER BY c DESC",
        "SELECT country, COUNT(*) c FROM data WHERE country = 'ZZ' OR (latency > timestamp - 1317427000 AND country != 'FR') GROUP BY country ORDER BY c DESC LIMIT 5",
        "SELECT country, COUNT(*) c FROM data WHERE timestamp NOT BETWEEN 1317427200 AND 1318427200 GROUP BY country ORDER BY c DESC LIMIT 5",
    ] {
        check(&table, &stores, sql);
    }
}

#[test]
fn aggregates_match_oracle() {
    let table = generate_logs(&LogsSpec::scaled(1_500));
    let stores = build_all(&table);
    for sql in [
        "SELECT country, SUM(latency) FROM data GROUP BY country",
        "SELECT country, MIN(latency), MAX(latency) FROM data GROUP BY country",
        "SELECT country, AVG(latency) FROM data GROUP BY country",
        "SELECT country, SUM(timestamp) FROM data GROUP BY country",
        "SELECT country, MIN(table_name), MAX(user) FROM data GROUP BY country",
        "SELECT COUNT(*), SUM(latency), MIN(timestamp), MAX(timestamp) FROM data",
        "SELECT COUNT(*) FROM data WHERE country = 'ZZ'",
        "SELECT COUNT(latency) FROM data",
    ] {
        check(&table, &stores, sql);
    }
}

#[test]
fn multi_key_group_by_matches_oracle() {
    let table = generate_logs(&LogsSpec::scaled(1_500));
    let stores = build_all(&table);
    for sql in [
        "SELECT country, user, COUNT(*) c FROM data GROUP BY country, user ORDER BY c DESC LIMIT 20",
        // High-cardinality pair exercises the hash grouping path.
        "SELECT table_name, user, COUNT(*) c FROM data GROUP BY table_name, user ORDER BY c DESC LIMIT 20",
        "SELECT country, date(timestamp) d, COUNT(*), SUM(latency) FROM data GROUP BY country, d ORDER BY country ASC LIMIT 30",
    ] {
        check(&table, &stores, sql);
    }
}

#[test]
fn having_matches_oracle() {
    let table = generate_logs(&LogsSpec::scaled(1_500));
    let stores = build_all(&table);
    for sql in [
        "SELECT country, COUNT(*) as c FROM data GROUP BY country HAVING c > 50 ORDER BY c DESC",
        "SELECT country, COUNT(*) as c FROM data GROUP BY country HAVING COUNT(*) > 50 AND country != 'US' ORDER BY c DESC",
    ] {
        check(&table, &stores, sql);
    }
}

#[test]
fn single_key_count_beyond_dense_limit_is_exact() {
    // A single chunk whose key dictionary exceeds the dense-group limit
    // (2^16): the single-key COUNT(*) fast path must still run its flat
    // counts array (the limit only gates multi-key products) and return
    // exact counts.
    use pd_common::{DataType, Row, Schema, Value};
    let distinct = 70_000i64;
    let schema = Schema::of(&[("id", DataType::Int)]);
    let mut t = pd_data::Table::new(schema);
    for i in 0..distinct {
        t.push_row(Row(vec![Value::Int(i)])).unwrap();
        if i % 7 == 0 {
            t.push_row(Row(vec![Value::Int(i)])).unwrap(); // every 7th id twice
        }
    }
    let store = DataStore::build(&t, &BuildOptions::basic()).unwrap();
    let (result, stats) = query(
        &store,
        "SELECT id, COUNT(*) c FROM data GROUP BY id ORDER BY c DESC, id ASC LIMIT 3",
    )
    .unwrap();
    assert_eq!(result.rows[0].0, vec![Value::Int(0), Value::Int(2)]);
    assert_eq!(result.rows[1].0, vec![Value::Int(7), Value::Int(2)]);
    assert_eq!(result.rows[2].0, vec![Value::Int(14), Value::Int(2)]);
    assert_eq!(stats.rows_scanned, t.len() as u64);
}

#[test]
fn count_distinct_is_exact_below_sketch_size() {
    let table = generate_logs(&LogsSpec::scaled(2_000));
    let store = DataStore::build(&table, &BuildOptions::basic()).unwrap();
    let sql =
        "SELECT country, COUNT(DISTINCT user) FROM data GROUP BY country ORDER BY country ASC";
    // With m larger than any group's distinct count the sketch is exact.
    let (result, _) = query(&store, sql).unwrap();
    let expected = oracle(&table, sql);
    assert!(rows_eq(&result.rows, &expected), "got {:?} want {:?}", result.rows, expected);
}

#[test]
fn count_distinct_is_close_above_sketch_size() {
    let table = generate_logs(&LogsSpec::scaled(5_000));
    let store = DataStore::build(&table, &BuildOptions::basic()).unwrap();
    let analyzed =
        analyze(&parse_query("SELECT COUNT(DISTINCT table_name) FROM data").unwrap()).unwrap();
    let ctx = ExecContext { sketch_m: 256, ..Default::default() };
    let (result, _) = execute(&store, &analyzed, &ctx).unwrap();
    let exact = oracle(&table, "SELECT COUNT(DISTINCT table_name) FROM data")[0].0[0]
        .as_int()
        .unwrap() as f64;
    let est = result.rows[0].0[0].as_int().unwrap() as f64;
    let err = (est - exact).abs() / exact;
    assert!(err < 0.2, "estimate {est} vs exact {exact} (err {err:.3})");
}

#[test]
fn result_cache_preserves_results_and_hits() {
    let table = generate_logs(&LogsSpec::scaled(2_000));
    let store = DataStore::build(
        &table,
        &BuildOptions::reordered(PartitionSpec::new(&["country", "table_name"], 300)),
    )
    .unwrap();
    let sql = "SELECT country, COUNT(*) as c FROM data WHERE country IN ('US','DE') GROUP BY country ORDER BY c DESC";
    let analyzed = analyze(&parse_query(sql).unwrap()).unwrap();

    let cache = Arc::new(ResultCache::new(1024));
    let ctx = ExecContext { result_cache: Some(cache.clone()), ..Default::default() };

    let (first, stats1) = execute(&store, &analyzed, &ctx).unwrap();
    let (second, stats2) = execute(&store, &analyzed, &ctx).unwrap();
    assert_eq!(first, second, "cache must not change results");
    assert_eq!(stats1.rows_cached, 0, "first run computes");
    assert!(stats2.rows_cached > 0, "second run hits the chunk-result cache");
    assert_eq!(stats2.rows_scanned + stats2.rows_cached + stats2.rows_skipped, stats2.rows_total);
    // And the result still matches the oracle.
    assert!(rows_eq(&second.rows, &oracle(&table, sql)));
}

#[test]
fn skipping_statistics_reflect_selectivity() {
    let table = generate_logs(&LogsSpec::scaled(4_000));
    let store = DataStore::build(
        &table,
        &BuildOptions::reordered(PartitionSpec::new(&["country", "table_name"], 200)),
    )
    .unwrap();
    // A single-country restriction must skip most chunks.
    let (_, stats) =
        query(&store, "SELECT country, COUNT(*) FROM data WHERE country = 'JP' GROUP BY country")
            .unwrap();
    assert!(
        stats.skipped_fraction() > 0.5,
        "most rows skipped for a selective query: {}",
        stats.summary()
    );
    // An unrestricted query skips nothing.
    let (_, stats) = query(&store, "SELECT country, COUNT(*) FROM data GROUP BY country").unwrap();
    assert_eq!(stats.rows_skipped, 0);
}

#[test]
fn empty_group_results() {
    let table = generate_logs(&LogsSpec::scaled(500));
    let store = DataStore::build(&table, &BuildOptions::basic()).unwrap();
    // Global aggregation over empty selection yields one row of empties.
    let (result, _) =
        query(&store, "SELECT COUNT(*), SUM(latency) FROM data WHERE country = 'ZZ'").unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0].0[0], Value::Int(0));
    assert_eq!(result.rows[0].0[1], Value::Null);
    // Grouped aggregation over empty selection yields zero rows.
    let (result, _) =
        query(&store, "SELECT country, COUNT(*) FROM data WHERE country = 'ZZ' GROUP BY country")
            .unwrap();
    assert!(result.rows.is_empty());
}

#[test]
fn errors_are_reported_not_panicked() {
    let table = generate_logs(&LogsSpec::scaled(200));
    let store = DataStore::build(&table, &BuildOptions::basic()).unwrap();
    assert!(query(&store, "SELECT nope, COUNT(*) FROM data GROUP BY nope").is_err());
    assert!(query(&store, "SELECT country, SUM(table_name) FROM data GROUP BY country").is_err());
    assert!(query(&store, "SELECT country FROM data").is_err());
    assert!(query(&store, "totally not sql").is_err());
}

#[test]
fn render_produces_readable_table() {
    let table = generate_logs(&LogsSpec::scaled(300));
    let store = DataStore::build(&table, &BuildOptions::basic()).unwrap();
    let (result, _) = query(
        &store,
        "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 3",
    )
    .unwrap();
    let text = result.render();
    assert!(text.contains("country"));
    assert!(text.lines().count() >= 4);
}
