//! Seeded property test for the compressed-domain kernel fast paths: for
//! random tables whose key columns land on **every** `Elements`
//! representation (const / bitset / u8 / u16 / u32 codes), random masks
//! and float columns seeded with the adversarial values (NaN, ±0.0, ±inf,
//! subnormals), the run-aware and dense-float kernels must return results
//! **bit-identical** to the fully materializing kernels — `assert_eq!` on
//! [`pd_core::QueryResult`], whose float comparison is `total_cmp` (so a
//! flipped NaN payload or a `-0.0` vs `+0.0` would fail, not pass).

use pd_common::rng::Rng;
use pd_common::{DataType, Row, Schema, Value};
use pd_core::{
    execute, BuildOptions, DataStore, ExecContext, KernelConfig, PartitionSpec, QueryResult,
};
use pd_data::Table;
use pd_sql::{analyze, parse_query, AnalyzedQuery};

/// Adversarial float palette: the values whose sums distinguish an exact
/// accumulator from a naive one (and a bit-exact fold from an approximate
/// one).
const SPECIALS: [f64; 10] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    0.0,
    -0.0,
    5e-324, // smallest positive subnormal
    -5e-324,
    f64::MIN_POSITIVE, // smallest positive normal
    1e308,             // large: two of these overflow f64
    -1e308,
];

fn random_float(rng: &mut Rng, specials: bool) -> f64 {
    if specials && rng.chance(0.25) {
        return SPECIALS[rng.range_usize(0, SPECIALS.len())];
    }
    // A wide but finite spread, signed, with exact-decimal cases mixed in.
    match rng.range_usize(0, 3) {
        0 => rng.range_i64_inclusive(-1_000, 1_000) as f64 * 0.25,
        1 => (rng.next_f64() - 0.5) * 1e6,
        _ => rng.next_f64() * 1e-3,
    }
}

/// A random table whose `k` column is built to land on the requested
/// dictionary cardinality (and therefore `Elements` representation once
/// encoded): 1 → const, 2 → bitset, ≤256 → u8 codes, ≤65536 → u16, else
/// u32.
fn random_table(rng: &mut Rng, key_card: usize, rows: usize, specials: bool) -> Table {
    let schema = Schema::of(&[
        ("k", DataType::Str),
        ("n", DataType::Int),
        ("x", DataType::Float),
        ("r", DataType::Int),
    ]);
    let mut table = Table::new(schema);
    for _ in 0..rows {
        table
            .push_row(Row(vec![
                Value::from(format!("k{:05}", rng.range_usize(0, key_card))),
                Value::Int(rng.range_i64_inclusive(i64::MIN / 4, i64::MAX / 4)),
                Value::Float(random_float(rng, specials)),
                Value::Int(rng.range_i64_inclusive(0, 99)),
            ]))
            .unwrap();
    }
    table
}

fn queries(rng: &mut Rng) -> Vec<String> {
    // A random mask: the `r` column is uniform 0..100, so the threshold is
    // a random selectivity — including empty and all-pass masks.
    let t = rng.range_i64_inclusive(-5, 105);
    vec![
        // Unmasked single-key group-by: the key-run / double-double shapes.
        "SELECT k, COUNT(*) c, SUM(n) s, SUM(x) f, AVG(x) a FROM data GROUP BY k".into(),
        // Global aggregates: the whole-chunk run shape.
        "SELECT COUNT(*) c, SUM(n) s, SUM(x) f, AVG(x) a FROM data".into(),
        // Masked variants: every fast path must fall back bit-identically.
        format!("SELECT k, COUNT(*) c, SUM(x) f FROM data WHERE r < {t} GROUP BY k"),
        format!("SELECT COUNT(*) c, SUM(x) f, AVG(x) a FROM data WHERE r < {t}"),
    ]
}

fn run(store: &DataStore, analyzed: &AnalyzedQuery, kernels: KernelConfig) -> QueryResult {
    let ctx = ExecContext { threads: 1, kernels, ..Default::default() };
    execute(store, analyzed, &ctx).unwrap().0
}

fn assert_all_configs_match(table: &Table, options: &BuildOptions, sqls: &[String], label: &str) {
    let store = DataStore::build(table, options).unwrap();
    for sql in sqls {
        let analyzed = analyze(&parse_query(sql).unwrap()).unwrap();
        let want = run(&store, &analyzed, KernelConfig::materializing());
        for run_aware in [false, true] {
            for dense_float in [false, true] {
                let got = run(&store, &analyzed, KernelConfig { run_aware, dense_float });
                assert_eq!(
                    got, want,
                    "{label} run_aware={run_aware} dense_float={dense_float}: {sql}"
                );
            }
        }
    }
}

#[test]
fn fast_paths_match_materializing_for_every_representation() {
    let mut rng = Rng::seed_from_u64(0xae41_0001);
    // Key cardinalities chosen to land on const (1), bitset (2), u8 codes
    // (≤256) and u16 codes (>256) chunk dictionaries.
    for key_card in [1usize, 2, 60, 300] {
        for case in 0..6 {
            let rows = rng.range_usize(1, 500);
            let specials = case % 2 == 0;
            let table = random_table(&mut rng, key_card, rows, specials);
            let sqls = queries(&mut rng);
            for options in
                [BuildOptions::basic(), BuildOptions::reordered(PartitionSpec::new(&["k"], 8))]
            {
                let label = format!("key_card={key_card} case={case} rows={rows} {options:?}");
                assert_all_configs_match(&table, &options, &sqls, &label);
            }
        }
    }
}

#[test]
fn fast_paths_match_materializing_on_u32_codes() {
    // > 65536 distinct values in one chunk forces u32 codes. The wide
    // column is the *aggregate argument* (distinct ints and floats), so
    // the output stays one group per `k` while the scanned representation
    // is the widest one.
    let mut rng = Rng::seed_from_u64(0xae41_0002);
    let rows = 70_000;
    let schema = Schema::of(&[
        ("k", DataType::Str),
        ("n", DataType::Int),
        ("x", DataType::Float),
        ("r", DataType::Int),
    ]);
    let mut table = Table::new(schema);
    for i in 0..rows {
        table
            .push_row(Row(vec![
                Value::from(["red", "green", "blue"][rng.range_usize(0, 3)]),
                Value::Int(i as i64 * 1_000_003), // all distinct
                Value::Float(if rng.chance(0.001) {
                    SPECIALS[rng.range_usize(0, SPECIALS.len())]
                } else {
                    i as f64 * 1.000_000_1 // essentially all distinct
                }),
                Value::Int(rng.range_i64_inclusive(0, 99)),
            ]))
            .unwrap();
    }
    let sqls = queries(&mut rng);
    assert_all_configs_match(&table, &BuildOptions::basic(), &sqls, "u32-arg");
}

#[test]
fn sums_of_specials_alone_stay_bit_identical() {
    // Degenerate columns made *only* of adversarial values: every group's
    // sum is NaN/inf/±0.0-sensitive, so any fast path that mishandled a
    // special would flip a bit here.
    let mut rng = Rng::seed_from_u64(0xae41_0003);
    for _ in 0..8 {
        let rows = rng.range_usize(1, 200);
        let schema = Schema::of(&[
            ("k", DataType::Str),
            ("n", DataType::Int),
            ("x", DataType::Float),
            ("r", DataType::Int),
        ]);
        let mut table = Table::new(schema);
        for _ in 0..rows {
            table
                .push_row(Row(vec![
                    Value::from(["a", "b"][rng.range_usize(0, 2)]),
                    Value::Int(rng.range_i64_inclusive(-3, 3)),
                    Value::Float(SPECIALS[rng.range_usize(0, SPECIALS.len())]),
                    Value::Int(rng.range_i64_inclusive(0, 99)),
                ]))
                .unwrap();
        }
        let sqls = queries(&mut rng);
        for options in
            [BuildOptions::basic(), BuildOptions::reordered(PartitionSpec::new(&["k"], 4))]
        {
            assert_all_configs_match(&table, &options, &sqls, "specials-only");
        }
    }
}
