//! CSV reading and writing.
//!
//! One of the two row-wise baseline formats of Table 1. The dialect is
//! RFC-4180-ish: comma separators, `"` quoting with `""` escapes, a header
//! row with the field names, `\n` record ends (with `\r\n` tolerated on
//! read).

use crate::table::Table;
use pd_common::{DataType, Error, Result, Row, Schema, Value};
use std::io::{BufRead, Write};

/// Write `table` as CSV with a header row.
pub fn write_csv<W: Write>(table: &Table, out: &mut W) -> Result<()> {
    let names: Vec<&str> = table.schema().fields().iter().map(|f| f.name.as_str()).collect();
    write_record(out, names.iter().copied())?;
    for i in 0..table.len() {
        let row = table.row(i);
        // Values render without quotes; quoting is applied per field.
        let fields: Vec<String> = row.values().iter().map(|v| v.render().into_owned()).collect();
        write_record(out, fields.iter().map(String::as_str))?;
    }
    Ok(())
}

fn write_record<'a, W: Write>(out: &mut W, fields: impl Iterator<Item = &'a str>) -> Result<()> {
    let mut first = true;
    for f in fields {
        if !first {
            out.write_all(b",")?;
        }
        first = false;
        if f.contains(['"', ',', '\n', '\r']) {
            out.write_all(b"\"")?;
            out.write_all(f.replace('"', "\"\"").as_bytes())?;
            out.write_all(b"\"")?;
        } else {
            out.write_all(f.as_bytes())?;
        }
    }
    out.write_all(b"\n")?;
    Ok(())
}

/// Read a CSV with a header row into a table with the given schema. The
/// header must name exactly the schema's fields (in order); values are
/// parsed according to the schema's types.
pub fn read_csv<R: BufRead>(input: &mut R, schema: &Schema) -> Result<Table> {
    let mut lines = CsvRecords { input, buf: String::new() };
    let header =
        lines.next_record()?.ok_or_else(|| Error::Data("csv: missing header row".into()))?;
    let expected: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
    if header != expected {
        return Err(Error::Data(format!(
            "csv: header {header:?} does not match schema {expected:?}"
        )));
    }
    let mut table = Table::new(schema.clone());
    while let Some(fields) = lines.next_record()? {
        if fields.len() != schema.len() {
            return Err(Error::Data(format!(
                "csv: row has {} fields, expected {}",
                fields.len(),
                schema.len()
            )));
        }
        let values: Vec<Value> = fields
            .iter()
            .zip(schema.fields())
            .map(|(raw, field)| parse_value(raw, field.data_type))
            .collect::<Result<_>>()?;
        table.push_row(Row(values))?;
    }
    Ok(table)
}

fn parse_value(raw: &str, dtype: DataType) -> Result<Value> {
    match dtype {
        DataType::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::Data(format!("csv: `{raw}` is not an integer"))),
        DataType::Float => raw
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::Data(format!("csv: `{raw}` is not a float"))),
        DataType::Str => Ok(Value::Str(raw.to_owned())),
    }
}

/// Incremental record reader handling quoted fields that span lines.
struct CsvRecords<'a, R: BufRead> {
    input: &'a mut R,
    buf: String,
}

impl<R: BufRead> CsvRecords<'_, R> {
    fn next_record(&mut self) -> Result<Option<Vec<String>>> {
        self.buf.clear();
        let n = self.input.read_line(&mut self.buf)?;
        if n == 0 {
            return Ok(None);
        }
        // Keep reading while inside an unterminated quote.
        while quote_open(&self.buf) {
            let more = self.input.read_line(&mut self.buf)?;
            if more == 0 {
                return Err(Error::Data("csv: unterminated quoted field".into()));
            }
        }
        let line = self.buf.trim_end_matches(['\n', '\r']);
        Ok(Some(split_record(line)?))
    }
}

fn quote_open(s: &str) -> bool {
    let mut open = false;
    for c in s.chars() {
        if c == '"' {
            open = !open;
        }
    }
    open
}

fn split_record(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' if cur.is_empty() => quoted = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                other => cur.push(other),
            }
        }
    }
    if quoted {
        return Err(Error::Data("csv: unterminated quote".into()));
    }
    fields.push(cur);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample() -> Table {
        let schema =
            Schema::of(&[("ts", DataType::Int), ("name", DataType::Str), ("lat", DataType::Float)]);
        let mut t = Table::new(schema);
        t.push_row(Row(vec![Value::Int(10), Value::from("plain"), Value::Float(1.5)])).unwrap();
        t.push_row(Row(vec![Value::Int(-3), Value::from("with,comma"), Value::Float(0.25)]))
            .unwrap();
        t.push_row(Row(vec![Value::Int(0), Value::from("say \"hi\""), Value::Float(2.0)])).unwrap();
        t.push_row(Row(vec![Value::Int(7), Value::from("two\nlines"), Value::Float(-1.0)]))
            .unwrap();
        t
    }

    #[test]
    fn round_trip_with_quoting() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(&mut BufReader::new(&buf[..]), t.schema()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn header_is_validated() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let other = Schema::of(&[("x", DataType::Int)]);
        assert!(read_csv(&mut BufReader::new(&buf[..]), &other).is_err());
    }

    #[test]
    fn type_errors_are_reported() {
        let schema = Schema::of(&[("n", DataType::Int)]);
        let data = b"n\nnot_a_number\n";
        let err = read_csv(&mut BufReader::new(&data[..]), &schema).unwrap_err();
        assert!(err.to_string().contains("not an integer"));
    }

    #[test]
    fn arity_errors_are_reported() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        let data = b"a,b\n1\n";
        assert!(read_csv(&mut BufReader::new(&data[..]), &schema).is_err());
    }

    #[test]
    fn empty_table_round_trips() {
        let schema = Schema::of(&[("a", DataType::Str)]);
        let t = Table::new(schema);
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(&mut BufReader::new(&buf[..]), t.schema()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let schema = Schema::of(&[("a", DataType::Str)]);
        let data = b"a\n\"open\n";
        assert!(read_csv(&mut BufReader::new(&data[..]), &schema).is_err());
    }

    #[test]
    fn crlf_tolerated() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let data = b"a\r\n5\r\n";
        let t = read_csv(&mut BufReader::new(&data[..]), &schema).unwrap();
        assert_eq!(t.row(0).get(0), &Value::Int(5));
    }
}
