//! Seeded synthetic datasets mirroring the paper's experimental inputs.
//!
//! §2.5: *"For realistic input data we decided to simply use our own logs as
//! source. [...] For our experiments we have extracted 5 million rows with
//! the fields timestamp, table name, latency, and country. [...] the table
//! name is actually a field with many distinct values (several 100K; [...]
//! table-names usually include the date). [...] The field country on the
//! other hand of course has only few distinct values, 25 to be concrete."*
//!
//! [`generate_logs`] reproduces that cardinality profile at any scale, with
//! the correlations the paper's partitioning relies on (§6: *"we strongly
//! benefit from correlations in the data"*): table names cluster by
//! country, their date suffix follows the timestamp, and timestamps grow
//! with row order (*implicit clustering*).
//!
//! [`generate_searches`] builds the web-search table from the introduction
//! ("all German searches from yesterday afternoon that contain the word
//! 'auto'") used by the drill-down example and the production workload.

use crate::table::Table;
use pd_common::rng::Rng;
use pd_common::{DataType, Row, Schema, Value};

/// 2011-10-01 00:00:00 UTC — the start of the paper's measurement quarter
/// ("collected over all queries processed during the last three months of
/// 2011").
pub const LOGS_EPOCH: i64 = 1_317_427_200;

/// Configuration for [`generate_logs`].
#[derive(Debug, Clone)]
pub struct LogsSpec {
    /// Number of rows (the paper uses 5 million).
    pub rows: usize,
    /// RNG seed; equal specs generate identical tables.
    pub seed: u64,
    /// Distinct countries (the paper's logs have 25).
    pub countries: usize,
    /// Base table-name pool; actual distinct names ≈ bases × days due to
    /// date suffixes.
    pub name_bases: usize,
    /// Days covered by the timestamps (the paper's window is a quarter).
    pub days: usize,
    /// Distinct users (for the "natural primary key" partitioning demos).
    pub users: usize,
}

impl LogsSpec {
    /// The paper-scale profile, shrunk to `rows`: cardinalities scale so
    /// that 5M rows yield "several 100K" distinct table names.
    pub fn scaled(rows: usize) -> LogsSpec {
        LogsSpec {
            rows,
            seed: 0x009d_2111,
            countries: 25,
            name_bases: (rows / 1_500).clamp(40, 4_000),
            days: 92,
            users: (rows / 5_000).clamp(10, 1_000),
        }
    }
}

/// The schema produced by [`generate_logs`].
pub fn logs_schema() -> Schema {
    Schema::of(&[
        ("timestamp", DataType::Int),
        ("table_name", DataType::Str),
        ("latency", DataType::Float),
        ("country", DataType::Str),
        ("user", DataType::Str),
    ])
}

const COUNTRIES: [&str; 25] = [
    "US", "DE", "GB", "JP", "FR", "BR", "IN", "CA", "AU", "NL", "IT", "ES", "SE", "CH", "PL", "RU",
    "KR", "MX", "TR", "AR", "BE", "DK", "IE", "SG", "ZA",
];

const TEAMS: [&str; 12] = [
    "ads", "search", "gmail", "maps", "youtube", "android", "chrome", "cloud", "billing",
    "revenue", "spam", "infra",
];

const DATASETS: [&str; 10] = [
    "queries",
    "clicks",
    "impressions",
    "latency_rollup",
    "daily_summary",
    "events",
    "errors",
    "experiments",
    "sessions",
    "audit",
];

/// Generate the PowerDrill query-log table.
pub fn generate_logs(spec: &LogsSpec) -> Table {
    let mut rng = Rng::seed_from_u64(spec.seed);
    let schema = logs_schema();
    let mut table = Table::new(schema);

    let countries = spec.countries.clamp(1, COUNTRIES.len());
    let country_zipf = ZipfSampler::new(countries, 1.1);
    let base_zipf = ZipfSampler::new(spec.name_bases.max(1), 1.05);
    let window = spec.days.max(1) as i64 * 86_400;

    // Pre-render the base names ("logs.{team}.{dataset}_{k}").
    let bases: Vec<String> = (0..spec.name_bases.max(1))
        .map(|k| {
            format!(
                "logs.{}.{}_{:04}",
                TEAMS[k % TEAMS.len()],
                DATASETS[(k / TEAMS.len()) % DATASETS.len()],
                k
            )
        })
        .collect();

    for i in 0..spec.rows {
        // Timestamps increase with row order plus jitter — the "implicit
        // clustering" of appended log records.
        let base_ts = (i as i64 * window) / spec.rows.max(1) as i64;
        let jitter = rng.range_i64_inclusive(0, 600);
        let ts = LOGS_EPOCH + (base_ts + jitter).min(window - 1);

        let country_idx = country_zipf.sample(&mut rng);
        // Country-correlated table names: interleaving (rank, country)
        // pairs gives each country an (almost) disjoint slice of the base
        // pool. This correlation is what lets a partitioning by
        // (country, table_name) skip chunks for either restriction.
        let raw_base = base_zipf.sample(&mut rng);
        let base_idx = (raw_base * countries + country_idx) % bases.len();

        // Most tables are date-suffixed (as Dremel table names in the
        // paper are); a fifth of the pool is "timeless". The referenced
        // date lags the query's timestamp with a heavy tail — analysts
        // mostly look at fresh tables but regularly reach back weeks —
        // which interleaves many distinct names at any point in time (the
        // disorder the §3 row reordering removes).
        let name = if base_idx.is_multiple_of(5) {
            bases[base_idx].clone()
        } else {
            let u: f64 = rng.next_f64();
            let lag = (u * u * u * 30.0) as i64;
            let day = (((ts - LOGS_EPOCH) / 86_400) - lag).max(0) as usize;
            let (y, m, d) = date_of_day(day);
            format!("{}.{y:04}-{m:02}-{d:02}", bases[base_idx])
        };

        // Heavy-tailed latency in whole milliseconds, scaled by a
        // per-table profile: many distinct values per chunk (the paper's
        // characterization of this field) yet correlated with table_name,
        // so the §3 reordering clusters similar values.
        let latency = {
            let u: f64 = rng.next_f64().max(1e-12);
            // Each table lives in a latency band (cheap lookups vs heavy
            // scans), with exponential within-band noise.
            const BANDS: [f64; 8] = [25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0];
            let band = BANDS[base_idx.wrapping_mul(2_654_435_761) % BANDS.len()];
            (band * (1.0 + 0.6 * -u.ln())).round()
        };

        let user = format!("user_{:05}", rng.range_usize(0, spec.users.max(1)));

        table
            .push_row(Row(vec![
                Value::Int(ts),
                Value::Str(name),
                Value::Float(latency),
                Value::Str(COUNTRIES[country_idx].to_owned()),
                Value::Str(user),
            ]))
            .expect("generator respects its own schema");
    }
    table
}

/// Configuration for [`generate_searches`].
#[derive(Debug, Clone)]
pub struct SearchesSpec {
    pub rows: usize,
    pub seed: u64,
    pub days: usize,
}

impl SearchesSpec {
    pub fn scaled(rows: usize) -> SearchesSpec {
        SearchesSpec { rows, seed: 0x005e_a6c0, days: 7 }
    }
}

/// The schema produced by [`generate_searches`].
pub fn searches_schema() -> Schema {
    Schema::of(&[
        ("timestamp", DataType::Int),
        ("country", DataType::Str),
        ("search_string", DataType::Str),
    ])
}

const EN_TERMS: [&str; 12] = [
    "cat",
    "cheap flights",
    "weather",
    "ebay",
    "amazon",
    "news",
    "yellow pages",
    "pizza",
    "car insurance",
    "maps",
    "hotel",
    "jobs",
];
const DE_TERMS: [&str; 12] = [
    "auto",
    "billige flüge",
    "wetter",
    "ebay",
    "amazon",
    "nachrichten",
    "gelbe seiten",
    "karnevalskostüme",
    "autoversicherung",
    "ab in den urlaub",
    "immobilienscout",
    "jobs",
];
const FR_TERMS: [&str; 12] = [
    "voiture",
    "vols pas chers",
    "météo",
    "ebay",
    "amazon",
    "actualités",
    "pages jaunes",
    "la redoute",
    "assurance auto",
    "voyages sncf",
    "chaussures",
    "emploi",
];

/// Generate the web-search table of the introduction's drill-down story:
/// search terms correlate strongly with country/language.
pub fn generate_searches(spec: &SearchesSpec) -> Table {
    let mut rng = Rng::seed_from_u64(spec.seed);
    let mut table = Table::new(searches_schema());
    let window = spec.days.max(1) as i64 * 86_400;
    let zipf = ZipfSampler::new(EN_TERMS.len(), 1.0);

    for i in 0..spec.rows {
        let ts = LOGS_EPOCH
            + (i as i64 * window) / spec.rows.max(1) as i64
            + rng.range_i64_inclusive(0, 120);
        // 50% US/GB English, 30% DE, 20% FR.
        let (country, terms): (&str, &[&str]) = match rng.range_usize(0, 10) {
            0..=3 => ("US", &EN_TERMS),
            4 => ("GB", &EN_TERMS),
            5..=7 => ("DE", &DE_TERMS),
            _ => ("FR", &FR_TERMS),
        };
        let term = terms[zipf.sample(&mut rng)];
        // A third of searches add a qualifier, growing the distinct count.
        let search = match rng.range_usize(0, 3) {
            0 => format!("{term} {}", rng.range_i64_inclusive(2010, 2012)),
            _ => term.to_owned(),
        };
        table
            .push_row(Row(vec![Value::Int(ts), Value::Str(country.to_owned()), Value::Str(search)]))
            .expect("generator respects its own schema");
    }
    table
}

/// Zipf-distributed sampling over `0..n` via the inverse-CDF of
/// precomputed cumulative weights.
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Ranks `0..n` with weight `1/(k+1)^s`.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for k in 0..n.max(1) {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    pub fn sample(&self, rng: &mut Rng) -> usize {
        let target = rng.next_f64() * self.cumulative.last().copied().unwrap_or(1.0);
        self.cumulative.partition_point(|&c| c < target).min(self.cumulative.len() - 1)
    }
}

/// (year, month, day) of `day` days after [`LOGS_EPOCH`].
fn date_of_day(day: usize) -> (i64, u32, u32) {
    let z = LOGS_EPOCH / 86_400 + day as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_seed() {
        let spec = LogsSpec::scaled(2_000);
        let a = generate_logs(&spec);
        let b = generate_logs(&spec);
        assert_eq!(a, b);
        let mut other = spec.clone();
        other.seed += 1;
        assert_ne!(generate_logs(&other), a);
    }

    #[test]
    fn cardinality_profile_matches_paper() {
        let t = generate_logs(&LogsSpec::scaled(20_000));
        let distinct = |col: &str| -> usize {
            t.column_by_name(col)
                .unwrap()
                .iter()
                .map(|v| v.render().into_owned())
                .collect::<HashSet<_>>()
                .len()
        };
        assert_eq!(distinct("country"), 25, "paper: exactly 25 countries");
        let names = distinct("table_name");
        // "a field with many distinct values": at 20K rows the profile
        // yields thousands of names; at 5M it reaches several 100K.
        assert!(names > 1_000, "distinct table names = {names}");
        let latencies = distinct("latency");
        assert!(latencies > 1_500, "latency has many distinct values: {latencies}");
    }

    #[test]
    fn timestamps_are_implicitly_clustered() {
        let t = generate_logs(&LogsSpec::scaled(5_000));
        let ts = t.column_by_name("timestamp").unwrap();
        // Row order correlates with time: a row 1000 positions later is
        // (almost) never earlier in time.
        let mut violations = 0;
        for i in 0..ts.len() - 1000 {
            if ts[i + 1000].as_int() < ts[i].as_int() {
                violations += 1;
            }
        }
        assert_eq!(violations, 0);
        // All timestamps inside the window.
        for v in ts {
            let x = v.as_int().unwrap();
            assert!((LOGS_EPOCH..LOGS_EPOCH + 92 * 86_400).contains(&x));
        }
    }

    #[test]
    fn country_distribution_is_skewed() {
        let t = generate_logs(&LogsSpec::scaled(20_000));
        let mut counts = std::collections::HashMap::new();
        for v in t.column_by_name("country").unwrap() {
            *counts.entry(v.render().into_owned()).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let min = counts.values().copied().min().unwrap();
        assert!(max > min * 5, "zipf skew expected: max={max} min={min}");
    }

    #[test]
    fn table_names_correlate_with_country() {
        let t = generate_logs(&LogsSpec::scaled(20_000));
        let countries = t.column_by_name("country").unwrap();
        let names = t.column_by_name("table_name").unwrap();
        let names_of = |c: &str| -> HashSet<String> {
            countries
                .iter()
                .zip(names)
                .filter(|(cc, _)| cc.as_str() == Some(c))
                .map(|(_, n)| n.render().into_owned())
                .collect()
        };
        let us = names_of("US");
        let de = names_of("DE");
        let overlap = us.intersection(&de).count();
        // The rotated-slice affinity keeps the overlap well below either set.
        assert!(
            overlap * 3 < us.len().min(de.len()),
            "overlap {overlap} vs US {} DE {}",
            us.len(),
            de.len()
        );
    }

    #[test]
    fn searches_have_language_correlation() {
        let t = generate_searches(&SearchesSpec::scaled(10_000));
        let countries = t.column_by_name("country").unwrap();
        let searches = t.column_by_name("search_string").unwrap();
        let mut de_auto = 0usize;
        let mut us_auto = 0usize;
        for (c, s) in countries.iter().zip(searches) {
            let has_auto = s.as_str().unwrap().contains("auto");
            match c.as_str().unwrap() {
                "DE" if has_auto => de_auto += 1,
                "US" if has_auto => us_auto += 1,
                _ => {}
            }
        }
        assert!(de_auto > 100, "german auto searches: {de_auto}");
        assert_eq!(us_auto, 0, "'auto(versicherung)' is a German term here");
    }

    #[test]
    fn zipf_sampler_is_monotone_skewed() {
        let z = ZipfSampler::new(100, 1.1);
        let mut rng = Rng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[70]);
        assert!(counts[0] > 10_000, "rank 0 dominates: {}", counts[0]);
    }

    #[test]
    fn date_suffixes_lag_timestamps() {
        // The referenced table date is at most 30 days before the query's
        // own date (analysts reach back with a heavy tail), never after.
        let t = generate_logs(&LogsSpec::scaled(5_000));
        let ts = t.column_by_name("timestamp").unwrap();
        let names = t.column_by_name("table_name").unwrap();
        let mut lags = Vec::new();
        for (v, n) in ts.iter().zip(names) {
            let name = n.as_str().unwrap();
            let Some(suffix) = name.rsplit('.').next().filter(|s| s.len() == 10 && s.contains('-'))
            else {
                continue;
            };
            let query_day = (v.as_int().unwrap() - LOGS_EPOCH) / 86_400;
            let mut found = None;
            for lag in 0..=query_day.min(30) {
                let (y, m, d) = date_of_day((query_day - lag) as usize);
                if suffix == format!("{y:04}-{m:02}-{d:02}") {
                    found = Some(lag);
                    break;
                }
            }
            lags.push(found.unwrap_or_else(|| panic!("suffix {suffix} not within 30 days")));
        }
        assert!(!lags.is_empty());
        // Heavy tail: most lags are 0, but some reach back.
        let zeros = lags.iter().filter(|&&l| l == 0).count();
        assert!(zeros * 4 > lags.len(), "fresh tables dominate: {zeros}/{}", lags.len());
        assert!(lags.iter().any(|&l| l >= 5), "some queries reach back");
    }
}
