//! Table model, file formats and dataset generators.
//!
//! The paper's basic experiments (§2.5) run three queries over "5 million
//! rows with the fields timestamp, table name, latency, and country"
//! extracted from PowerDrill's own query logs, comparing the column-store
//! against CSV and record-io row formats. This crate supplies all of that
//! substrate:
//!
//! - [`table`] — an in-memory, column-major [`table::Table`];
//! - [`csv`] — the CSV format (quoting, headers, type-directed parsing);
//! - [`recordio`] — "record-io", re-implemented as a varint-framed tagged
//!   binary row format in the spirit of protocol buffers;
//! - [`gen`] — seeded synthetic data: [`gen::generate_logs`] reproduces the
//!   cardinality profile of the paper's logs (25 countries, a heavy-tailed
//!   table-name field whose distinct count grows into the hundreds of
//!   thousands at full scale, dense timestamps, skewed latencies), and
//!   [`gen::generate_searches`] produces the web-search table the
//!   introduction's drill-down scenario uses.

#![forbid(unsafe_code)]

pub mod csv;
pub mod gen;
pub mod recordio;
pub mod table;

pub use gen::{generate_logs, generate_searches, LogsSpec, SearchesSpec};
pub use table::Table;
