//! record-io: a varint-framed binary row format.
//!
//! The paper's second row-wise baseline is "record-io (binary format based
//! on protocol buffers)". This module re-implements that idea with the same
//! wire primitives protocol buffers use: little-endian varints, zigzag
//! signed integers, length-prefixed byte strings.
//!
//! File layout:
//!
//! ```text
//! magic "PDRIO1"
//! varint(field_count) then per field: varint(name_len) name type:u8
//! varint(row_count)
//! per row: varint(record_len) record
//! per record, fields in schema order:
//!   Int   -> zigzag varint
//!   Float -> 8 bytes LE
//!   Str   -> varint(len) bytes
//! ```

use crate::table::Table;
use pd_common::{DataType, Error, Result, Row, Schema, Value};
use pd_compress::varint;

const MAGIC: &[u8; 6] = b"PDRIO1";

/// Serialize `table` into record-io bytes.
pub fn write_recordio(table: &Table) -> Vec<u8> {
    let mut out = Vec::with_capacity(table.len() * 16 + 64);
    out.extend_from_slice(MAGIC);
    let mut scratch = Vec::new();
    varint::write_u64(&mut scratch, table.schema().len() as u64);
    for f in table.schema().fields() {
        varint::write_u64(&mut scratch, f.name.len() as u64);
        scratch.extend_from_slice(f.name.as_bytes());
        scratch.push(type_tag(f.data_type));
    }
    varint::write_u64(&mut scratch, table.len() as u64);
    out.extend_from_slice(&scratch);

    let mut record = Vec::new();
    for i in 0..table.len() {
        record.clear();
        for (c, _) in table.schema().fields().iter().enumerate() {
            encode_value(&mut record, &table.column(c)[i]);
        }
        scratch.clear();
        varint::write_u64(&mut scratch, record.len() as u64);
        out.extend_from_slice(&scratch);
        out.extend_from_slice(&record);
    }
    out
}

/// Deserialize record-io bytes.
pub fn read_recordio(bytes: &[u8]) -> Result<Table> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(Error::Data("recordio: bad magic".into()));
    }

    let mut pos = MAGIC.len();
    let field_count = varint::read_u64(bytes, &mut pos)? as usize;
    if field_count > 10_000 {
        return Err(Error::Data("recordio: implausible field count".into()));
    }
    let mut fields = Vec::with_capacity(field_count);
    for _ in 0..field_count {
        let name_len = varint::read_u64(bytes, &mut pos)? as usize;
        let raw = bytes
            .get(pos..pos + name_len)
            .ok_or_else(|| Error::Data("recordio: truncated field name".into()))?;
        let name = std::str::from_utf8(raw)
            .map_err(|_| Error::Data("recordio: field name not UTF-8".into()))?
            .to_owned();
        pos += name_len;
        let tag =
            *bytes.get(pos).ok_or_else(|| Error::Data("recordio: truncated type tag".into()))?;
        pos += 1;
        fields.push(pd_common::Field::new(name, tag_type(tag)?));
    }
    let schema = Schema::new(fields)?;
    let row_count = varint::read_u64(bytes, &mut pos)? as usize;

    let mut table = Table::new(schema.clone());
    for _ in 0..row_count {
        let record_len = varint::read_u64(bytes, &mut pos)? as usize;
        let end = pos
            .checked_add(record_len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| Error::Data("recordio: truncated record".into()))?;
        let mut values = Vec::with_capacity(schema.len());
        for f in schema.fields() {
            values.push(decode_value(bytes, &mut pos, f.data_type, end)?);
        }
        if pos != end {
            return Err(Error::Data("recordio: record length mismatch".into()));
        }
        table.push_row(Row(values))?;
    }
    Ok(table)
}

/// Iterate over records without materializing a `Table` — the streaming
/// access pattern of the record-io baseline backend.
pub struct RecordIoReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    schema: Schema,
    remaining: usize,
}

impl<'a> RecordIoReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(Error::Data("recordio: bad magic".into()));
        }
        let mut pos = MAGIC.len();
        let field_count = varint::read_u64(bytes, &mut pos)? as usize;
        if field_count > 10_000 {
            return Err(Error::Data("recordio: implausible field count".into()));
        }
        let mut fields = Vec::with_capacity(field_count);
        for _ in 0..field_count {
            let name_len = varint::read_u64(bytes, &mut pos)? as usize;
            let raw = bytes
                .get(pos..pos + name_len)
                .ok_or_else(|| Error::Data("recordio: truncated field name".into()))?;
            let name = std::str::from_utf8(raw)
                .map_err(|_| Error::Data("recordio: field name not UTF-8".into()))?
                .to_owned();
            pos += name_len;
            let tag = *bytes
                .get(pos)
                .ok_or_else(|| Error::Data("recordio: truncated type tag".into()))?;
            pos += 1;
            fields.push(pd_common::Field::new(name, tag_type(tag)?));
        }
        let schema = Schema::new(fields)?;
        let remaining = varint::read_u64(bytes, &mut pos)? as usize;
        Ok(RecordIoReader { bytes, pos, schema, remaining })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Read the next record, or `None` at end of stream.
    pub fn next_record(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let record_len = varint::read_u64(self.bytes, &mut self.pos)? as usize;
        let end = self
            .pos
            .checked_add(record_len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| Error::Data("recordio: truncated record".into()))?;
        let mut values = Vec::with_capacity(self.schema.len());
        for f in self.schema.fields() {
            values.push(decode_value(self.bytes, &mut self.pos, f.data_type, end)?);
        }
        if self.pos != end {
            return Err(Error::Data("recordio: record length mismatch".into()));
        }
        Ok(Some(Row(values)))
    }
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(x) => varint::write_i64(out, *x),
        Value::Float(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::Str(s) => {
            varint::write_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Null => unreachable!("tables reject NULL"),
    }
}

fn decode_value(bytes: &[u8], pos: &mut usize, dtype: DataType, end: usize) -> Result<Value> {
    match dtype {
        DataType::Int => Ok(Value::Int(varint::read_i64(bytes, pos)?)),
        DataType::Float => {
            let raw = bytes
                .get(*pos..*pos + 8)
                .filter(|_| *pos + 8 <= end)
                .ok_or_else(|| Error::Data("recordio: truncated float".into()))?;
            *pos += 8;
            Ok(Value::Float(f64::from_le_bytes(raw.try_into().expect("8 bytes"))))
        }
        DataType::Str => {
            let len = varint::read_u64(bytes, pos)? as usize;
            let raw = bytes
                .get(*pos..*pos + len)
                .filter(|_| *pos + len <= end)
                .ok_or_else(|| Error::Data("recordio: truncated string".into()))?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| Error::Data("recordio: string not UTF-8".into()))?;
            *pos += len;
            Ok(Value::Str(s.to_owned()))
        }
    }
}

fn type_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
    }
}

fn tag_type(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Str),
        t => Err(Error::Data(format!("recordio: unknown type tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let schema =
            Schema::of(&[("ts", DataType::Int), ("name", DataType::Str), ("lat", DataType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..50i64 {
            t.push_row(Row(vec![
                Value::Int(i * 1_000_003 - 7),
                Value::from(format!("tbl_{}", i % 7)),
                Value::Float(i as f64 * 0.75),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let bytes = write_recordio(&t);
        let back = read_recordio(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn streaming_reader_agrees() {
        let t = sample();
        let bytes = write_recordio(&t);
        let mut reader = RecordIoReader::new(&bytes).unwrap();
        assert_eq!(reader.schema(), t.schema());
        let mut n = 0;
        while let Some(row) = reader.next_record().unwrap() {
            assert_eq!(row, t.row(n));
            n += 1;
        }
        assert_eq!(n, t.len());
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new(Schema::of(&[("a", DataType::Int)]));
        let back = read_recordio(&write_recordio(&t)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(read_recordio(b"NOTRIO....").is_err());
        assert!(read_recordio(b"").is_err());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = write_recordio(&sample());
        for cut in 0..bytes.len() {
            let _ = read_recordio(&bytes[..cut]);
        }
    }

    #[test]
    fn unicode_strings_survive() {
        let schema = Schema::of(&[("s", DataType::Str)]);
        let mut t = Table::new(schema);
        t.push_row(Row(vec![Value::from("karnevalskostüme 日本語")])).unwrap();
        let back = read_recordio(&write_recordio(&t)).unwrap();
        assert_eq!(back, t);
    }
}
