//! An in-memory, column-major table.
//!
//! `Table` is the exchange format between generators, file formats, the
//! baseline backends and the column-store import pipeline. It is
//! deliberately simple — a schema plus one `Vec<Value>` per column — and
//! *not* the paper's data structure; the whole point of the paper is what
//! the store does to this representation at import time.

#[cfg(test)]
use pd_common::DataType;
use pd_common::{Error, HeapSize, Result, Row, Schema, Value};

/// A schema-validated, column-major table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    rows: usize,
}

impl Table {
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.len()).map(|_| Vec::new()).collect();
        Table { schema, columns, rows: 0 }
    }

    /// Build from full columns. All columns must have equal length and
    /// match the schema's types (`Null` is rejected).
    pub fn from_columns(schema: Schema, columns: Vec<Vec<Value>>) -> Result<Self> {
        if columns.len() != schema.len() {
            return Err(Error::Schema(format!(
                "expected {} columns, got {}",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, Vec::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(Error::Schema(format!(
                    "column `{}` has {} rows, expected {rows}",
                    schema.field(i).name,
                    col.len()
                )));
            }
            for v in col {
                check_type(&schema, i, v)?;
            }
        }
        Ok(Table { schema, columns, rows })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of cells (rows × columns) — the unit the paper's title
    /// counts.
    pub fn cells(&self) -> usize {
        self.rows * self.schema.len()
    }

    /// Append a row, validating arity and types.
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::Schema(format!(
                "row has {} values, schema has {} fields",
                row.len(),
                self.schema.len()
            )));
        }
        for (i, v) in row.0.iter().enumerate() {
            check_type(&self.schema, i, v)?;
        }
        for (col, v) in self.columns.iter_mut().zip(row.0) {
            col.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &[Value] {
        &self.columns[idx]
    }

    /// The column named `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&[Value]> {
        Ok(&self.columns[self.schema.resolve(name)?])
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        Row(self.columns.iter().map(|c| c[i].clone()).collect())
    }

    /// Iterate all rows (materializing each).
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// A new table containing the rows selected by `indices`, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Table {
        let columns =
            self.columns.iter().map(|c| indices.iter().map(|&i| c[i].clone()).collect()).collect();
        Table { schema: self.schema.clone(), columns, rows: indices.len() }
    }

    /// Split into `n` quasi-equal horizontal slices (used by sharding).
    pub fn split(&self, n: usize) -> Vec<Table> {
        let n = n.max(1);
        let per = self.rows.div_ceil(n);
        (0..n)
            .map(|s| {
                let lo = (s * per).min(self.rows);
                let hi = ((s + 1) * per).min(self.rows);
                let indices: Vec<usize> = (lo..hi).collect();
                self.select_rows(&indices)
            })
            .collect()
    }
}

impl HeapSize for Table {
    fn heap_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.heap_bytes()).sum()
    }
}

fn check_type(schema: &Schema, idx: usize, v: &Value) -> Result<()> {
    let expected = schema.field(idx).data_type;
    match v.data_type() {
        Some(t) if t == expected => Ok(()),
        Some(t) => Err(Error::Type(format!(
            "column `{}` is {expected} but value `{v}` is {t}",
            schema.field(idx).name
        ))),
        None => {
            Err(Error::Type(format!("column `{}` does not accept NULL", schema.field(idx).name)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[("ts", DataType::Int), ("name", DataType::Str), ("lat", DataType::Float)])
    }

    fn sample() -> Table {
        let mut t = Table::new(schema());
        t.push_row(Row(vec![Value::Int(1), Value::from("a"), Value::Float(0.5)])).unwrap();
        t.push_row(Row(vec![Value::Int(2), Value::from("b"), Value::Float(1.5)])).unwrap();
        t.push_row(Row(vec![Value::Int(3), Value::from("a"), Value::Float(2.5)])).unwrap();
        t
    }

    #[test]
    fn push_and_read_back() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.cells(), 9);
        assert_eq!(t.row(1), Row(vec![Value::Int(2), Value::from("b"), Value::Float(1.5)]));
        assert_eq!(t.column_by_name("name").unwrap()[2], Value::from("a"));
    }

    #[test]
    fn type_violations_rejected() {
        let mut t = Table::new(schema());
        let bad = Row(vec![Value::from("x"), Value::from("a"), Value::Float(0.0)]);
        assert!(t.push_row(bad).is_err());
        let nulls = Row(vec![Value::Null, Value::from("a"), Value::Float(0.0)]);
        assert!(t.push_row(nulls).is_err());
        let short = Row(vec![Value::Int(1)]);
        assert!(t.push_row(short).is_err());
        assert_eq!(t.len(), 0, "failed pushes must not mutate");
    }

    #[test]
    fn from_columns_validates_lengths() {
        let cols = vec![
            vec![Value::Int(1)],
            vec![Value::from("a"), Value::from("b")],
            vec![Value::Float(1.0)],
        ];
        assert!(Table::from_columns(schema(), cols).is_err());
    }

    #[test]
    fn select_rows_projects() {
        let t = sample();
        let picked = t.select_rows(&[2, 0]);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked.row(0).get(0), &Value::Int(3));
        assert_eq!(picked.row(1).get(0), &Value::Int(1));
    }

    #[test]
    fn split_covers_all_rows() {
        let t = sample();
        let parts = t.split(2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.iter().map(Table::len).sum::<usize>(), 3);
        let whole = t.split(1);
        assert_eq!(whole[0].len(), 3);
        let many = t.split(10);
        assert_eq!(many.iter().map(Table::len).sum::<usize>(), 3);
    }

    #[test]
    fn iter_rows_matches_row() {
        let t = sample();
        let rows: Vec<Row> = t.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], t.row(0));
    }
}
