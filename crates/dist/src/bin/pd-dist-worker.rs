//! One node of the §4 computation tree: `pd-dist-worker --socket <path>`.
//! See [`pd_dist::worker`] for the protocol and roles.

fn main() {
    std::process::exit(pd_dist::worker::worker_main());
}
