//! Seeded, rpc-level fault injection for the §4 computation tree.
//!
//! The [`crate::FailureModel`] kill switch only models one failure shape —
//! a primary that never answers. Real trees fail in more ways: connections
//! reset mid-conversation, reply frames arrive torn, workers stall, and
//! any process (merge servers included) can die mid-query. [`ChaosModel`]
//! injects all of those, deterministically: every fault is drawn from a
//! seeded per-(query, node) stream, so a failing run replays bit-for-bit
//! from its seed.
//!
//! The injection point is the wire itself. The driver draws at most one
//! [`ChaosFault`] per tree node per query and ships the resulting
//! [`ChaosDirective`]s inside the `QueryRequest`; each worker applies only
//! the directives naming *its own* node name (assigned at `Load`/`Attach`)
//! and forwards the full list to its children. Faults therefore fire
//! inside real worker processes, on real sockets — the caller-side
//! robustness machinery (typed errors, hedged replica racing, budget
//! expiry) is exercised against genuine transport wreckage, not mocks.
//!
//! Chaos only has effect over [`crate::Transport::Rpc`]: the in-process
//! cluster has no wire to sabotage, and its directives are never drawn.

use pd_common::rng::Rng;
use pd_common::wire::{Decode, Encode, Reader};
use pd_common::{fx_hash64, Error, Result};
use std::time::Duration;

/// One fault a worker must apply while serving one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosDirective {
    /// The tree-node name the fault targets (`l0p`, `l2r`, `m1_0`, ...),
    /// as assigned by the driver at `Load`/`Attach`.
    pub node: String,
    pub fault: ChaosFault,
}

/// The fault shapes a worker can inject, roughly ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Exit the worker process mid-query, before any reply byte: the
    /// parent sees the connection die (`PeerGone`) exactly as it would on
    /// a real crash.
    Kill,
    /// Close the connection without replying — a reset mid-conversation.
    Reset,
    /// Write a truncated reply frame, then close: torn bytes on the wire.
    Torn,
    /// Delay the reply by this much (service time of that query alone,
    /// like the `Delay` test knob).
    Delay(Duration),
}

const FAULT_KILL: u8 = 0;
const FAULT_RESET: u8 = 1;
const FAULT_TORN: u8 = 2;
const FAULT_DELAY: u8 = 3;

impl Encode for ChaosFault {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ChaosFault::Kill => out.push(FAULT_KILL),
            ChaosFault::Reset => out.push(FAULT_RESET),
            ChaosFault::Torn => out.push(FAULT_TORN),
            ChaosFault::Delay(d) => {
                out.push(FAULT_DELAY);
                d.encode(out);
            }
        }
    }
}

impl Decode for ChaosFault {
    fn decode(r: &mut Reader<'_>) -> Result<ChaosFault> {
        Ok(match r.u8()? {
            FAULT_KILL => ChaosFault::Kill,
            FAULT_RESET => ChaosFault::Reset,
            FAULT_TORN => ChaosFault::Torn,
            FAULT_DELAY => ChaosFault::Delay(Duration::decode(r)?),
            other => return Err(Error::Data(format!("wire: invalid chaos-fault tag {other}"))),
        })
    }
}

impl Encode for ChaosDirective {
    fn encode(&self, out: &mut Vec<u8>) {
        self.node.encode(out);
        self.fault.encode(out);
    }
}

impl Decode for ChaosDirective {
    fn decode(r: &mut Reader<'_>) -> Result<ChaosDirective> {
        Ok(ChaosDirective { node: String::decode(r)?, fault: ChaosFault::decode(r)? })
    }
}

/// Seed-keyed fault model. The driver draws per (query, node); everything
/// derives from `(seed, qid, node name)`, never from wall clock or
/// scheduling, so equal seeds and query sequences inject equal faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosModel {
    /// Seed for every draw; independent of the load/failure streams.
    pub seed: u64,
    /// Per-(query, node) probability of a mid-query process kill.
    pub kill_probability: f64,
    /// Per-(query, node) probability of a connection reset (no reply).
    pub reset_probability: f64,
    /// Per-(query, node) probability of a torn (truncated) reply frame.
    pub torn_probability: f64,
    /// Per-(query, node) probability of a delayed reply.
    pub delay_probability: f64,
    /// `(min, max)` of an injected delay.
    pub delay_range: (Duration, Duration),
    /// Node names killed on *every* query, deterministically — the chaos
    /// counterpart of [`crate::FailureModel::kill_primaries`], but aimable
    /// at any tree node, merge servers included.
    pub kill_nodes: Vec<String>,
}

impl ChaosModel {
    /// Whether any draw can ever produce a fault.
    pub fn is_active(&self) -> bool {
        !self.kill_nodes.is_empty()
            || self.kill_probability > 0.0
            || self.reset_probability > 0.0
            || self.torn_probability > 0.0
            || self.delay_probability > 0.0
    }

    /// The deterministic per-(seed, query, node) stream every draw uses.
    fn node_stream(&self, qid: u64, node: &str) -> Rng {
        let mut mix = self.seed;
        mix = mix.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(qid);
        mix = mix.wrapping_mul(0xBF58_476D_1CE4_E5B9).wrapping_add(fx_hash64(node));
        Rng::seed_from_u64(mix)
    }

    /// Draw this query's directives over the named tree nodes: at most one
    /// fault per node, severest first (a killed node needs no torn frame).
    pub fn draw(&self, qid: u64, nodes: &[String]) -> Vec<ChaosDirective> {
        if !self.is_active() {
            return Vec::new();
        }
        let mut directives = Vec::new();
        for node in nodes {
            let fault = if self.kill_nodes.contains(node) {
                Some(ChaosFault::Kill)
            } else {
                let mut rng = self.node_stream(qid, node);
                // Fixed draw order: each probability consumes its stream
                // position whether or not it fires, so tightening one knob
                // never reshuffles the draws of the others.
                let kill = self.kill_probability > 0.0 && rng.chance(self.kill_probability);
                let reset = self.reset_probability > 0.0 && rng.chance(self.reset_probability);
                let torn = self.torn_probability > 0.0 && rng.chance(self.torn_probability);
                let delay = self.delay_probability > 0.0 && rng.chance(self.delay_probability);
                let (lo, hi) = self.delay_range;
                let delay_by = Duration::from_micros(rng.range_u64(
                    lo.as_micros() as u64,
                    (hi.as_micros() as u64).max(lo.as_micros() as u64 + 1),
                ));
                if kill {
                    Some(ChaosFault::Kill)
                } else if reset {
                    Some(ChaosFault::Reset)
                } else if torn {
                    Some(ChaosFault::Torn)
                } else if delay {
                    Some(ChaosFault::Delay(delay_by))
                } else {
                    None
                }
            };
            if let Some(fault) = fault {
                directives.push(ChaosDirective { node: node.clone(), fault });
            }
        }
        directives
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::wire::{from_bytes, to_bytes};

    fn nodes() -> Vec<String> {
        ["l0p", "l0r", "l1p", "l1r", "m1_0"].iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn directives_round_trip_on_the_wire() {
        for fault in [
            ChaosFault::Kill,
            ChaosFault::Reset,
            ChaosFault::Torn,
            ChaosFault::Delay(Duration::from_micros(12_345)),
        ] {
            let directive = ChaosDirective { node: "m2_1".into(), fault };
            let back: ChaosDirective = from_bytes(&to_bytes(&directive)).unwrap();
            assert_eq!(back, directive);
        }
        assert!(from_bytes::<ChaosFault>(&[42]).is_err());
    }

    #[test]
    fn draws_are_seed_deterministic_and_vary_by_query_and_node() {
        let model = ChaosModel {
            seed: 0xc4a05,
            kill_probability: 0.05,
            reset_probability: 0.15,
            torn_probability: 0.15,
            delay_probability: 0.3,
            delay_range: (Duration::from_millis(1), Duration::from_millis(20)),
            ..Default::default()
        };
        let nodes = nodes();
        let a: Vec<_> = (0..50).map(|qid| model.draw(qid, &nodes)).collect();
        let b: Vec<_> = (0..50).map(|qid| model.draw(qid, &nodes)).collect();
        assert_eq!(a, b, "equal seeds draw equal fault schedules");
        let total: usize = a.iter().map(Vec::len).sum();
        assert!(total > 0, "these probabilities over 250 draws must inject something");
        assert!(total < 250, "...but not everywhere");
        assert_ne!(a, (0..50).map(|qid| model.draw(qid + 1, &nodes)).collect::<Vec<_>>());
        let reseeded = ChaosModel { seed: 1, ..model.clone() };
        assert_ne!(a, (0..50).map(|qid| reseeded.draw(qid, &nodes)).collect::<Vec<_>>());
    }

    #[test]
    fn kill_nodes_fire_every_query_and_inactive_models_draw_nothing() {
        let model = ChaosModel { kill_nodes: vec!["m1_0".into()], ..Default::default() };
        for qid in 0..5 {
            assert_eq!(
                model.draw(qid, &nodes()),
                vec![ChaosDirective { node: "m1_0".into(), fault: ChaosFault::Kill }]
            );
        }
        assert!(ChaosModel::default().draw(0, &nodes()).is_empty());
        assert!(!ChaosModel::default().is_active());
        assert!(model.is_active());
    }
}
