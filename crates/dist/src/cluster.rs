//! Sharded query execution with concurrent fan-out, shard-result caching
//! and modeled server load (§4).
//!
//! §4: *"In a first step the server importing the data splits it into X
//! partitions. [...] such a query can be 'parallelized over rows' by
//! sending the query to all machines, each machine executing it on its
//! part of the data, and then merging the results."* — [`Cluster::query`]
//! does exactly that, and the fan-out is *actually concurrent*: shard
//! subqueries run as tasks on the shared [`pd_core::scheduler`] worker
//! pool (the same pool the per-shard chunk scans use — waiting fan-outs
//! help drain the queue, so the nesting cannot deadlock). Partials are
//! folded in fixed shard order and every aggregation state merges
//! associatively (float sums are exact superaccumulators), so the merged
//! result is bit-identical to the single-store engine at any shard count,
//! thread count or cache configuration.
//!
//! §4 also describes why replication matters: *"it is quite common that
//! single machines can temporarily become slow [...] we send the query to
//! both machines holding a partition and take the answer arriving first."*
//! [`LoadModel`] draws those slow-downs per subquery; with
//! [`ClusterConfig::replication`] the faster of two draws wins. Going
//! beyond stragglers, [`FailureModel`] injects *failures*: a primary
//! killed mid-fan-out falls back to its replication peer (recorded in
//! [`QueryOutcome::failovers`]), or fails the query when replication is
//! off. All draws derive from seeded per-(query, shard, replica) streams,
//! so every outcome — delays, failures, failovers — is reproducible
//! regardless of worker scheduling.
//!
//! Robustness over RPC is budgeted end to end. Every query spends one
//! [`RpcConfig::budget`] across the whole tree (each node decrements it by
//! its own queue delay before fanning out, and an exhausted budget is a
//! typed [`pd_common::RpcError::Deadline`], not a hang). Slow primaries
//! are *hedged*: after a delay derived from the observed queue-delay p95
//! the replica is raced in parallel and the first answer wins
//! ([`QueryOutcome::hedges`]). [`AdmissionConfig`] bounds how many queries
//! run concurrently — excess load is shed with a typed
//! [`pd_common::RpcError::Overloaded`] *before* it can pile onto already
//! saturated workers (the limit halves while the observed queue p95 sits
//! above the saturation threshold). And [`FailureModel::chaos`] drives the
//! seeded rpc-level fault injector ([`crate::ChaosModel`]) used by the
//! chaos harness: kills, resets, torn frames and delays, aimable at any
//! tree node including merge servers.

use crate::chaos::ChaosModel;
use crate::process::{resolve_worker_bin, ProcessTree, TreeConfig, WorkerAddr};
use crate::shard_cache::{query_signature, ShardCache, ShardEntry};
use pd_common::rng::Rng;
use pd_common::sync::Mutex;
use pd_common::{Error, RpcError, Value};
use pd_core::{
    execute_partial, finalize, scheduler, BuildOptions, CachePolicy, DataStore, ExecContext,
    PartialResult, QueryResult, ResultCache, ScanStats, TieredCache,
};
use pd_data::Table;
use pd_encoding::TableDelta;
use pd_sql::{analyze, parse_query, AnalyzedQuery};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where the computation tree's nodes live.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Transport {
    /// Every shard executes inside the driver's address space (tasks on
    /// the shared worker pool); merge "hops" are latency arithmetic.
    #[default]
    InProcess,
    /// The paper's real topology: one `pd-dist-worker` OS process per
    /// shard replica plus spawned merge servers, talking the
    /// [`crate::rpc`] protocol over Unix sockets ([`WorkerAddr::Unix`])
    /// or loopback/multi-host TCP ([`WorkerAddr::Tcp`]), with optionally
    /// compressed frames. Subquery latencies and queue delays in
    /// [`QueryOutcome`] are then *measured*, not drawn from the seeded
    /// [`LoadModel`], and a worker that exhausts the query's
    /// [`RpcConfig::budget`] fails over exactly like a [`FailureModel`]
    /// kill. Queries travel as
    /// decoded restrictions, so any tree node pre-skips subtrees whose
    /// shard metadata cannot match ([`pd_core::ScanStats::subtrees_pruned`]).
    Rpc(RpcConfig),
}

/// Settings for the [`Transport::Rpc`] process split.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcConfig {
    /// Path to the `pd-dist-worker` binary; `None` resolves via the
    /// `PD_DIST_WORKER_BIN` environment variable or next to the current
    /// executable.
    pub worker_bin: Option<PathBuf>,
    /// End-to-end time budget for one query. The *whole* tree shares it:
    /// each node decrements the remaining budget by its own queue delay
    /// before fanning out, an exhausted budget is a typed
    /// [`pd_common::RpcError::Deadline`], and the driver enforces it
    /// absolutely at the root. (Replaces the old fixed per-hop deadline,
    /// which multiplied by tree depth.)
    pub budget: Duration,
    /// Socket shape the workers listen on: `Unix` (single box) or
    /// `Tcp { host }` with one ephemeral port per worker.
    pub addr: WorkerAddr,
    /// Compress RPC frames with `pd-compress` (negotiated per connection;
    /// serialized partials are FloatSum-limb-heavy and shrink several-fold).
    pub compress: bool,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            worker_bin: None,
            budget: Duration::from_secs(30),
            addr: WorkerAddr::Unix,
            compress: true,
        }
    }
}

/// Shape of the §4 computation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    /// Children per inner node ("one root server communicating with up to
    /// hundreds of other servers" is fanout ≫ 2; small fanouts add depth).
    pub fanout: usize,
}

impl Default for TreeShape {
    fn default() -> Self {
        TreeShape { fanout: 16 }
    }
}

impl TreeShape {
    /// Number of merge levels needed above `leaves` leaf servers.
    pub fn depth(&self, leaves: usize) -> usize {
        let fanout = self.fanout.max(2);
        let mut depth = 0;
        let mut width = leaves.max(1);
        while width > 1 {
            width = width.div_ceil(fanout);
            depth += 1;
        }
        depth
    }
}

/// Random per-subquery slow-downs modeling busy / blocked servers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadModel {
    /// Probability that a server is "heavily loaded" (a few ms extra).
    pub busy_probability: f64,
    /// Probability that a server is "blocked, e.g., by a disk read of
    /// another process" (tens to hundreds of ms extra).
    pub blocked_probability: f64,
    /// RNG seed; equal configurations draw identical delay streams.
    pub seed: u64,
}

impl Default for LoadModel {
    fn default() -> Self {
        LoadModel { busy_probability: 0.0, blocked_probability: 0.0, seed: 0 }
    }
}

impl LoadModel {
    /// One server's extra delay for one subquery.
    fn draw(&self, rng: &mut Rng) -> Duration {
        if self.blocked_probability > 0.0 && rng.chance(self.blocked_probability) {
            Duration::from_micros(rng.range_u64(30_000, 150_000))
        } else if self.busy_probability > 0.0 && rng.chance(self.busy_probability) {
            Duration::from_micros(rng.range_u64(1_000, 6_000))
        } else {
            Duration::ZERO
        }
    }
}

/// Deterministic, seeded failure injection for shard primaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailureModel {
    /// Per-(query, shard) probability that the primary replica dies
    /// mid-subquery.
    pub primary_fail_probability: f64,
    /// Shard indices whose primary *always* fails — the deterministic
    /// kill switch for failover tests.
    pub kill_primaries: Vec<usize>,
    /// Seed for the failure draws; independent of the load-model stream.
    pub seed: u64,
    /// Rpc-level fault injection (RPC transport only): seeded draws of
    /// process kills, connection resets, torn reply frames and delays,
    /// targeting *any* tree node by name — merge servers included. The
    /// inactive default injects nothing.
    pub chaos: ChaosModel,
}

impl FailureModel {
    fn primary_fails(&self, qid: u64, shard: usize) -> bool {
        if self.kill_primaries.contains(&shard) {
            return true;
        }
        self.primary_fail_probability > 0.0
            && stream(self.seed, qid, shard as u64, ROLE_FAILURE)
                .chance(self.primary_fail_probability)
    }
}

/// Admission control at the driver: bound how many queries run at once
/// instead of letting excess load pile onto saturated workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum concurrently admitted queries; `0` disables admission
    /// control entirely (the default — single-caller tests and benches
    /// never shed).
    pub max_in_flight: usize,
    /// Saturation threshold: while the p95 of recently observed worker
    /// queue delays is at or above this, the effective in-flight limit is
    /// halved — the cluster sheds *harder* exactly when the workers are
    /// already behind.
    pub saturation_queue: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { max_in_flight: 0, saturation_queue: Duration::from_millis(250) }
    }
}

/// Cluster construction options.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of data shards (the paper's X partitions).
    pub shards: usize,
    /// Send every subquery to a primary *and* a replica, taking the faster
    /// answer (§4's straggler mitigation) and surviving primary failures.
    pub replication: bool,
    /// Import options for each shard's store.
    pub build: BuildOptions,
    /// Total byte budget for the uncompressed cache layer, split across
    /// shards (the compressed layer gets half of that again).
    pub cache_budget: usize,
    /// Server load fluctuation model.
    pub load: LoadModel,
    /// Primary-failure injection model.
    pub failures: FailureModel,
    /// Computation-tree shape for the merge-latency model.
    pub tree: TreeShape,
    /// Worker threads for the shard fan-out and each shard's chunk scan
    /// (0 = `EXEC_THREADS` / available parallelism).
    pub threads: usize,
    /// Capacity (entries) of the shard-level result caching; 0 disables
    /// it. In-process this is the root's per-(signature, shard) cache;
    /// over RPC it is the capacity of **every tree node's own result
    /// cache** (leaf and merge-server processes alike), so a warm
    /// drill-down answers from the nearest node that remembers the
    /// signature — with zero child hops below it.
    pub shard_cache: usize,
    /// Where the computation tree runs: in the driver's address space or
    /// split across worker processes.
    pub transport: Transport,
    /// Driver-side admission control: shed queries beyond the in-flight
    /// budget with a typed [`pd_common::RpcError::Overloaded`].
    pub admission: AdmissionConfig,
    /// Use chunk-granular metadata (per-chunk zone maps shipped in the
    /// `Loaded` acks) for RPC-tree pruning and leaf scan seeding. On by
    /// default; turning it off falls back to shard-granular pruning only.
    /// Results are bit-identical either way — only the work moves.
    pub chunk_pruning: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            replication: true,
            build: BuildOptions::default(),
            cache_budget: 256 << 20,
            load: LoadModel::default(),
            failures: FailureModel::default(),
            tree: TreeShape::default(),
            threads: 0,
            shard_cache: 1024,
            transport: Transport::InProcess,
            admission: AdmissionConfig::default(),
            chunk_pruning: true,
        }
    }
}

/// One shard: a store plus its caches.
struct Shard {
    store: DataStore,
    ctx: ExecContext,
}

/// The §4 single-datacenter model: X shards + a computation tree.
pub struct Cluster {
    /// In-process shards (empty under [`Transport::Rpc`]).
    shards: Vec<Shard>,
    /// The live worker-process tree (RPC transport only).
    tree: Option<ProcessTree>,
    config: ClusterConfig,
    shard_cache: Option<ShardCache>,
    /// Monotonically increasing rebuild epoch. Every `Load`/`Attach`/
    /// `Query` over RPC carries it; a worker that sees it advance drops
    /// its result cache — the distributed form of the root cache's
    /// rebuild invalidation.
    epoch: AtomicU64,
    /// Per-query sequence number: the deterministic axis of every load /
    /// failure draw (draws depend on (seed, query, shard, replica), never
    /// on worker scheduling).
    queries: AtomicU64,
    /// Per-shard `(total queue delay, samples)` measured by worker
    /// processes — the observation stream that replaces [`LoadModel`]
    /// draws under the RPC transport.
    observed_queue: Mutex<Vec<(Duration, u64)>>,
    /// The most recent worker queue-delay samples (capped ring of
    /// `(when observed, delay)`), feeding two adaptive policies: the hedge
    /// delay (p95-derived — hedge as soon as a primary looks slower than
    /// the cluster's recent tail) and the admission saturation check.
    /// Samples older than [`RECENT_QUEUE_TTL`] are expired on read: a
    /// queue spike must stop shedding once the workers have drained, even
    /// if no fresh sample has displaced it from the ring.
    recent_queue: Mutex<VecDeque<(Instant, Duration)>>,
    /// Queries currently admitted (only tracked when admission control is
    /// on).
    in_flight: AtomicU64,
    /// Queries shed by admission control since construction / rebuild.
    sheds: AtomicU64,
}

/// How many queue-delay samples feed the hedge / saturation estimates.
const RECENT_QUEUE_CAP: usize = 256;

/// How long a queue-delay sample stays relevant. A burst that filled the
/// ring with 400ms delays describes the cluster *then*; ten seconds later
/// those processes have long drained and the estimates must forget them
/// rather than keep halving admission against a load that no longer
/// exists.
const RECENT_QUEUE_TTL: Duration = Duration::from_secs(10);

/// RAII permit for one admitted query; dropping it frees the slot.
#[derive(Debug)]
struct AdmitPermit<'a> {
    in_flight: Option<&'a AtomicU64>,
}

impl Drop for AdmitPermit<'_> {
    fn drop(&mut self) {
        if let Some(in_flight) = self.in_flight {
            in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// What one [`Cluster::append`] shipped and applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Rows appended across all shards.
    pub rows: u64,
    /// Serialized `Append` request bytes shipped to workers (primaries and
    /// replicas). 0 in-process — nothing crosses a wire.
    pub bytes_shipped: u64,
}

/// What one distributed query cost.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub result: QueryResult,
    /// Scan statistics summed over all shards.
    pub stats: ScanStats,
    /// Modeled end-to-end latency: slowest subquery + tree merge time.
    pub latency: Duration,
    /// Modeled per-shard subquery latencies.
    pub subquery_latencies: Vec<Duration>,
    /// Shards whose primary failed and whose replica answered.
    pub failovers: Vec<usize>,
    /// Shards whose primary outlived the hedge delay and was raced against
    /// its replica (RPC transport; whichever answer arrived first won).
    /// Always empty in-process, where replication is modeled as the faster
    /// of two load draws instead.
    pub hedges: Vec<usize>,
    /// Shards served from the driver root's shard-level result cache
    /// (in-process transport).
    pub shard_cache_hits: usize,
    /// Per-shard *measured* time the subquery spent queued inside worker
    /// processes (leaf + every merge server above it). All zeros for the
    /// in-process transport, whose queueing is invisible inside the shared
    /// pool.
    pub queue_delays: Vec<Duration>,
}

impl QueryOutcome {
    /// Tree nodes (worker processes — leaves or merge servers) that
    /// answered this query from their own result cache, aggregated up the
    /// tree (RPC transport; always 0 in-process, where the root's
    /// [`ShardCache`] plays that role and reports
    /// [`QueryOutcome::shard_cache_hits`]). Derived from the aggregated
    /// [`ScanStats`], the single source of truth the workers report into.
    pub fn worker_cache_hits(&self) -> usize {
        self.stats.worker_cache_hits
    }
}

/// One shard's answer, as produced by a fan-out task. All shared-state
/// mutation (stats accounting, cache admission) happens later, on the
/// driver, in shard order.
enum ShardAnswer {
    /// Served from the shard-level result cache.
    Cached(Arc<ShardEntry>),
    /// Freshly computed (primary or replica). `compute` is the measured
    /// scan time (help-stolen time excluded) — the recompute cost the
    /// shard cache scores admission by.
    Computed { partial: PartialResult, stats: ScanStats, compute: Duration },
}

struct SubqueryScan {
    answer: ShardAnswer,
    latency: Duration,
    failover: bool,
}

const ROLE_PRIMARY: u64 = 0;
const ROLE_REPLICA: u64 = 1;
const ROLE_FAILURE: u64 = 2;

/// A deterministic per-(seed, query, shard, role) RNG stream.
fn stream(seed: u64, qid: u64, shard: u64, role: u64) -> Rng {
    let mut mix = seed;
    mix = mix.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(qid);
    mix = mix.wrapping_mul(0xBF58_476D_1CE4_E5B9).wrapping_add(shard);
    mix = mix.wrapping_mul(0x94D0_49BB_1331_11EB).wrapping_add(role);
    Rng::seed_from_u64(mix)
}

impl Cluster {
    /// Split `table` into contiguous row ranges and import each shard.
    ///
    /// Contiguous ranges (not round-robin) preserve the "implicit
    /// clustering" of appended log records that the paper's partitioning
    /// benefits from.
    pub fn build(table: &Table, config: &ClusterConfig) -> pd_common::Result<Cluster> {
        let epoch = 1u64;
        let (shards, tree) = match &config.transport {
            Transport::InProcess => (Self::build_shards(table, config)?, None),
            Transport::Rpc(rpc) => (Vec::new(), Some(Self::build_tree(table, config, rpc, epoch)?)),
        };
        let shard_count = tree.as_ref().map_or(shards.len(), ProcessTree::shard_count);
        Ok(Cluster {
            shards,
            tree,
            // Per-shard caching over RPC is the workers' job: every tree
            // node holds its own result cache (capacity shipped at
            // Load/Attach), so the root — which only sees subtree merges —
            // does not duplicate it.
            shard_cache: (config.shard_cache > 0 && config.transport == Transport::InProcess)
                .then(|| ShardCache::new(config.shard_cache)),
            config: config.clone(),
            epoch: AtomicU64::new(epoch),
            queries: AtomicU64::new(0),
            observed_queue: Mutex::new(vec![(Duration::ZERO, 0); shard_count]),
            recent_queue: Mutex::new(VecDeque::with_capacity(RECENT_QUEUE_CAP)),
            in_flight: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
        })
    }

    /// How many shards `table` splits into under `config`.
    fn split_count(table: &Table, config: &ClusterConfig) -> usize {
        config.shards.clamp(1, table.len().max(1))
    }

    /// Shard `s`'s contiguous sub-table — the *same* row assignment for
    /// both transports, so switching transports can never re-partition
    /// the data.
    fn shard_table(table: &Table, s: usize, shard_count: usize) -> pd_common::Result<Table> {
        let n = table.len();
        let lo = n * s / shard_count;
        let hi = n * (s + 1) / shard_count;
        let mut sub = Table::new(table.schema().clone());
        for r in lo..hi {
            sub.push_row(table.row(r))?;
        }
        Ok(sub)
    }

    fn per_shard_budget(config: &ClusterConfig, shard_count: usize) -> usize {
        (config.cache_budget / shard_count.max(1)).max(1 << 16)
    }

    fn build_shards(table: &Table, config: &ClusterConfig) -> pd_common::Result<Vec<Shard>> {
        let shard_count = Self::split_count(table, config);
        let per_shard_budget = Self::per_shard_budget(config, shard_count);
        let mut shards = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            // Build then drop each sub-table: the in-process path never
            // holds more than one shard's row copy at a time.
            let sub = Self::shard_table(table, s, shard_count)?;
            let store = DataStore::build(&sub, &config.build)?;
            let ctx = ExecContext {
                sketch_m: 0,
                threads: config.threads,
                result_cache: Some(Arc::new(ResultCache::new(1 << 14))),
                tiered: Some(Arc::new(TieredCache::new(
                    CachePolicy::Arc,
                    per_shard_budget,
                    per_shard_budget / 2,
                ))),
                kernels: Default::default(),
            };
            shards.push(Shard { store, ctx });
        }
        Ok(shards)
    }

    /// Spawn the worker-process tree for the same shard split.
    fn build_tree(
        table: &Table,
        config: &ClusterConfig,
        rpc: &RpcConfig,
        epoch: u64,
    ) -> pd_common::Result<ProcessTree> {
        let shard_count = Self::split_count(table, config);
        let tree_config = TreeConfig {
            worker_bin: resolve_worker_bin(rpc.worker_bin.as_deref())?,
            budget: rpc.budget,
            replication: config.replication,
            fanout: config.tree.fanout,
            threads: config.threads,
            cache_budget_per_shard: Self::per_shard_budget(config, shard_count),
            cache_entries: config.shard_cache,
            epoch,
            addr: rpc.addr.clone(),
            compress: rpc.compress,
            chunk_pruning: config.chunk_pruning,
        };
        // Sub-tables are produced one at a time: each is shipped to its
        // worker pair and dropped before the next is materialized.
        ProcessTree::build(
            shard_count,
            |s| Self::shard_table(table, s, shard_count),
            &config.build,
            &tree_config,
        )
    }

    /// Re-import every shard from `table` (the §5 "table rebuild": new
    /// data, fresh per-shard caches) and invalidate every result cache
    /// whose partials refer to the old stores: the root's shard cache
    /// directly, the workers' own caches through the **epoch bump** — any
    /// node that sees the new epoch (at `Load`/`Attach` of the respawned
    /// tree, or in the next `Query` should a process ever survive a
    /// rebuild) drops its cache. Over RPC the whole worker tree is
    /// respawned — the old processes hold the old data.
    ///
    /// This is the *full* refresh: every row is re-shipped and re-imported
    /// even if only a fraction changed. For append-only growth, prefer
    /// [`Cluster::append`] — it bumps the same epoch but ships only the
    /// new rows as dictionary deltas into the live stores, no respawn.
    pub fn rebuild(&mut self, table: &Table) -> pd_common::Result<()> {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        match &self.config.transport {
            Transport::InProcess => self.shards = Self::build_shards(table, &self.config)?,
            Transport::Rpc(rpc) => {
                // Drop (and kill) the old tree before spawning its successor.
                self.tree = None;
                self.tree = Some(Self::build_tree(table, &self.config, rpc, epoch)?);
            }
        }
        if let Some(cache) = &self.shard_cache {
            cache.invalidate();
        }
        let shard_count = self.shard_count();
        *self.observed_queue.lock() = vec![(Duration::ZERO, 0); shard_count];
        // A respawned tree starts with empty executor queues: stale
        // saturation / hedge estimates from the old processes would shed
        // or hedge against load that no longer exists.
        self.recent_queue.lock().clear();
        Ok(())
    }

    /// Stream `delta`'s rows into the live cluster — the incremental
    /// alternative to [`Cluster::rebuild`]. The delta is split across
    /// shards by the same contiguous-range rule as the original import,
    /// encoded per shard as a self-contained dictionary-delta table
    /// ([`pd_encoding::TableDelta`]: delta-local sorted dictionaries plus
    /// codes — the receiver resolves them against its resident
    /// dictionaries, appending only genuinely new values, so **every
    /// existing global id stays stable** and folded partials across old
    /// and new chunks stay bit-identical), and applied in place:
    ///
    /// - in-process, each shard's store absorbs its slice directly;
    /// - over RPC, `Append` frames go to every shard's primary *and*
    ///   replica, the refreshed [`crate::meta::ShardMeta`] acks re-wire
    ///   the merge levels bottom-up, and no process is respawned.
    ///
    /// The epoch bumps exactly as a rebuild would, so every cache layer
    /// (root shard cache, worker caches, leaf chunk-result caches)
    /// invalidates by the same rule. Requires `&mut self`: queries borrow
    /// the cluster shared, so no query can observe a half-applied append
    /// (an RPC-side failure mid-append leaves shards at different data;
    /// recover with [`Cluster::rebuild`]).
    pub fn append(&mut self, delta: &Table) -> pd_common::Result<AppendOutcome> {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let shard_count = self.shard_count();
        let rows = delta.len() as u64;
        let field_count = delta.schema().fields().len();
        let shard_delta = |s: usize| -> pd_common::Result<Option<TableDelta>> {
            let sub = Self::shard_table(delta, s, shard_count)?;
            if sub.is_empty() {
                return Ok(None);
            }
            let columns: Vec<&[Value]> = (0..field_count).map(|i| sub.column(i)).collect();
            TableDelta::from_columns(sub.schema().clone(), &columns).map(Some)
        };
        let bytes_shipped = if let Some(tree) = self.tree.as_mut() {
            let mut deltas = Vec::with_capacity(shard_count);
            for s in 0..shard_count {
                deltas.push(shard_delta(s)?);
            }
            tree.append(&deltas, epoch)?
        } else {
            for s in 0..shard_count {
                let Some(table_delta) = shard_delta(s)? else { continue };
                let shard = &mut self.shards[s];
                shard.store.append_delta(&table_delta)?;
                // The shard's resident caches describe the pre-append
                // store (the in-process counterpart of the leaf worker's
                // cache drop).
                if let Some(results) = &shard.ctx.result_cache {
                    results.clear();
                }
                if let Some(tiered) = &shard.ctx.tiered {
                    tiered.clear();
                }
            }
            0
        };
        if let Some(cache) = &self.shard_cache {
            cache.invalidate();
        }
        // Unlike a rebuild, the worker processes (and their executor
        // queues) survive, so the observed queue / saturation estimates
        // still describe the live cluster — they are kept.
        Ok(AppendOutcome { rows, bytes_shipped })
    }

    /// Cumulative serialized bytes of data-bearing requests (`Load` +
    /// `Append` frames) shipped to the worker tree since it was last
    /// (re)spawned. Always 0 in-process, where no bytes cross a wire.
    pub fn shipped_bytes(&self) -> u64 {
        self.tree.as_ref().map_or(0, ProcessTree::shipped_bytes)
    }

    /// Swap the rpc-level fault injection model. Chaos draws depend only
    /// on `(seed, query id, node name)`, so setting the same model on a
    /// fresh cluster replays the same faults against the same queries.
    pub fn set_chaos(&mut self, chaos: ChaosModel) {
        self.config.failures.chaos = chaos;
    }

    /// Queries shed by admission control so far.
    pub fn shed_count(&self) -> u64 {
        self.sheds.load(Ordering::SeqCst)
    }

    /// Admit one query or shed it. The permit holds an in-flight slot
    /// until dropped (i.e. for the whole query, including merge and
    /// finalize). While workers look saturated the effective limit halves:
    /// shedding is cheapest *before* the fan-out, and saturation means the
    /// queries already admitted are about to get slower.
    fn admit(&self) -> pd_common::Result<AdmitPermit<'_>> {
        let max = self.config.admission.max_in_flight;
        if max == 0 {
            return Ok(AdmitPermit { in_flight: None });
        }
        let saturated =
            self.queue_p95().is_some_and(|p95| p95 >= self.config.admission.saturation_queue);
        let limit = if saturated { (max / 2).max(1) } else { max } as u64;
        let previous = self.in_flight.fetch_add(1, Ordering::SeqCst);
        if previous >= limit {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.sheds.fetch_add(1, Ordering::SeqCst);
            let detail = if saturated { " (halved: workers saturated)" } else { "" };
            return Err(Error::Rpc(RpcError::Overloaded(format!(
                "cluster: {previous} queries in flight, limit {limit}{detail}"
            ))));
        }
        Ok(AdmitPermit { in_flight: Some(&self.in_flight) })
    }

    /// p95 of the recent worker queue-delay samples; `None` before any
    /// RPC query has reported (or after every sample has aged past
    /// [`RECENT_QUEUE_TTL`] — an idle cluster is a cold cluster, not a
    /// saturated one).
    ///
    /// Percentile rank: with fewer than 20 samples a nearest-rank "p95"
    /// *is* the sample max — one outlier would then drive the hedge delay
    /// (8×p95) and the saturation check, so small rings conservatively
    /// report the median instead. At ≥ 20 samples the ceiling nearest-rank
    /// index `⌈0.95 n⌉ − 1` is used (the floor form `⌊0.95 n⌋` also
    /// degenerates to the max for every n < 20 and overshoots the rank by
    /// one thereafter).
    fn queue_p95(&self) -> Option<Duration> {
        let mut recent = self.recent_queue.lock();
        let now = Instant::now();
        while recent.front().is_some_and(|&(when, _)| now.duration_since(when) > RECENT_QUEUE_TTL) {
            recent.pop_front();
        }
        if recent.is_empty() {
            return None;
        }
        let mut sorted: Vec<Duration> = recent.iter().map(|&(_, d)| d).collect();
        sorted.sort_unstable();
        let n = sorted.len();
        let idx = if n < 20 { n / 2 } else { (n * 95).div_ceil(100) - 1 };
        Some(sorted[idx])
    }

    /// How long to wait for a primary before racing its replica. Derived
    /// from the observed queue-delay p95 — a primary that has already
    /// out-waited several tail queue delays is likely struggling — and
    /// clamped into `[25ms, budget/2]` so cold clusters neither hedge
    /// instantly nor wait out most of the budget first.
    fn hedge_delay(&self, budget: Duration) -> Duration {
        let base = match self.queue_p95() {
            Some(p95) => p95 * 8 + Duration::from_millis(2),
            None => budget / 8,
        };
        base.clamp(Duration::from_millis(25), (budget / 2).max(Duration::from_millis(25)))
    }

    /// The current rebuild epoch (starts at 1; [`Cluster::rebuild`] bumps
    /// it). Carried by every RPC message so workers can invalidate.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    pub fn shard_count(&self) -> usize {
        self.tree.as_ref().map_or(self.shards.len(), ProcessTree::shard_count)
    }

    /// Mean measured queue delay per shard (RPC transport; all zeros
    /// before any query, and always for in-process execution). This is the
    /// observed counterpart of the seeded [`LoadModel`]: real per-process
    /// queueing, reported up the tree by the workers themselves.
    pub fn observed_queue_delays(&self) -> Vec<Duration> {
        self.observed_queue
            .lock()
            .iter()
            .map(|&(total, samples)| {
                if samples == 0 {
                    Duration::ZERO
                } else {
                    total / u32::try_from(samples).unwrap_or(u32::MAX)
                }
            })
            .collect()
    }

    /// Test knob (RPC transport): make shard `shard`'s primary worker
    /// sleep before every answer, so it outlives the hedge delay and the
    /// §4 replica race runs against a *real* straggling process.
    pub fn inject_worker_delay(&self, shard: usize, delay: Duration) -> pd_common::Result<()> {
        let tree = self.tree.as_ref().ok_or_else(|| {
            pd_common::Error::Data("worker delays require the rpc transport".into())
        })?;
        tree.delay_primary(shard, delay)
    }

    /// `(hits, misses)` of the shard-level result cache so far.
    pub fn shard_cache_stats(&self) -> (u64, u64) {
        self.shard_cache.as_ref().map_or((0, 0), ShardCache::stats)
    }

    /// Run `sql` over every shard — concurrently — and merge the partial
    /// results in fixed shard order. Under [`Transport::Rpc`] the fan-out,
    /// merge levels and failover all happen across worker processes; the
    /// result is bit-identical either way.
    pub fn query(&self, sql: &str) -> pd_common::Result<QueryOutcome> {
        // Admission first: a shed query must cost nothing downstream —
        // not even the parse.
        let _permit = self.admit()?;
        let analyzed = analyze(&parse_query(sql)?)?;
        let qid = self.queries.fetch_add(1, Ordering::Relaxed);
        if let Some(tree) = &self.tree {
            return self.query_tree(tree, qid, &analyzed);
        }
        let signature = self.shard_cache.as_ref().map(|_| {
            let sketch_m = self.shards.first().map_or(4096, |s| s.ctx.sketch_m());
            query_signature(&analyzed, sketch_m)
        });

        // Fan out: one task per shard on the shared worker pool. Tasks
        // only read shared state (stores, cache gets); results come back
        // in shard order.
        let threads = self.effective_threads();
        let scans = scheduler::run_tasks(threads, self.shards.len(), |s| {
            self.subquery(s, qid, &analyzed, signature.as_deref())
        })?;

        // Driver-side fold in fixed shard order: stats accounting, cache
        // admission and the merge are deterministic under any scheduling.
        let mut merged = PartialResult::default();
        let mut stats = ScanStats::default();
        let mut subquery_latencies = Vec::with_capacity(self.shards.len());
        let mut failovers = Vec::new();
        let mut shard_cache_hits = 0;
        for (s, scan) in scans.into_iter().enumerate() {
            subquery_latencies.push(scan.latency);
            if scan.failover {
                failovers.push(s);
            }
            match scan.answer {
                ShardAnswer::Cached(entry) => {
                    shard_cache_hits += 1;
                    stats += &entry.cached_stats();
                    merged.merge_ref(&entry.partial)?;
                }
                ShardAnswer::Computed { partial, stats: shard_stats, compute } => {
                    stats += &shard_stats;
                    match (&self.shard_cache, &signature) {
                        (Some(cache), Some(signature)) => {
                            let entry = Arc::new(ShardEntry::new(partial, &shard_stats));
                            cache.put_costed(signature, s, entry.clone(), compute);
                            merged.merge_ref(&entry.partial)?;
                        }
                        _ => merged.merge(partial)?,
                    }
                }
            }
        }

        // End-to-end: the slowest subquery dominates; each tree level adds
        // a merge hop.
        let slowest = subquery_latencies.iter().max().copied().unwrap_or(Duration::ZERO);
        let merge_overhead =
            Duration::from_micros(200) * self.config.tree.depth(self.shards.len()) as u32;
        let finalize_started = Instant::now();
        let result = finalize(&analyzed, merged)?;
        let latency = slowest + merge_overhead + finalize_started.elapsed();
        stats.elapsed = latency;

        let queue_delays = vec![Duration::ZERO; subquery_latencies.len()];
        Ok(QueryOutcome {
            result,
            stats,
            latency,
            subquery_latencies,
            failovers,
            hedges: Vec::new(),
            shard_cache_hits,
            queue_delays,
        })
    }

    /// One distributed query over the worker-process tree: the driver is
    /// the root — it fans out to the frontier (leaves or merge servers),
    /// folds the answers associatively and finalizes. Failure injection
    /// ([`FailureModel`]) decides *here* which primaries are dead for this
    /// query; the kill list travels down so each leaf's parent skips the
    /// primary — the same failover code a deadline expiry triggers.
    fn query_tree(
        &self,
        tree: &ProcessTree,
        qid: u64,
        analyzed: &AnalyzedQuery,
    ) -> pd_common::Result<QueryOutcome> {
        let shard_count = tree.shard_count();
        let killed: Vec<u64> = (0..shard_count)
            .filter(|&s| self.config.failures.primary_fails(qid, s))
            .map(|s| s as u64)
            .collect();
        if !killed.is_empty() && !self.config.replication {
            // Match the in-process contract: a killed primary without a
            // replica fails the query, naming the shard.
            let s = killed[0];
            return Err(pd_common::Error::Data(format!(
                "shard {s}: primary replica failed mid-query and replication is disabled"
            )));
        }

        // Hedge delay from the observed queue tail; zero disables racing
        // entirely when there are no replicas to race.
        let budget = match &self.config.transport {
            Transport::Rpc(rpc) => rpc.budget,
            Transport::InProcess => Duration::from_secs(30),
        };
        let hedge_micros = if self.config.replication {
            u64::try_from(self.hedge_delay(budget).as_micros()).unwrap_or(u64::MAX)
        } else {
            0
        };
        let chaos = self.config.failures.chaos.draw(qid, tree.node_names());

        let fan_out_started = Instant::now();
        let answer = tree.query(analyzed, killed, self.epoch(), hedge_micros, chaos)?;
        // Measured end-to-end fan-out: leaf hops *and* every merge-server
        // fold, response serialization and root-hop transport above them —
        // time the per-shard reports (stamped by each leaf's immediate
        // parent) cannot see at depth ≥ 2.
        let fan_out_elapsed = fan_out_started.elapsed();

        // Index the per-shard observations the tree reported up.
        let mut subquery_latencies = vec![Duration::ZERO; shard_count];
        let mut queue_delays = vec![Duration::ZERO; shard_count];
        let mut failovers = Vec::new();
        let mut hedges = Vec::new();
        for report in &answer.reports {
            let s = report.shard as usize;
            if s >= shard_count {
                return Err(pd_common::Error::Data(format!(
                    "rpc: worker reported unknown shard {s}"
                )));
            }
            subquery_latencies[s] = report.latency;
            queue_delays[s] = report.queue;
            if report.failover {
                failovers.push(s);
            }
            if report.hedged {
                hedges.push(s);
            }
        }
        failovers.sort_unstable();
        hedges.sort_unstable();
        {
            let mut observed = self.observed_queue.lock();
            for (slot, queued) in observed.iter_mut().zip(&queue_delays) {
                slot.0 += *queued;
                slot.1 += 1;
            }
        }
        {
            // Feed the adaptive hedge / saturation estimates, stamped so
            // `queue_p95` can expire them.
            let now = Instant::now();
            let mut recent = self.recent_queue.lock();
            for queued in &queue_delays {
                if recent.len() == RECENT_QUEUE_CAP {
                    recent.pop_front();
                }
                recent.push_back((now, *queued));
            }
        }

        let finalize_started = Instant::now();
        let mut stats = answer.stats;
        let result = finalize(analyzed, answer.partial)?;
        // Measured end-to-end: the whole fan-out (slowest subquery plus
        // every real merge level above it), then the root's finalize. No
        // modeled merge overhead anywhere.
        let latency = fan_out_elapsed + finalize_started.elapsed();
        stats.elapsed = latency;

        Ok(QueryOutcome {
            result,
            stats,
            latency,
            subquery_latencies,
            failovers,
            hedges,
            shard_cache_hits: 0,
            queue_delays,
        })
    }

    /// One shard's subquery: shard-cache lookup, then primary execution
    /// with replica failover.
    fn subquery(
        &self,
        s: usize,
        qid: u64,
        analyzed: &AnalyzedQuery,
        signature: Option<&str>,
    ) -> pd_common::Result<SubqueryScan> {
        if let (Some(cache), Some(signature)) = (&self.shard_cache, signature) {
            if let Some(entry) = cache.get(signature, s) {
                // The root already holds this shard's partial: no scan, no
                // server round trip, no load-model exposure.
                return Ok(SubqueryScan {
                    answer: ShardAnswer::Cached(entry),
                    latency: Duration::ZERO,
                    failover: false,
                });
            }
        }

        let shard = &self.shards[s];
        let failover = self.config.failures.primary_fails(qid, s);
        if failover && !self.config.replication {
            return Err(pd_common::Error::Data(format!(
                "shard {s}: primary replica failed mid-query and replication is disabled"
            )));
        }

        // Wall-clock compute, minus any time this thread spent helping
        // *other* queued tasks while its own chunk fan-out waited — a
        // shard's modeled latency must not absorb foreign subqueries.
        let started = Instant::now();
        let stolen_before = scheduler::stolen_time();
        let (partial, shard_stats) = execute_partial(&shard.store, analyzed, &shard.ctx)?;
        let stolen = scheduler::stolen_time().saturating_sub(stolen_before);
        let compute = started.elapsed().saturating_sub(stolen);

        // Load-model delays: with replication both replicas get the query
        // and the faster answer wins; a dead primary means the replica's
        // answer is the only one.
        let load = &self.config.load;
        let primary_delay = load.draw(&mut stream(load.seed, qid, s as u64, ROLE_PRIMARY));
        let replica_delay = load.draw(&mut stream(load.seed, qid, s as u64, ROLE_REPLICA));
        let server_delay = if failover {
            replica_delay
        } else if self.config.replication {
            primary_delay.min(replica_delay)
        } else {
            primary_delay
        };

        let latency = compute + self.io_time(&shard_stats) + server_delay;
        Ok(SubqueryScan {
            answer: ShardAnswer::Computed { partial, stats: shard_stats, compute },
            latency,
            failover,
        })
    }

    fn effective_threads(&self) -> usize {
        // Shard contexts carry `config.threads`; delegating keeps the
        // 0-means-default resolution in one place (`pd_core`).
        self.shards.first().map_or(1, |s| s.ctx.effective_threads())
    }

    /// Modeled time to move a subquery's bytes: disk reads at ~200 MB/s,
    /// decompression at ~1 GB/s (the Figure 5 relation).
    fn io_time(&self, stats: &ScanStats) -> Duration {
        let disk = stats.disk_bytes as f64 / (200.0 * 1024.0 * 1024.0);
        let decompress = stats.decompressed_bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        Duration::from_secs_f64(disk + decompress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_core::query;
    use pd_data::{generate_logs, LogsSpec};

    fn logs_cluster(shards: usize, replication: bool) -> (Table, Cluster) {
        let table = generate_logs(&LogsSpec::scaled(2_000));
        let mut build = BuildOptions::production(&["country", "table_name"]);
        if let Some(spec) = &mut build.partition {
            spec.max_chunk_rows = 200;
        }
        let cluster = Cluster::build(
            &table,
            &ClusterConfig { shards, replication, build, ..Default::default() },
        )
        .unwrap();
        (table, cluster)
    }

    #[test]
    fn cluster_matches_single_store() {
        let (table, cluster) = logs_cluster(4, true);
        let store = DataStore::build(&table, &BuildOptions::basic()).unwrap();
        for sql in [
            "SELECT country, COUNT(*) as c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10",
            "SELECT country, SUM(timestamp) as s FROM logs GROUP BY country ORDER BY s DESC LIMIT 5",
            "SELECT COUNT(*) FROM logs WHERE country = 'DE'",
        ] {
            let (expect, _) = query(&store, sql).unwrap();
            let outcome = cluster.query(sql).unwrap();
            assert_eq!(outcome.result, expect, "{sql}");
            assert_eq!(outcome.subquery_latencies.len(), 4);
            assert!(outcome.failovers.is_empty());
        }
    }

    #[test]
    fn append_matches_a_full_rebuild_bit_identically() {
        // Split a table into a base import plus two append batches; after
        // each append the cluster must answer exactly like a cluster (and
        // a single store) built from scratch over the same prefix.
        let table = generate_logs(&LogsSpec::scaled(3_000));
        let sqls = [
            "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10",
            "SELECT country, SUM(latency) s FROM logs GROUP BY country ORDER BY s DESC LIMIT 5",
            "SELECT MIN(user) lo, MAX(user) hi FROM logs",
            "SELECT COUNT(*) FROM logs WHERE country = 'DE'",
        ];
        let mut build = BuildOptions::production(&["country", "table_name"]);
        if let Some(spec) = &mut build.partition {
            spec.max_chunk_rows = 200;
        }
        let config = ClusterConfig { shards: 4, build, ..Default::default() };
        let slice = |lo: usize, hi: usize| {
            let rows: Vec<usize> = (lo..hi).collect();
            table.select_rows(&rows)
        };
        let mut cluster = Cluster::build(&slice(0, 2_400), &config).unwrap();
        for batch_end in [2_700, 3_000] {
            let batch_start = batch_end - 300;
            let outcome = cluster.append(&slice(batch_start, batch_end)).unwrap();
            assert_eq!(outcome.rows, 300);
            assert_eq!(outcome.bytes_shipped, 0, "in-process appends ship nothing");
            let fresh = Cluster::build(&slice(0, batch_end), &config).unwrap();
            let store = DataStore::build(&slice(0, batch_end), &BuildOptions::basic()).unwrap();
            for sql in sqls {
                let appended = cluster.query(sql).unwrap().result;
                assert_eq!(appended, fresh.query(sql).unwrap().result, "{sql} @ {batch_end}");
                assert_eq!(appended, query(&store, sql).unwrap().0, "{sql} @ {batch_end}");
            }
        }
    }

    #[test]
    fn append_bumps_the_epoch_and_invalidates_the_shard_cache() {
        let (table, mut cluster) = logs_cluster(4, true);
        let sql = "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 5";
        let cold = cluster.query(sql).unwrap();
        assert_eq!(cluster.query(sql).unwrap().shard_cache_hits, 4);
        let epoch_before = cluster.epoch();
        let rows: Vec<usize> = (0..100).collect();
        cluster.append(&table.select_rows(&rows)).unwrap();
        assert_eq!(cluster.epoch(), epoch_before + 1, "append advances the rebuild epoch");
        let warm = cluster.query(sql).unwrap();
        assert_eq!(warm.shard_cache_hits, 0, "cached pre-append partials must not answer");
        assert_ne!(warm.result, cold.result, "the appended rows change the counts");
    }

    #[test]
    fn epochs_advance_monotonically_across_append_and_rebuild() {
        // Interleave appends, rebuilds and queries: the epoch must tick
        // once per mutation (never stall, never jump), and each query must
        // see exactly the data of the latest mutation.
        let table = generate_logs(&LogsSpec::scaled(1_200));
        let slice = |lo: usize, hi: usize| {
            let rows: Vec<usize> = (lo..hi).collect();
            table.select_rows(&rows)
        };
        let sql = "SELECT COUNT(*) c FROM logs";
        let count = |cluster: &Cluster| match cluster.query(sql).unwrap().result.rows[0].0[0] {
            Value::Int(n) => n,
            ref other => panic!("COUNT(*) must be an Int, got {other:?}"),
        };
        let mut cluster =
            Cluster::build(&slice(0, 1_000), &ClusterConfig { shards: 3, ..Default::default() })
                .unwrap();
        assert_eq!((cluster.epoch(), count(&cluster)), (1, 1_000));
        cluster.append(&slice(1_000, 1_100)).unwrap();
        assert_eq!((cluster.epoch(), count(&cluster)), (2, 1_100));
        cluster.rebuild(&slice(0, 500)).unwrap();
        assert_eq!((cluster.epoch(), count(&cluster)), (3, 500));
        cluster.append(&slice(500, 1_200)).unwrap();
        assert_eq!((cluster.epoch(), count(&cluster)), (4, 1_200));
        // Repeating a query does not advance the epoch.
        assert_eq!((cluster.epoch(), count(&cluster)), (4, 1_200));
    }

    #[test]
    fn shard_stats_accumulate() {
        let (_, cluster) = logs_cluster(3, false);
        let outcome = cluster.query("SELECT COUNT(*) FROM logs WHERE country = 'SG'").unwrap();
        assert_eq!(outcome.stats.rows_total, 2_000);
        assert_eq!(
            outcome.stats.rows_skipped + outcome.stats.rows_cached + outcome.stats.rows_scanned,
            outcome.stats.rows_total
        );
    }

    #[test]
    fn repeated_queries_hit_the_shard_cache() {
        let (_, cluster) = logs_cluster(4, true);
        let sql = "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 5";
        let cold = cluster.query(sql).unwrap();
        assert_eq!(cold.shard_cache_hits, 0);
        let warm = cluster.query(sql).unwrap();
        assert_eq!(warm.shard_cache_hits, 4, "every shard partial is reused");
        assert_eq!(warm.result, cold.result, "cache must not change results");
        assert_eq!(warm.stats.rows_cached, warm.stats.rows_total);
        assert_eq!(warm.stats.rows_scanned, 0);
        // A different LIMIT shares the same partials (presentation-only).
        let limited = cluster
            .query("SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 2")
            .unwrap();
        assert_eq!(limited.shard_cache_hits, 4);
        assert_eq!(limited.result.rows.len(), 2);
    }

    #[test]
    fn tree_depth_shrinks_with_fanout() {
        assert_eq!(TreeShape { fanout: 2 }.depth(1024), 10);
        assert_eq!(TreeShape { fanout: 4 }.depth(1024), 5);
        assert_eq!(TreeShape { fanout: 64 }.depth(1024), 2);
        assert_eq!(TreeShape { fanout: 16 }.depth(1), 0);
    }

    #[test]
    fn replication_tames_the_tail() {
        // Replication takes the faster of two load-model draws, so far
        // fewer queries land in the "blocked" regime (≥ 30 ms modeled
        // delay). Compare tail *frequencies* against a threshold real
        // compute time cannot reach on this tiny table (per-query compute
        // is microseconds; blocked draws are 30–150 ms), so wall-clock
        // jitter cannot flip the assertion. The shard cache is disabled:
        // this test re-issues one query, and cache hits bypass the load
        // model entirely.
        let load = LoadModel { busy_probability: 0.2, blocked_probability: 0.3, seed: 9 };
        let table = generate_logs(&LogsSpec::scaled(1_000));
        let build = BuildOptions::production(&["country"]);
        let sql = "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 3";
        let blocked_tail = |replication: bool| -> usize {
            let cluster = Cluster::build(
                &table,
                &ClusterConfig {
                    shards: 4,
                    replication,
                    build: build.clone(),
                    load,
                    shard_cache: 0,
                    ..Default::default()
                },
            )
            .unwrap();
            (0..200)
                .filter(|_| cluster.query(sql).unwrap().latency >= Duration::from_millis(25))
                .count()
        };
        let unreplicated = blocked_tail(false);
        let replicated = blocked_tail(true);
        // The replicated cluster draws the *same* primary delays (same
        // (seed, query, shard, role) streams) and can only improve on them
        // by taking the replica when faster, so the gap is deterministic:
        // P(blocked) ≈ 76% per query unreplicated vs ≈ 31% replicated.
        assert!(
            replicated + 40 < unreplicated,
            "replication must shrink the blocked tail: {replicated} vs {unreplicated} of 200"
        );
    }

    #[test]
    fn admission_sheds_beyond_the_in_flight_budget() {
        let table = generate_logs(&LogsSpec::scaled(200));
        let cluster = Cluster::build(
            &table,
            &ClusterConfig {
                shards: 2,
                admission: AdmissionConfig { max_in_flight: 2, ..Default::default() },
                ..Default::default()
            },
        )
        .unwrap();
        let first = cluster.admit().unwrap();
        let _second = cluster.admit().unwrap();
        let shed = cluster.admit().unwrap_err();
        assert!(matches!(shed, Error::Rpc(RpcError::Overloaded(_))), "typed shed: {shed}");
        assert_eq!(cluster.shed_count(), 1);
        // Dropping a permit frees its slot.
        drop(first);
        let _third = cluster.admit().unwrap();
        // Saturation halves the limit: with the observed queue p95 past
        // the threshold, max 2 becomes 1 — the second slot is gone even
        // though it is nominally free.
        {
            let now = Instant::now();
            let mut recent = cluster.recent_queue.lock();
            for _ in 0..32 {
                recent.push_back((now, Duration::from_millis(400)));
            }
        }
        let shed = cluster.admit().unwrap_err();
        assert!(matches!(shed, Error::Rpc(RpcError::Overloaded(_))), "typed shed: {shed}");
        assert!(shed.to_string().contains("saturated"), "{shed}");
        assert_eq!(cluster.shed_count(), 2);
    }

    #[test]
    fn hedge_delay_tracks_the_observed_queue_tail() {
        let table = generate_logs(&LogsSpec::scaled(200));
        let cluster =
            Cluster::build(&table, &ClusterConfig { shards: 2, ..Default::default() }).unwrap();
        let budget = Duration::from_secs(30);
        // Cold cluster: no observations yet, fall back to budget/8.
        assert_eq!(cluster.hedge_delay(budget), budget / 8);
        // A fast queue tail clamps to the 25 ms floor (8×1ms + 2ms = 10ms).
        cluster.recent_queue.lock().extend(vec![(Instant::now(), Duration::from_millis(1)); 64]);
        assert_eq!(cluster.hedge_delay(budget), Duration::from_millis(25));
        // A pathological tail is capped at half the budget: hedging later
        // than that cannot beat the deadline anyway.
        cluster.recent_queue.lock().extend(vec![(Instant::now(), Duration::from_secs(10)); 64]);
        assert_eq!(cluster.hedge_delay(Duration::from_secs(1)), Duration::from_millis(500));
    }

    #[test]
    fn stale_queue_samples_expire_and_sheds_stop() {
        let table = generate_logs(&LogsSpec::scaled(200));
        let cluster = Cluster::build(
            &table,
            &ClusterConfig {
                shards: 2,
                admission: AdmissionConfig { max_in_flight: 2, ..Default::default() },
                ..Default::default()
            },
        )
        .unwrap();
        // A queue spike that ended long ago: every sample predates the
        // TTL. Before samples carried timestamps this ring kept reporting
        // a 400 ms "current" p95 forever (nothing displaced it), so the
        // halved limit outlived the spike indefinitely.
        let stale = Instant::now()
            .checked_sub(RECENT_QUEUE_TTL + Duration::from_secs(1))
            .expect("process uptime exceeds the sample TTL");
        {
            let mut recent = cluster.recent_queue.lock();
            for _ in 0..32 {
                recent.push_back((stale, Duration::from_millis(400)));
            }
        }
        assert_eq!(cluster.queue_p95(), None, "expired samples must not report a p95");
        // Both nominal slots admit again — the limit is no longer halved.
        let _first = cluster.admit().unwrap();
        let _second = cluster.admit().unwrap();
        assert_eq!(cluster.shed_count(), 0, "sheds must stop once the spike has aged out");
        // The hedge delay falls back to its cold estimate too.
        let budget = Duration::from_secs(30);
        assert_eq!(cluster.hedge_delay(budget), budget / 8);
        assert!(cluster.recent_queue.lock().is_empty(), "expiry prunes the ring in place");
    }

    #[test]
    fn small_sample_p95_is_the_median_not_the_max() {
        let table = generate_logs(&LogsSpec::scaled(200));
        let cluster =
            Cluster::build(&table, &ClusterConfig { shards: 2, ..Default::default() }).unwrap();
        let now = Instant::now();
        // Ten samples: one 500 ms outlier among nine 1 ms delays. The old
        // nearest-rank index (10·95/100 = 9) selected the outlier — the
        // sample *max* — and the hedge delay ballooned to 8×500ms. Small
        // rings now report the median.
        {
            let mut recent = cluster.recent_queue.lock();
            for _ in 0..9 {
                recent.push_back((now, Duration::from_millis(1)));
            }
            recent.push_back((now, Duration::from_millis(500)));
        }
        assert_eq!(cluster.queue_p95(), Some(Duration::from_millis(1)));
        assert_eq!(
            cluster.hedge_delay(Duration::from_secs(30)),
            Duration::from_millis(25),
            "one outlier in a small ring must not inflate the hedge delay"
        );
        // At n ≥ 20 the estimate is a true nearest-rank p95: for 1..=100 ms
        // the 95th of 100 sorted samples is 95 ms (the old floor index
        // overshot to 96 ms).
        {
            let mut recent = cluster.recent_queue.lock();
            recent.clear();
            for ms in 1..=100 {
                recent.push_back((now, Duration::from_millis(ms)));
            }
        }
        assert_eq!(cluster.queue_p95(), Some(Duration::from_millis(95)));
    }

    #[test]
    fn load_draws_are_reproducible_across_clusters() {
        // Delays depend on (seed, query, shard, replica) only, never on
        // worker scheduling or wall clock. Classify each subquery as
        // blocked (modeled draws of 30–150 ms) or not: real compute on
        // this tiny table is orders of magnitude below the 25 ms line, so
        // the classification is exactly the model's.
        let load = LoadModel { busy_probability: 0.2, blocked_probability: 0.3, seed: 77 };
        let table = generate_logs(&LogsSpec::scaled(500));
        let build = BuildOptions::production(&["country"]);
        let run = || -> Vec<bool> {
            let cluster = Cluster::build(
                &table,
                &ClusterConfig {
                    shards: 4,
                    replication: false,
                    build: build.clone(),
                    load,
                    shard_cache: 0,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut blocked = Vec::new();
            for _ in 0..20 {
                let outcome =
                    cluster.query("SELECT COUNT(*) FROM logs WHERE country = 'DE'").unwrap();
                blocked.extend(
                    outcome.subquery_latencies.iter().map(|d| *d >= Duration::from_millis(25)),
                );
            }
            blocked
        };
        let a = run();
        assert_eq!(a, run(), "equal seeds and query sequences draw equal delays");
        assert!(a.iter().any(|&b| b), "probability 0.3 over 80 draws must block some");
    }
}
