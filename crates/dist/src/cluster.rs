//! Sharded query execution with modeled server load (§4).
//!
//! §4: *"In a first step the server importing the data splits it into X
//! partitions. [...] such a query can be 'parallelized over rows' by
//! sending the query to all machines, each machine executing it on its
//! part of the data, and then merging the results."* — [`Cluster::query`]
//! does exactly that: every shard runs [`pd_core::execute_partial`] on its
//! own store, the partials merge group-wise, and [`pd_core::finalize`]
//! runs once at the root.
//!
//! §4 also describes why replication matters: *"it is quite common that
//! single machines can temporarily become slow [...] we send the query to
//! both machines holding a partition and take the answer arriving first."*
//! [`LoadModel`] draws those slow-downs per subquery; with
//! [`ClusterConfig::replication`] the faster of two draws wins.

use pd_common::rng::Rng;
use pd_common::sync::Mutex;
use pd_core::{
    execute_partial, finalize, BuildOptions, CachePolicy, DataStore, ExecContext, PartialResult,
    QueryResult, ResultCache, ScanStats, TieredCache,
};
use pd_data::Table;
use pd_sql::{analyze, parse_query};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of the §4 computation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    /// Children per inner node ("one root server communicating with up to
    /// hundreds of other servers" is fanout ≫ 2; small fanouts add depth).
    pub fanout: usize,
}

impl Default for TreeShape {
    fn default() -> Self {
        TreeShape { fanout: 16 }
    }
}

impl TreeShape {
    /// Number of merge levels needed above `leaves` leaf servers.
    pub fn depth(&self, leaves: usize) -> usize {
        let fanout = self.fanout.max(2);
        let mut depth = 0;
        let mut width = leaves.max(1);
        while width > 1 {
            width = width.div_ceil(fanout);
            depth += 1;
        }
        depth
    }
}

/// Random per-subquery slow-downs modeling busy / blocked servers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadModel {
    /// Probability that a server is "heavily loaded" (a few ms extra).
    pub busy_probability: f64,
    /// Probability that a server is "blocked, e.g., by a disk read of
    /// another process" (tens to hundreds of ms extra).
    pub blocked_probability: f64,
    /// RNG seed; equal configurations draw identical delay streams.
    pub seed: u64,
}

impl Default for LoadModel {
    fn default() -> Self {
        LoadModel { busy_probability: 0.0, blocked_probability: 0.0, seed: 0 }
    }
}

impl LoadModel {
    /// One server's extra delay for one subquery.
    fn draw(&self, rng: &mut Rng) -> Duration {
        if self.blocked_probability > 0.0 && rng.chance(self.blocked_probability) {
            Duration::from_micros(rng.range_u64(30_000, 150_000))
        } else if self.busy_probability > 0.0 && rng.chance(self.busy_probability) {
            Duration::from_micros(rng.range_u64(1_000, 6_000))
        } else {
            Duration::ZERO
        }
    }
}

/// Cluster construction options.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of data shards (the paper's X partitions).
    pub shards: usize,
    /// Send every subquery to a primary *and* a replica, taking the faster
    /// answer (§4's straggler mitigation).
    pub replication: bool,
    /// Import options for each shard's store.
    pub build: BuildOptions,
    /// Total byte budget for the uncompressed cache layer, split across
    /// shards (the compressed layer gets half of that again).
    pub cache_budget: usize,
    /// Server load fluctuation model.
    pub load: LoadModel,
    /// Computation-tree shape for the merge-latency model.
    pub tree: TreeShape,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            replication: true,
            build: BuildOptions::default(),
            cache_budget: 256 << 20,
            load: LoadModel::default(),
            tree: TreeShape::default(),
        }
    }
}

/// One shard: a store plus its caches.
struct Shard {
    store: DataStore,
    ctx: ExecContext,
}

/// The §4 single-datacenter model: X shards + a computation tree.
pub struct Cluster {
    shards: Vec<Shard>,
    config: ClusterConfig,
    rng: Mutex<Rng>,
}

/// What one distributed query cost.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub result: QueryResult,
    /// Scan statistics summed over all shards.
    pub stats: ScanStats,
    /// Modeled end-to-end latency: slowest subquery + tree merge time.
    pub latency: Duration,
    /// Modeled per-shard subquery latencies.
    pub subquery_latencies: Vec<Duration>,
}

impl Cluster {
    /// Split `table` into contiguous row ranges and import each shard.
    ///
    /// Contiguous ranges (not round-robin) preserve the "implicit
    /// clustering" of appended log records that the paper's partitioning
    /// benefits from.
    pub fn build(table: &Table, config: &ClusterConfig) -> pd_common::Result<Cluster> {
        let n = table.len();
        let shard_count = config.shards.clamp(1, n.max(1));
        let mut shards = Vec::with_capacity(shard_count);
        let per_shard_budget = (config.cache_budget / shard_count).max(1 << 16);
        for s in 0..shard_count {
            let lo = n * s / shard_count;
            let hi = n * (s + 1) / shard_count;
            let mut sub = Table::new(table.schema().clone());
            for r in lo..hi {
                sub.push_row(table.row(r))?;
            }
            let store = DataStore::build(&sub, &config.build)?;
            let ctx = ExecContext {
                sketch_m: 0,
                threads: 0,
                result_cache: Some(Arc::new(ResultCache::new(1 << 14))),
                tiered: Some(Arc::new(TieredCache::new(
                    CachePolicy::Arc,
                    per_shard_budget,
                    per_shard_budget / 2,
                ))),
            };
            shards.push(Shard { store, ctx });
        }
        Ok(Cluster {
            shards,
            config: config.clone(),
            rng: Mutex::new(Rng::seed_from_u64(config.load.seed)),
        })
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Run `sql` over every shard and merge the partial results.
    pub fn query(&self, sql: &str) -> pd_common::Result<QueryOutcome> {
        let analyzed = analyze(&parse_query(sql)?)?;

        let mut merged = PartialResult::default();
        let mut stats = ScanStats::default();
        let mut subquery_latencies = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let started = Instant::now();
            let (partial, shard_stats) = execute_partial(&shard.store, &analyzed, &shard.ctx)?;
            let compute = started.elapsed();
            let latency = compute + self.io_time(&shard_stats) + self.server_delay();
            subquery_latencies.push(latency);
            stats += &shard_stats;
            merged.merge(partial)?;
        }

        // End-to-end: subqueries run concurrently in the real system, so
        // the slowest shard dominates; each tree level adds a merge hop.
        let slowest = subquery_latencies.iter().max().copied().unwrap_or(Duration::ZERO);
        let merge_overhead =
            Duration::from_micros(200) * self.config.tree.depth(self.shards.len()) as u32;
        let finalize_started = Instant::now();
        let result = finalize(&analyzed, merged)?;
        let latency = slowest + merge_overhead + finalize_started.elapsed();
        stats.elapsed = latency;

        Ok(QueryOutcome { result, stats, latency, subquery_latencies })
    }

    /// Modeled time to move a subquery's bytes: disk reads at ~200 MB/s,
    /// decompression at ~1 GB/s (the Figure 5 relation).
    fn io_time(&self, stats: &ScanStats) -> Duration {
        let disk = stats.disk_bytes as f64 / (200.0 * 1024.0 * 1024.0);
        let decompress = stats.decompressed_bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        Duration::from_secs_f64(disk + decompress)
    }

    /// Load-model delay for one subquery; with replication the faster of
    /// two servers answers.
    fn server_delay(&self) -> Duration {
        let mut rng = self.rng.lock();
        let primary = self.config.load.draw(&mut rng);
        if self.config.replication {
            primary.min(self.config.load.draw(&mut rng))
        } else {
            primary
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_core::query;
    use pd_data::{generate_logs, LogsSpec};

    fn logs_cluster(shards: usize, replication: bool) -> (Table, Cluster) {
        let table = generate_logs(&LogsSpec::scaled(2_000));
        let mut build = BuildOptions::production(&["country", "table_name"]);
        if let Some(spec) = &mut build.partition {
            spec.max_chunk_rows = 200;
        }
        let cluster = Cluster::build(
            &table,
            &ClusterConfig { shards, replication, build, ..Default::default() },
        )
        .unwrap();
        (table, cluster)
    }

    #[test]
    fn cluster_matches_single_store() {
        let (table, cluster) = logs_cluster(4, true);
        let store = DataStore::build(&table, &BuildOptions::basic()).unwrap();
        for sql in [
            "SELECT country, COUNT(*) as c FROM logs GROUP BY country ORDER BY c DESC LIMIT 10",
            "SELECT country, SUM(timestamp) as s FROM logs GROUP BY country ORDER BY s DESC LIMIT 5",
            "SELECT COUNT(*) FROM logs WHERE country = 'DE'",
        ] {
            let (expect, _) = query(&store, sql).unwrap();
            let outcome = cluster.query(sql).unwrap();
            assert_eq!(outcome.result, expect, "{sql}");
            assert_eq!(outcome.subquery_latencies.len(), 4);
        }
    }

    #[test]
    fn shard_stats_accumulate() {
        let (_, cluster) = logs_cluster(3, false);
        let outcome = cluster.query("SELECT COUNT(*) FROM logs WHERE country = 'SG'").unwrap();
        assert_eq!(outcome.stats.rows_total, 2_000);
        assert_eq!(
            outcome.stats.rows_skipped + outcome.stats.rows_cached + outcome.stats.rows_scanned,
            outcome.stats.rows_total
        );
    }

    #[test]
    fn tree_depth_shrinks_with_fanout() {
        assert_eq!(TreeShape { fanout: 2 }.depth(1024), 10);
        assert_eq!(TreeShape { fanout: 4 }.depth(1024), 5);
        assert_eq!(TreeShape { fanout: 64 }.depth(1024), 2);
        assert_eq!(TreeShape { fanout: 16 }.depth(1), 0);
    }

    #[test]
    fn replication_tames_the_tail() {
        // Replication takes the faster of two load-model draws, so far
        // fewer queries land in the "blocked" regime (≥ 30 ms modeled
        // delay). Compare tail *frequencies* against a threshold real
        // compute time cannot reach on this tiny table (per-query compute
        // is microseconds; blocked draws are 30–150 ms), so wall-clock
        // jitter cannot flip the assertion.
        let load = LoadModel { busy_probability: 0.2, blocked_probability: 0.3, seed: 9 };
        let table = generate_logs(&LogsSpec::scaled(1_000));
        let build = BuildOptions::production(&["country"]);
        let sql = "SELECT country, COUNT(*) c FROM logs GROUP BY country ORDER BY c DESC LIMIT 3";
        let blocked_tail = |replication: bool| -> usize {
            let cluster = Cluster::build(
                &table,
                &ClusterConfig {
                    shards: 4,
                    replication,
                    build: build.clone(),
                    load,
                    ..Default::default()
                },
            )
            .unwrap();
            (0..200)
                .filter(|_| cluster.query(sql).unwrap().latency >= Duration::from_millis(25))
                .count()
        };
        let unreplicated = blocked_tail(false);
        let replicated = blocked_tail(true);
        // Expectation: P(any of 4 shards blocked) ≈ 76% unreplicated vs
        // P(any shard has BOTH replicas blocked) ≈ 31% replicated — a gap
        // of ~90 queries out of 200; assert with a wide margin.
        assert!(
            replicated + 40 < unreplicated,
            "replication must shrink the blocked tail: {replicated} vs {unreplicated} of 200"
        );
    }
}
