//! The distributed layer (§4) and the production workload replay (§6).
//!
//! PowerDrill parallelizes a query over many machines by splitting the data
//! into shards, running the *same* group-by plan on every shard, and
//! merging the mergeable group states up a computation tree. This crate
//! implements that single-datacenter setup — including, since the process
//! split, the paper's *actual* topology: shard servers and merge servers
//! as separate OS processes behind an RPC boundary. The mapping to §4:
//!
//! | paper §4                          | here                                  |
//! |-----------------------------------|---------------------------------------|
//! | X data partitions on leaf servers | [`Cluster`]'s shards: independent [`pd_core::DataStore`]s over contiguous row ranges — in-process, or imported by spawned `pd-dist-worker` processes ([`Transport::Rpc`]) |
//! | the query sent to all machines, executed concurrently | in-process: one task per shard on the shared [`pd_core::scheduler`] pool; rpc: concurrent framed messages ([`rpc`]) over Unix sockets *or* TCP ([`WorkerAddr`]), optionally compressed (`pd-compress`, negotiated per connection), carrying the decoded [`pd_sql::AnalyzedQuery`] — no SQL re-parse on any hop |
//! | partial results merged up the tree | real intermediate **merge servers** ([`worker`]): each owns a [`TreeShape`]-fanout subtree, folds child partials with the same associative merge, reports per-shard observations up, and **prunes subtrees whose [`ShardMeta`] cannot match the restriction** before any network hop ([`pd_core::ScanStats::subtrees_pruned`]); the driver is the root |
//! | "take the answer arriving first" replication | per-shard replica processes, **raced**: a primary that has not answered within the hedge delay (derived from observed queue delays) is raced against its replica in parallel, first answer wins, the loser is cancelled ([`QueryOutcome::hedges`]); a killed ([`FailureModel`]) or faulted primary fails over through the same path ([`QueryOutcome::failovers`]), and every query spends one [`RpcConfig::budget`] end to end |
//! | servers being "temporarily slow" | in-process: seeded [`LoadModel`] draws; rpc: **measured** — workers funnel requests through one executor and report real queue delays ([`QueryOutcome::queue_delays`], [`Cluster::observed_queue_delays`]) |
//! | reuse of previously computed answers | [`shard_cache`]: in-process, the root caches each shard's partial; over rpc, **every tree node** (leaf and merge-server process) holds a [`shard_cache::WorkerCache`] of its own partials keyed by the same normalized signature, invalidated by the rebuild **epoch** every message carries — hits are reported up as [`pd_core::ScanStats::worker_cache_hits`] / [`QueryOutcome::worker_cache_hits`] |
//!
//! Partial results, restrictions, group-by keys and float superaccumulator
//! states cross the process boundary in the dependency-free
//! [`pd_common::wire`] format, bit-identically — so the distributed
//! equivalence matrix (`tests/engine_equivalence.rs`) asserts exact
//! `assert_eq!` (floats included) against the single-store engine on *both*
//! transports, at every shard count and tree depth, warm or cold, with or
//! without failovers.
//!
//! Modules:
//!
//! - [`cluster`] — shards, concurrent fan-out, replication/failover,
//!   admission control, load/failure/chaos models, and the [`Transport`]
//!   switch;
//! - [`rpc`] — wire protocol: framed requests/responses, deadline
//!   budgets, typed [`pd_common::RpcError`] faults, the shared
//!   child-querying / hedged-racing logic;
//! - [`chaos`] — the seeded rpc-level fault injector behind the chaos
//!   test harness;
//! - [`worker`] — the `pd-dist-worker` process: leaf server (`Load`) or
//!   merge server (`Attach`), single-executor queue with measured delays;
//! - [`process`] — driver-side tree construction: spawning, loading and
//!   wiring worker processes, teardown on drop;
//! - [`shard_cache`] — result caching at every tree level: the root's
//!   per-shard cache and the worker processes' own [`shard_cache::WorkerCache`];
//! - [`workload`] — drill-down click streams shaped like the §6 production
//!   traffic, and [`run_production`] to replay them and report the
//!   skipped / cached / scanned split and Figure 5's latency-vs-disk-bytes
//!   relation.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod cluster;
pub mod meta;
pub mod process;
pub mod rpc;
pub mod shard_cache;
pub mod worker;
pub mod workload;

pub use chaos::{ChaosDirective, ChaosFault, ChaosModel};
pub use cluster::{
    AdmissionConfig, AppendOutcome, Cluster, ClusterConfig, FailureModel, LoadModel, QueryOutcome,
    RpcConfig, Transport, TreeShape,
};
pub use meta::{ColumnMeta, ShardMeta};
pub use process::{ProcessTree, ReapGuard, WorkerAddr};
pub use shard_cache::{query_signature, CachedSubtree, ShardCache, ShardEntry, WorkerCache};
pub use workload::{
    run_append_while_serving, run_production, AppendServeReport, Click, DrillDownWorkload,
    ProductionReport, WorkloadSpec,
};
