//! The distributed layer (§4) and the production workload replay (§6).
//!
//! PowerDrill parallelizes a query over many machines by splitting the data
//! into shards, running the *same* group-by plan on every shard, and
//! merging the mergeable group states up a computation tree. This crate
//! models that single-datacenter setup in-process:
//!
//! - [`Cluster`] — `shards` independent [`pd_core::DataStore`]s, each with
//!   its own caches, answering queries via partial execution + merge
//!   (exactly the [`pd_core::execute_partial`] /
//!   [`pd_core::PartialResult`] contract the §4 tree relies on);
//! - [`LoadModel`] — the paper's "heavily loaded or blocked" servers:
//!   per-subquery random delays, ridden out by issuing the query to a
//!   replica as well ([`ClusterConfig::replication`]);
//! - [`TreeShape`] — fanout/depth arithmetic for the computation tree;
//! - [`workload`] — drill-down click streams shaped like the §6 production
//!   traffic, and [`run_production`] to replay them and report the
//!   skipped / cached / scanned split and Figure 5's latency-vs-disk-bytes
//!   relation.

pub mod cluster;
pub mod workload;

pub use cluster::{Cluster, ClusterConfig, LoadModel, QueryOutcome, TreeShape};
pub use workload::{run_production, Click, DrillDownWorkload, ProductionReport, WorkloadSpec};
