//! The distributed layer (§4) and the production workload replay (§6).
//!
//! PowerDrill parallelizes a query over many machines by splitting the data
//! into shards, running the *same* group-by plan on every shard, and
//! merging the mergeable group states up a computation tree. This crate
//! models that single-datacenter setup in-process. The mapping to the
//! paper's §4 serving tree:
//!
//! | paper §4                          | here                                  |
//! |-----------------------------------|---------------------------------------|
//! | X data partitions on leaf servers | [`Cluster`]'s shards: independent [`pd_core::DataStore`]s over contiguous row ranges |
//! | the query sent to all machines, executed concurrently | one task per shard on the shared [`pd_core::scheduler`] worker pool |
//! | partial results merged up the tree | the driver's fixed-shard-order fold of [`pd_core::PartialResult`]s (+ [`TreeShape`]'s fanout/depth latency arithmetic) |
//! | "take the answer arriving first" replication | [`ClusterConfig::replication`]: min of two seeded delay draws; a killed primary ([`FailureModel`]) fails over to its peer |
//! | reuse of previously computed answers | [`shard_cache`]: the root caches each shard's partial, keyed by normalized restriction + group-by |
//!
//! Because every [`pd_core::AggState`] merges associatively (float sums
//! are exact superaccumulators), the concurrent fan-out is *bit-identical*
//! to the single-store engine at every shard count, thread count and cache
//! configuration — the property the top-level distributed equivalence
//! matrix (`tests/engine_equivalence.rs`) asserts exhaustively.
//!
//! Modules:
//!
//! - [`cluster`] — shards, concurrent fan-out, replication/failover, load
//!   and failure models;
//! - [`shard_cache`] — the root-side cache of per-shard partial results;
//! - [`workload`] — drill-down click streams shaped like the §6 production
//!   traffic, and [`run_production`] to replay them and report the
//!   skipped / cached / scanned split and Figure 5's latency-vs-disk-bytes
//!   relation.
//!
//! Not modeled yet (next step on the roadmap): a real process split — the
//! shards live in the driver's address space, so the RPC boundary, its
//! serialization costs and partial-failure modes are still latency models
//! rather than code paths.

pub mod cluster;
pub mod shard_cache;
pub mod workload;

pub use cluster::{Cluster, ClusterConfig, FailureModel, LoadModel, QueryOutcome, TreeShape};
pub use shard_cache::{query_signature, ShardCache, ShardEntry};
pub use workload::{run_production, Click, DrillDownWorkload, ProductionReport, WorkloadSpec};
