//! Shard metadata for restriction-aware subtree pruning.
//!
//! The paper's production discipline is "pass through the tree once, prune
//! early, move few bytes": since queries now travel as decoded
//! [`pd_sql::Restriction`]s instead of SQL text, every node that parents a
//! subtree can ask *before* spending a network hop: can any row beneath
//! this child match? [`ShardMeta`] is the per-shard summary that makes the
//! question answerable — row/chunk totals plus, per column, the complete
//! distinct-value set (when small) and the min/max value.
//!
//! Soundness contract: [`may_match`] may err only towards `true`. A `false`
//! is a *proof* that the restriction rejects every row of the shard, so the
//! parent can substitute an empty partial and account the shard's rows as
//! skipped without changing any result bit. To keep the proof aligned with
//! what the row filter would actually do, every comparison goes through
//! `pd_sql`'s own [`values_equal`] / [`values_compare`] — the exact
//! semantics `WHERE` evaluation uses (numeric across Int/Float, total
//! order otherwise).

use pd_common::wire::{Decode, Encode, Reader};
use pd_common::{Result, Row, Schema, Value};
use pd_sql::{values_compare, values_equal, Expr, Restriction};
use std::cmp::Ordering;

/// Distinct values tracked per column before the summary degrades to
/// min/max only. Low-cardinality dimensions (country, table name) stay
/// exact — they are the columns drill-down restrictions touch.
pub const MAX_DISTINCT: usize = 48;

/// One column's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    pub name: String,
    /// The complete distinct-value set, or `None` when it exceeded
    /// [`MAX_DISTINCT`] (min/max still apply).
    pub values: Option<Vec<Value>>,
    /// Extremes under [`values_compare`]; `None` only for a rowless shard.
    pub min: Option<Value>,
    pub max: Option<Value>,
}

/// One shard's summary, carried in the tree-wiring messages.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMeta {
    pub shard: u64,
    pub rows: u64,
    /// Chunk count of the built store (for skip accounting up the tree).
    pub chunks: u64,
    pub columns: Vec<ColumnMeta>,
}

impl ShardMeta {
    /// Summarize `rows` (the exact rows a leaf imports). `chunks` is
    /// filled in after the store build.
    pub fn summarize(shard: u64, schema: &Schema, rows: &[Row]) -> ShardMeta {
        let mut columns: Vec<ColumnMeta> = schema
            .fields()
            .iter()
            .map(|f| ColumnMeta {
                name: f.name.clone(),
                values: Some(Vec::new()),
                min: None,
                max: None,
            })
            .collect();
        for row in rows {
            for (meta, value) in columns.iter_mut().zip(&row.0) {
                meta.observe(value);
            }
        }
        ShardMeta { shard, rows: rows.len() as u64, chunks: 0, columns }
    }

    fn column(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns.iter().find(|c| c.name == name)
    }
}

impl ColumnMeta {
    fn observe(&mut self, value: &Value) {
        if let Some(values) = &mut self.values {
            // Sorted insert (by the same comparator pruning uses), so the
            // per-row dedup is a binary search rather than a linear scan —
            // this runs once per cell of every shipped shard.
            if let Err(at) = values.binary_search_by(|m| values_compare(m, value)) {
                if values.len() >= MAX_DISTINCT {
                    self.values = None;
                } else {
                    values.insert(at, value.clone());
                }
            }
        }
        let wider = |bound: &mut Option<Value>, keep: Ordering| {
            let replace = match bound {
                None => true,
                Some(b) => values_compare(value, b) == keep,
            };
            if replace {
                *bound = Some(value.clone());
            }
        };
        wider(&mut self.min, Ordering::Less);
        wider(&mut self.max, Ordering::Greater);
    }

    /// Could any row of this column equal `v` (under SQL equality)?
    fn may_contain(&self, v: &Value) -> bool {
        if let Some(values) = &self.values {
            return values.iter().any(|m| values_equal(m, v));
        }
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => {
                // SQL equality and the total order disagree in exactly one
                // corner: ±0.0 (values_equal(0, -0.0) but -0.0 < 0 under
                // total_cmp). A probe equal to either bound must therefore
                // count as present even when the interval test would place
                // it outside — otherwise a shard whose rows match could be
                // pruned, and pruning may only ever err towards "maybe".
                values_equal(v, min)
                    || values_equal(v, max)
                    || (values_compare(v, min) != Ordering::Less
                        && values_compare(v, max) != Ordering::Greater)
            }
            _ => false, // no rows at all
        }
    }
}

/// Can any row of the shard satisfy `restriction`? Errs towards `true`:
/// opaque predicates, virtual-field expressions and columns absent from
/// the summary are all "maybe".
pub fn may_match(restriction: &Restriction, meta: &ShardMeta) -> bool {
    if meta.rows == 0 {
        return false;
    }
    match restriction {
        Restriction::True | Restriction::Opaque => true,
        Restriction::And(children) => children.iter().all(|r| may_match(r, meta)),
        Restriction::Or(children) => children.iter().any(|r| may_match(r, meta)),
        Restriction::In { field, values, negated } => {
            let Some(column) = plain_column(field, meta) else { return true };
            if !negated {
                values.iter().any(|v| column.may_contain(v))
            } else {
                // NOT IN can only be refuted with the complete value set:
                // every shard value must hit the list.
                match &column.values {
                    Some(present) => {
                        !present.iter().all(|m| values.iter().any(|v| values_equal(m, v)))
                    }
                    None => true,
                }
            }
        }
        Restriction::Range { field, min, max } => {
            let Some(column) = plain_column(field, meta) else { return true };
            let (Some(cmin), Some(cmax)) = (&column.min, &column.max) else { return false };
            let above_lo = match min {
                None => true,
                Some((v, inclusive)) => match values_compare(cmax, v) {
                    Ordering::Greater => true,
                    Ordering::Equal => *inclusive,
                    Ordering::Less => false,
                },
            };
            let below_hi = match max {
                None => true,
                Some((v, inclusive)) => match values_compare(cmin, v) {
                    Ordering::Less => true,
                    Ordering::Equal => *inclusive,
                    Ordering::Greater => false,
                },
            };
            above_lo && below_hi
        }
    }
}

fn plain_column<'a>(field: &Expr, meta: &'a ShardMeta) -> Option<&'a ColumnMeta> {
    meta.column(field.as_column()?)
}

// --- wire codecs ------------------------------------------------------------

impl Encode for ColumnMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.values.encode(out);
        self.min.encode(out);
        self.max.encode(out);
    }
}

impl Decode for ColumnMeta {
    fn decode(r: &mut Reader<'_>) -> Result<ColumnMeta> {
        Ok(ColumnMeta {
            name: String::decode(r)?,
            values: Option::<Vec<Value>>::decode(r)?,
            min: Option::<Value>::decode(r)?,
            max: Option::<Value>::decode(r)?,
        })
    }
}

impl Encode for ShardMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard.encode(out);
        self.rows.encode(out);
        self.chunks.encode(out);
        self.columns.encode(out);
    }
}

impl Decode for ShardMeta {
    fn decode(r: &mut Reader<'_>) -> Result<ShardMeta> {
        Ok(ShardMeta {
            shard: r.u64()?,
            rows: r.u64()?,
            chunks: r.u64()?,
            columns: Vec::<ColumnMeta>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::wire::{from_bytes, to_bytes};
    use pd_common::DataType;
    use pd_sql::parse_query;

    fn sample_meta() -> ShardMeta {
        let schema = Schema::of(&[
            ("country", DataType::Str),
            ("latency", DataType::Int),
            ("x", DataType::Float),
        ]);
        let rows: Vec<Row> = (0..100i64)
            .map(|i| {
                Row(vec![
                    Value::from(["DE", "FR"][(i % 2) as usize]),
                    Value::Int(100 + i),
                    Value::Float(i as f64 * 0.5),
                ])
            })
            .collect();
        ShardMeta::summarize(7, &schema, &rows)
    }

    fn restriction(where_sql: &str) -> Restriction {
        let q = parse_query(&format!("SELECT COUNT(*) FROM t WHERE {where_sql}")).unwrap();
        Restriction::from_expr(&q.where_clause.unwrap())
    }

    #[test]
    fn summaries_capture_values_and_extremes() {
        let meta = sample_meta();
        let country = meta.column("country").unwrap();
        assert_eq!(country.values.as_ref().unwrap().len(), 2);
        let latency = meta.column("latency").unwrap();
        assert_eq!(latency.values, None, "100 distinct ints exceed the cap");
        assert_eq!(latency.min, Some(Value::Int(100)));
        assert_eq!(latency.max, Some(Value::Int(199)));
    }

    #[test]
    fn pruning_is_sound_and_useful() {
        let meta = sample_meta();
        // Provably absent values prune; present values don't.
        assert!(!may_match(&restriction("country = 'US'"), &meta));
        assert!(may_match(&restriction("country = 'DE'"), &meta));
        assert!(!may_match(&restriction("country IN ('US', 'SG')"), &meta));
        assert!(may_match(&restriction("country IN ('US', 'FR')"), &meta));
        // Min/max reasoning for the capped column.
        assert!(!may_match(&restriction("latency > 199"), &meta));
        assert!(may_match(&restriction("latency >= 199"), &meta));
        assert!(!may_match(&restriction("latency < 100"), &meta));
        assert!(may_match(&restriction("latency <= 100"), &meta));
        // Values inside the range can never be proven absent without the set.
        assert!(may_match(&restriction("latency = 150"), &meta));
        // Mixed-type numerics use SQL comparison semantics.
        assert!(!may_match(&restriction("latency > 199.5"), &meta));
        assert!(!may_match(&restriction("x > 49.6"), &meta));
        // AND prunes if any leg does; OR only if all legs do.
        assert!(!may_match(&restriction("country = 'US' AND latency > 0"), &meta));
        assert!(may_match(&restriction("country = 'US' OR latency > 0"), &meta));
        // NOT IN with a complete set prunes only when every value is listed.
        assert!(!may_match(&restriction("country NOT IN ('DE', 'FR')"), &meta));
        assert!(may_match(&restriction("country NOT IN ('DE')"), &meta));
        // Opaque predicates and unknown columns never prune.
        assert!(may_match(&restriction("contains(country, 'D')"), &meta));
        assert!(may_match(&restriction("date(timestamp) IN ('2012-01-01')"), &meta));
        assert!(may_match(&restriction("nosuch = 'x'"), &meta));
    }

    #[test]
    fn signed_zero_equality_never_prunes_a_matching_shard() {
        // >MAX_DISTINCT distinct floats, all <= -0.0, so the value set
        // degrades to min/max with max = -0.0. `x = 0` matches the -0.0
        // rows under SQL equality even though Int(0) sits *above* the max
        // in the total order — the shard must not be pruned.
        let schema = Schema::of(&[("x", DataType::Float)]);
        let mut rows: Vec<Row> = (1..=60).map(|i| Row(vec![Value::Float(-(i as f64))])).collect();
        rows.push(Row(vec![Value::Float(-0.0)]));
        let meta = ShardMeta::summarize(0, &schema, &rows);
        assert_eq!(meta.column("x").unwrap().values, None, "set must have degraded");
        assert_eq!(meta.column("x").unwrap().max, Some(Value::Float(-0.0)));
        assert!(may_match(&restriction("x = 0"), &meta));
        // Float-vs-float equality in this engine is total_cmp-based, so
        // the row filter itself rejects `-0.0 = 0.0` — pruning that probe
        // is sound (and correct): only the numeric Int/Float path above
        // crosses the signed-zero boundary.
        assert!(!may_match(&restriction("x = 0.0"), &meta));
        assert!(may_match(&restriction("x = -60"), &meta), "equality with min");
        assert!(!may_match(&restriction("x = 1"), &meta), "still prunes above the range");
        assert!(!may_match(&restriction("x = -61"), &meta), "still prunes below the range");
    }

    #[test]
    fn empty_shards_always_prune() {
        let schema = Schema::of(&[("k", DataType::Str)]);
        let meta = ShardMeta::summarize(0, &schema, &[]);
        assert!(!may_match(&Restriction::True, &meta));
        assert!(!may_match(&restriction("k = 'a'"), &meta));
    }

    #[test]
    fn metas_round_trip_on_the_wire() {
        let mut meta = sample_meta();
        meta.chunks = 4;
        let back: ShardMeta = from_bytes(&to_bytes(&meta)).unwrap();
        assert_eq!(back, meta);
        // Truncations error, never panic.
        let bytes = to_bytes(&meta);
        for cut in (0..bytes.len()).step_by(7) {
            assert!(from_bytes::<ShardMeta>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
