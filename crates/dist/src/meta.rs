//! Shard metadata for restriction-aware pruning at every tree level.
//!
//! The paper's production discipline is "pass through the tree once, prune
//! early, move few bytes": since queries now travel as decoded
//! [`pd_sql::Restriction`]s instead of SQL text, every node that parents a
//! subtree can ask *before* spending a network hop: can any row beneath
//! this child match? [`ShardMeta`] is the per-shard summary that makes the
//! question answerable, and it is layered like the paper's own metadata:
//!
//! 1. **Shard zone map** — row/chunk totals plus, per column, the complete
//!    distinct-value set (when small) and the min/max value;
//! 2. **Bloom filters** (§5: *"we additionally keep Bloom-filters for each
//!    dictionary"*) — for columns whose distinct set degraded past
//!    [`MAX_DISTINCT`], equality probes can still prove absence;
//! 3. **Per-chunk zone maps** ([`ChunkMeta`]) — min/max plus a small
//!    distinct set per chunk, so a parent can compute how much of a child
//!    is live, prune the edge when *zero* chunks survive, and ship the
//!    verdicts down so the leaf scan skips without re-deriving them;
//! 4. **Virtual fields** (§5.1 partial evaluation) — a restriction over
//!    `date(timestamp)` evaluates the expression over a column's complete
//!    value set, so computed fields prune instead of falling to
//!    `Opaque`-is-maybe.
//!
//! Soundness contract: every layer may err only towards `true` ("maybe").
//! A `false` from [`may_match`] / a `Skip` from [`chunk_verdicts`] is a
//! *proof* that the restriction rejects every row, so the parent can
//! substitute an empty partial and account the rows as skipped without
//! changing any result bit. To keep the proofs aligned with what the row
//! filter would actually do, every comparison goes through `pd_sql`'s own
//! [`values_equal`] / [`values_compare`] — the exact semantics `WHERE`
//! evaluation uses (numeric across Int/Float, total order otherwise) — and
//! virtual fields go through the same [`pd_sql::eval_expr`] the filter
//! applies per row.

use pd_common::wire::{Decode, Encode, Reader};
use pd_common::{DataType, Result, Row, Schema, Value};
use pd_core::{ChunkActivity, Partitioning};
use pd_encoding::BloomFilter;
use pd_sql::{eval_expr, values_compare, values_equal, Expr, Restriction};
use std::borrow::Cow;
use std::cmp::Ordering;

/// Distinct values tracked per column before the shard summary degrades to
/// min/max only. Low-cardinality dimensions (country, table name) stay
/// exact — they are the columns drill-down restrictions touch.
pub const MAX_DISTINCT: usize = 48;

/// The (smaller) distinct-set cap per chunk: chunks are value-clustered by
/// the partitioner, so even a modest set stays exact for the partition
/// fields, and there are many chunks per shard to keep small on the wire.
pub const MAX_CHUNK_DISTINCT: usize = 16;

/// Bits per key for the per-column Bloom filters (≈1% false positives).
const BLOOM_BITS_PER_KEY: usize = 10;

/// One column's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    pub name: String,
    /// The complete distinct-value set, or `None` when it exceeded the cap
    /// (min/max still apply).
    pub values: Option<Vec<Value>>,
    /// Extremes under [`values_compare`]; `None` only for a rowless shard.
    pub min: Option<Value>,
    pub max: Option<Value>,
}

/// One chunk's zone map: row count plus per-column min/max and a small
/// distinct set, in schema field order.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMeta {
    pub rows: u64,
    pub columns: Vec<ColumnMeta>,
}

/// A Bloom filter over one column's values, kept only for columns whose
/// shard distinct set degraded to `None` — the membership question the
/// zone map can no longer answer exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBloom {
    pub name: String,
    /// The column's declared type. Probes of a different type kind bail to
    /// "maybe": SQL equality is numeric across Int/Float but the hashes
    /// are not, so a cross-type probe must never be treated as a proof.
    pub data_type: DataType,
    pub filter: BloomFilter,
}

impl ColumnBloom {
    /// Could the column contain `v`? `false` is a proof of absence under
    /// SQL equality; `true` may be a false positive. Float values hash by
    /// bit pattern, which matches this engine's total-order float equality
    /// (`-0.0 ≠ 0.0`, NaN payloads distinct).
    pub fn may_contain(&self, v: &Value) -> bool {
        match (self.data_type, v) {
            (DataType::Str, Value::Str(s)) => self.filter.may_contain(s.as_str()),
            (DataType::Int, Value::Int(i)) => self.filter.may_contain(i),
            (DataType::Float, Value::Float(f)) => self.filter.may_contain(&f.to_bits()),
            _ => true,
        }
    }

    fn insert(&mut self, v: &Value) {
        match v {
            Value::Str(s) => self.filter.insert(s.as_str()),
            Value::Int(i) => self.filter.insert(i),
            Value::Float(f) => self.filter.insert(&f.to_bits()),
            // Nulls never satisfy an equality probe, so they need no bits.
            Value::Null => {}
        }
    }
}

/// One shard's summary, carried in the tree-wiring messages.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMeta {
    pub shard: u64,
    pub rows: u64,
    /// Chunk count of the built store (for skip accounting up the tree).
    pub chunks: u64,
    pub columns: Vec<ColumnMeta>,
    /// Per-chunk zone maps in chunk order (empty until the leaf attaches
    /// them after the store build).
    pub chunk_metas: Vec<ChunkMeta>,
    /// Bloom filters for the columns whose `values` degraded to `None`.
    pub blooms: Vec<ColumnBloom>,
}

impl ShardMeta {
    /// Summarize `rows` (the exact rows a leaf imports). `chunks` and the
    /// chunk/bloom layers are filled in after the store build (see
    /// [`ShardMeta::summarize_chunks`] / [`ShardMeta::build_blooms`]).
    pub fn summarize(shard: u64, schema: &Schema, rows: &[Row]) -> ShardMeta {
        let mut columns = empty_columns(schema);
        for row in rows {
            for (meta, value) in columns.iter_mut().zip(&row.0) {
                meta.observe(value);
            }
        }
        ShardMeta {
            shard,
            rows: rows.len() as u64,
            chunks: 0,
            columns,
            chunk_metas: Vec::new(),
            blooms: Vec::new(),
        }
    }

    /// Attach per-chunk zone maps: the store's partitioning says which of
    /// the *original* rows landed in which chunk (and in what order), so
    /// the chunk summaries describe exactly the rows each chunk scan would
    /// visit. `columns` are the imported values in schema field order
    /// (indexed by original row, as [`pd_data::Table::column`] hands out).
    pub fn summarize_chunks(&mut self, schema: &Schema, columns: &[&[Value]], part: &Partitioning) {
        self.chunk_metas = (0..part.chunk_count())
            .map(|c| {
                let range = part.chunk_range(c);
                let mut metas = empty_columns(schema);
                for (meta, column) in metas.iter_mut().zip(columns) {
                    for &r in &part.row_order[range.clone()] {
                        meta.observe_capped(&column[r as usize], MAX_CHUNK_DISTINCT);
                    }
                }
                ChunkMeta { rows: range.len() as u64, columns: metas }
            })
            .collect();
    }

    /// Build Bloom filters for every column whose distinct set degraded —
    /// the columns where an equality probe currently gets only a min/max
    /// answer.
    pub fn build_blooms(&mut self, schema: &Schema, columns: &[&[Value]]) {
        self.blooms = schema
            .fields()
            .iter()
            .enumerate()
            .filter(|(idx, _)| self.columns[*idx].values.is_none())
            .map(|(idx, field)| {
                let mut bloom = ColumnBloom {
                    name: field.name.clone(),
                    data_type: field.data_type,
                    filter: BloomFilter::new(columns[idx].len(), BLOOM_BITS_PER_KEY),
                };
                for v in columns[idx] {
                    bloom.insert(v);
                }
                bloom
            })
            .collect();
    }

    /// The shard-level summary for a named column.
    pub fn column(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Absorb an applied streaming delta: fold the delta's values into the
    /// shard zone map, append one [`ChunkMeta`] per fresh chunk, and keep
    /// the Bloom layer complete. `columns` are the delta values in schema
    /// field order (arrival order within each column); `new_chunk_rows`
    /// are the row counts of the chunks the store just appended.
    ///
    /// Soundness at the cap transition: when a column's distinct set
    /// degrades past [`MAX_DISTINCT`] *during* this append, both the
    /// pre-append set and the delta values are still in hand, so the fresh
    /// filter is built exactly — no value ever enters the shard without
    /// entering its bloom. Columns already degraded at load keep their
    /// existing filter and gain the delta's values.
    pub fn absorb_delta(
        &mut self,
        schema: &Schema,
        columns: &[&[Value]],
        new_chunk_rows: &[usize],
    ) {
        let delta_rows: usize = new_chunk_rows.iter().sum();
        for (idx, (field, column)) in schema.fields().iter().zip(columns).enumerate() {
            let pre_values = self.columns[idx].values.clone();
            for v in *column {
                self.columns[idx].observe(v);
            }
            if let (Some(pre), None) = (&pre_values, &self.columns[idx].values) {
                // Cap transition: build the filter from the complete
                // distinct set (pre-append ∪ delta), exactly.
                let mut bloom = ColumnBloom {
                    name: field.name.clone(),
                    data_type: field.data_type,
                    filter: BloomFilter::new(pre.len() + column.len(), BLOOM_BITS_PER_KEY),
                };
                for v in pre.iter().chain(*column) {
                    bloom.insert(v);
                }
                self.blooms.retain(|b| b.name != field.name);
                self.blooms.push(bloom);
            } else if let Some(bloom) = self.blooms.iter_mut().find(|b| b.name == field.name) {
                for v in *column {
                    bloom.insert(v);
                }
            }
        }

        // The chunk layer stays aligned with the store's chunk order only
        // when it was complete before the append ("empty until the leaf
        // attaches them" means absent, not complete); an incomplete layer
        // is dropped (shard-granular pruning stays sound) rather than left
        // with misindexed verdicts.
        if !self.chunk_metas.is_empty() && self.chunk_metas.len() as u64 == self.chunks {
            let mut at = 0usize;
            for &len in new_chunk_rows {
                let mut metas = empty_columns(schema);
                for (meta, column) in metas.iter_mut().zip(columns) {
                    for v in &column[at..at + len] {
                        meta.observe_capped(v, MAX_CHUNK_DISTINCT);
                    }
                }
                at += len;
                self.chunk_metas.push(ChunkMeta { rows: len as u64, columns: metas });
            }
        } else {
            self.chunk_metas.clear();
        }

        self.rows += delta_rows as u64;
        self.chunks += new_chunk_rows.len() as u64;
    }
}

fn empty_columns(schema: &Schema) -> Vec<ColumnMeta> {
    schema
        .fields()
        .iter()
        .map(|f| ColumnMeta {
            name: f.name.clone(),
            values: Some(Vec::new()),
            min: None,
            max: None,
        })
        .collect()
}

impl ColumnMeta {
    fn observe(&mut self, value: &Value) {
        self.observe_capped(value, MAX_DISTINCT);
    }

    fn observe_capped(&mut self, value: &Value, cap: usize) {
        if let Some(values) = &mut self.values {
            // Sorted insert (by the same comparator pruning uses), so the
            // per-row dedup is a binary search rather than a linear scan —
            // this runs once per cell of every shipped shard.
            if let Err(at) = values.binary_search_by(|m| values_compare(m, value)) {
                if values.len() >= cap {
                    self.values = None;
                } else {
                    values.insert(at, value.clone());
                }
            }
        }
        let wider = |bound: &mut Option<Value>, keep: Ordering| {
            let replace = match bound {
                None => true,
                Some(b) => values_compare(value, b) == keep,
            };
            if replace {
                *bound = Some(value.clone());
            }
        };
        wider(&mut self.min, Ordering::Less);
        wider(&mut self.max, Ordering::Greater);
    }

    /// Could any row of this column equal `v` (under SQL equality)?
    fn may_contain(&self, v: &Value) -> bool {
        if let Some(values) = &self.values {
            return values.iter().any(|m| values_equal(m, v));
        }
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => {
                // SQL equality and the total order disagree in exactly one
                // corner: ±0.0 (values_equal(0, -0.0) but -0.0 < 0 under
                // total_cmp). A probe equal to either bound must therefore
                // count as present even when the interval test would place
                // it outside — otherwise a shard whose rows match could be
                // pruned, and pruning may only ever err towards "maybe".
                values_equal(v, min)
                    || values_equal(v, max)
                    || (values_compare(v, min) != Ordering::Less
                        && values_compare(v, max) != Ordering::Greater)
            }
            _ => false, // no rows at all
        }
    }
}

// --- the layered evaluator --------------------------------------------------

/// Can any row of the shard satisfy `restriction`? The full layered check:
/// shard zone map, then Bloom probes for equality restrictions on degraded
/// columns, then — when the chunk layer is present — the per-chunk
/// verdicts, pruning the shard when *zero* chunks survive. Errs towards
/// `true`: opaque predicates, unknown columns and unresolvable virtual
/// fields are all "maybe".
pub fn may_match(restriction: &Restriction, meta: &ShardMeta) -> bool {
    if !shard_may_match(restriction, meta) {
        return false;
    }
    if meta.chunk_metas.is_empty() {
        return true;
    }
    chunk_verdicts(restriction, meta).iter().any(|a| *a != ChunkActivity::Skip)
}

/// The shard-granular layers only (zone map + Bloom) — what a parent uses
/// when chunk-granular pruning is disabled.
pub fn shard_may_match(restriction: &Restriction, meta: &ShardMeta) -> bool {
    if meta.rows == 0 {
        return false;
    }
    activity_of(restriction, &meta.columns, &meta.blooms) != ChunkActivity::Skip
}

/// Chunk-granular verdicts from the metadata alone, one per entry of
/// `meta.chunk_metas` (chunk order). Each verdict is sound for the leaf's
/// actual chunks, so parents can count provably-dead chunks and leaves can
/// seed their scan's [`pd_core::skip::SkipAnalysis`] with them.
pub fn chunk_verdicts(restriction: &Restriction, meta: &ShardMeta) -> Vec<ChunkActivity> {
    meta.chunk_metas
        .iter()
        .map(|chunk| {
            if chunk.rows == 0 {
                ChunkActivity::Skip
            } else {
                // Shard-wide blooms stay sound per chunk: a value absent
                // from the shard is absent from every chunk of it.
                activity_of(restriction, &chunk.columns, &meta.blooms)
            }
        })
        .collect()
}

/// Evaluate `restriction` against one zone map (a shard's or a chunk's)
/// into the three-valued verdict. `Skip` and `Full` are proofs; anything
/// uncertain is `Partial`.
fn activity_of(
    restriction: &Restriction,
    columns: &[ColumnMeta],
    blooms: &[ColumnBloom],
) -> ChunkActivity {
    match restriction {
        Restriction::True => ChunkActivity::Full,
        Restriction::Opaque => ChunkActivity::Partial,
        // Degenerate conjunctions/disjunctions err towards maybe: `all`
        // over zero children is vacuously true and `any` vacuously false,
        // and the latter once turned a vacuous restriction into a silent
        // wrong-answer prune. No parser produces them today; if a future
        // normalizer does, "maybe" costs a scan, never a result bit.
        Restriction::And(children) | Restriction::Or(children) if children.is_empty() => {
            ChunkActivity::Partial
        }
        Restriction::And(children) => children
            .iter()
            .map(|r| activity_of(r, columns, blooms))
            .fold(ChunkActivity::Full, ChunkActivity::and),
        Restriction::Or(children) => {
            let mut verdict: Option<ChunkActivity> = None;
            for child in children {
                let a = activity_of(child, columns, blooms);
                verdict = Some(match verdict {
                    None => a,
                    Some(v) => match (v, a) {
                        (ChunkActivity::Full, _) | (_, ChunkActivity::Full) => ChunkActivity::Full,
                        (ChunkActivity::Skip, ChunkActivity::Skip) => ChunkActivity::Skip,
                        _ => ChunkActivity::Partial,
                    },
                });
            }
            verdict.unwrap_or(ChunkActivity::Partial)
        }
        Restriction::In { field, values, negated } => {
            let Some(column) = resolved_column(field, columns) else {
                return ChunkActivity::Partial;
            };
            // Bloom probes apply only to bare columns: the filters hash
            // *base* column values, never derived virtual-field outputs.
            let bloom = field.as_column().and_then(|name| blooms.iter().find(|b| b.name == name));
            if !negated {
                let live = values
                    .iter()
                    .any(|v| column.may_contain(v) && bloom.is_none_or(|b| b.may_contain(v)));
                if !live {
                    return ChunkActivity::Skip;
                }
                // With the complete set, "every present value hits the
                // list" upgrades to a proof of full activity.
                match &column.values {
                    Some(present)
                        if present.iter().all(|m| values.iter().any(|v| values_equal(m, v))) =>
                    {
                        ChunkActivity::Full
                    }
                    _ => ChunkActivity::Partial,
                }
            } else {
                // NOT IN can only be decided with the complete value set:
                // all present values listed → no row survives; none listed
                // → every row survives.
                match &column.values {
                    Some(present) => {
                        let listed = |m: &Value| values.iter().any(|v| values_equal(m, v));
                        if present.iter().all(listed) {
                            ChunkActivity::Skip
                        } else if !present.iter().any(listed) {
                            ChunkActivity::Full
                        } else {
                            ChunkActivity::Partial
                        }
                    }
                    None => ChunkActivity::Partial,
                }
            }
        }
        Restriction::Range { field, min, max } => {
            let Some(column) = resolved_column(field, columns) else {
                return ChunkActivity::Partial;
            };
            let (Some(cmin), Some(cmax)) = (&column.min, &column.max) else {
                return ChunkActivity::Skip; // no rows at all
            };
            // Range comparisons in the row filter are purely
            // `values_compare`, so interval reasoning here is exact.
            let (any_above_lo, all_above_lo) = match min {
                None => (true, true),
                Some((v, inclusive)) => {
                    let any = match values_compare(cmax, v) {
                        Ordering::Greater => true,
                        Ordering::Equal => *inclusive,
                        Ordering::Less => false,
                    };
                    let all = match values_compare(cmin, v) {
                        Ordering::Greater => true,
                        Ordering::Equal => *inclusive,
                        Ordering::Less => false,
                    };
                    (any, all)
                }
            };
            let (any_below_hi, all_below_hi) = match max {
                None => (true, true),
                Some((v, inclusive)) => {
                    let any = match values_compare(cmin, v) {
                        Ordering::Less => true,
                        Ordering::Equal => *inclusive,
                        Ordering::Greater => false,
                    };
                    let all = match values_compare(cmax, v) {
                        Ordering::Less => true,
                        Ordering::Equal => *inclusive,
                        Ordering::Greater => false,
                    };
                    (any, all)
                }
            };
            if !any_above_lo || !any_below_hi {
                ChunkActivity::Skip
            } else if all_above_lo && all_below_hi {
                ChunkActivity::Full
            } else {
                ChunkActivity::Partial
            }
        }
    }
}

/// Resolve a restriction's field expression against a zone map: a bare
/// column looks up directly; any other expression is the §5.1 partial
/// evaluation — when it references exactly one column whose complete
/// distinct set survived, evaluating it over that set yields the complete
/// distinct set *of the expression*, through exactly the
/// [`pd_sql::eval_expr`] the row filter would apply. Any evaluation error
/// or missing precondition resolves to `None` ("maybe").
fn resolved_column<'a>(field: &Expr, columns: &'a [ColumnMeta]) -> Option<Cow<'a, ColumnMeta>> {
    if let Some(name) = field.as_column() {
        return columns.iter().find(|c| c.name == name).map(Cow::Borrowed);
    }
    let mut names = Vec::new();
    field.referenced_columns(&mut names);
    let [name] = names.as_slice() else { return None };
    let source = columns.iter().find(|c| c.name == *name)?;
    let values = source.values.as_ref()?;
    let mut derived =
        ColumnMeta { name: field.canonical(), values: Some(Vec::new()), min: None, max: None };
    for v in values {
        let row = [(name.as_str(), v.clone())];
        let out = eval_expr(field, row.as_slice()).ok()?;
        derived.observe(&out);
    }
    Some(Cow::Owned(derived))
}

// --- wire codecs ------------------------------------------------------------

impl Encode for ColumnMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.values.encode(out);
        self.min.encode(out);
        self.max.encode(out);
    }
}

impl Decode for ColumnMeta {
    fn decode(r: &mut Reader<'_>) -> Result<ColumnMeta> {
        Ok(ColumnMeta {
            name: String::decode(r)?,
            values: Option::<Vec<Value>>::decode(r)?,
            min: Option::<Value>::decode(r)?,
            max: Option::<Value>::decode(r)?,
        })
    }
}

impl Encode for ChunkMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rows.encode(out);
        self.columns.encode(out);
    }
}

impl Decode for ChunkMeta {
    fn decode(r: &mut Reader<'_>) -> Result<ChunkMeta> {
        Ok(ChunkMeta { rows: r.u64()?, columns: Vec::<ColumnMeta>::decode(r)? })
    }
}

impl Encode for ColumnBloom {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.data_type.encode(out);
        self.filter.encode(out);
    }
}

impl Decode for ColumnBloom {
    fn decode(r: &mut Reader<'_>) -> Result<ColumnBloom> {
        Ok(ColumnBloom {
            name: String::decode(r)?,
            data_type: DataType::decode(r)?,
            filter: BloomFilter::decode(r)?,
        })
    }
}

impl Encode for ShardMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard.encode(out);
        self.rows.encode(out);
        self.chunks.encode(out);
        self.columns.encode(out);
        self.chunk_metas.encode(out);
        self.blooms.encode(out);
    }
}

impl Decode for ShardMeta {
    fn decode(r: &mut Reader<'_>) -> Result<ShardMeta> {
        Ok(ShardMeta {
            shard: r.u64()?,
            rows: r.u64()?,
            chunks: r.u64()?,
            columns: Vec::<ColumnMeta>::decode(r)?,
            chunk_metas: Vec::<ChunkMeta>::decode(r)?,
            blooms: Vec::<ColumnBloom>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_common::wire::{from_bytes, to_bytes};
    use pd_common::DataType;
    use pd_sql::parse_query;

    fn sample_meta() -> ShardMeta {
        let schema = Schema::of(&[
            ("country", DataType::Str),
            ("latency", DataType::Int),
            ("x", DataType::Float),
        ]);
        let rows: Vec<Row> = (0..100i64)
            .map(|i| {
                Row(vec![
                    Value::from(["DE", "FR"][(i % 2) as usize]),
                    Value::Int(100 + i),
                    Value::Float(i as f64 * 0.5),
                ])
            })
            .collect();
        ShardMeta::summarize(7, &schema, &rows)
    }

    fn restriction(where_sql: &str) -> Restriction {
        let q = parse_query(&format!("SELECT COUNT(*) FROM t WHERE {where_sql}")).unwrap();
        Restriction::from_expr(&q.where_clause.unwrap())
    }

    /// Row-major test data → the column slices the production path (a
    /// columnar [`pd_data::Table`]) hands to the chunk/bloom builders.
    fn transposed(rows: &[Row]) -> Vec<Vec<Value>> {
        let width = rows.first().map_or(0, |r| r.0.len());
        (0..width).map(|i| rows.iter().map(|r| r.0[i].clone()).collect()).collect()
    }

    fn as_slices(columns: &[Vec<Value>]) -> Vec<&[Value]> {
        columns.iter().map(|c| c.as_slice()).collect()
    }

    #[test]
    fn summaries_capture_values_and_extremes() {
        let meta = sample_meta();
        let country = meta.column("country").unwrap();
        assert_eq!(country.values.as_ref().unwrap().len(), 2);
        let latency = meta.column("latency").unwrap();
        assert_eq!(latency.values, None, "100 distinct ints exceed the cap");
        assert_eq!(latency.min, Some(Value::Int(100)));
        assert_eq!(latency.max, Some(Value::Int(199)));
    }

    #[test]
    fn pruning_is_sound_and_useful() {
        let meta = sample_meta();
        // Provably absent values prune; present values don't.
        assert!(!may_match(&restriction("country = 'US'"), &meta));
        assert!(may_match(&restriction("country = 'DE'"), &meta));
        assert!(!may_match(&restriction("country IN ('US', 'SG')"), &meta));
        assert!(may_match(&restriction("country IN ('US', 'FR')"), &meta));
        // Min/max reasoning for the capped column.
        assert!(!may_match(&restriction("latency > 199"), &meta));
        assert!(may_match(&restriction("latency >= 199"), &meta));
        assert!(!may_match(&restriction("latency < 100"), &meta));
        assert!(may_match(&restriction("latency <= 100"), &meta));
        // Values inside the range can never be proven absent without the set.
        assert!(may_match(&restriction("latency = 150"), &meta));
        // Mixed-type numerics use SQL comparison semantics.
        assert!(!may_match(&restriction("latency > 199.5"), &meta));
        assert!(!may_match(&restriction("x > 49.6"), &meta));
        // AND prunes if any leg does; OR only if all legs do.
        assert!(!may_match(&restriction("country = 'US' AND latency > 0"), &meta));
        assert!(may_match(&restriction("country = 'US' OR latency > 0"), &meta));
        // NOT IN with a complete set prunes only when every value is listed.
        assert!(!may_match(&restriction("country NOT IN ('DE', 'FR')"), &meta));
        assert!(may_match(&restriction("country NOT IN ('DE')"), &meta));
        // Opaque predicates and unknown columns never prune.
        assert!(may_match(&restriction("contains(country, 'D')"), &meta));
        assert!(may_match(&restriction("date(timestamp) IN ('2012-01-01')"), &meta));
        assert!(may_match(&restriction("nosuch = 'x'"), &meta));
    }

    #[test]
    fn degenerate_and_or_err_toward_maybe() {
        // `all` over zero children is vacuously true and `any` vacuously
        // false — the latter would have turned an empty OR into a pruning
        // *proof*. Both degenerate forms must read "maybe": no future
        // parser/normalizer change may silently drop rows through them.
        let meta = sample_meta();
        assert!(may_match(&Restriction::And(vec![]), &meta));
        assert!(may_match(&Restriction::Or(vec![]), &meta));
        // Nested inside a live tree they stay harmless.
        assert!(may_match(
            &Restriction::And(vec![restriction("country = 'DE'"), Restriction::Or(vec![])]),
            &meta
        ));
        // ... and never weaken a sibling proof.
        assert!(!may_match(
            &Restriction::And(vec![restriction("country = 'US'"), Restriction::Or(vec![])]),
            &meta
        ));
    }

    #[test]
    fn blooms_refute_equality_on_degraded_columns() {
        // >MAX_DISTINCT distinct strings degrade the set; the Bloom layer
        // still proves absence for equality probes.
        let schema = Schema::of(&[("term", DataType::Str)]);
        let rows: Vec<Row> =
            (0..200).map(|i| Row(vec![Value::from(format!("term-{i}"))])).collect();
        let mut meta = ShardMeta::summarize(0, &schema, &rows);
        assert_eq!(meta.column("term").unwrap().values, None, "set must have degraded");
        // Without blooms: min/max spans the probes, so everything is maybe.
        assert!(may_match(&restriction("term = 'term-0a'"), &meta));
        let cols = transposed(&rows);
        meta.build_blooms(&schema, &as_slices(&cols));
        assert_eq!(meta.blooms.len(), 1);
        // Present values always probe true (no false negatives) ...
        for i in (0..200).step_by(17) {
            assert!(may_match(&restriction(&format!("term = 'term-{i}'")), &meta));
        }
        // ... and a provably-absent value prunes.
        assert!(!may_match(&restriction("term = 'term-0a'"), &meta));
        // Cross-type probes bail to maybe (SQL equality is numeric across
        // Int/Float; the hashes are not).
        let ints: Vec<Row> = (0..200).map(|i| Row(vec![Value::Int(i)])).collect();
        let int_schema = Schema::of(&[("term", DataType::Int)]);
        let mut int_meta = ShardMeta::summarize(0, &int_schema, &ints);
        let int_cols = transposed(&ints);
        int_meta.build_blooms(&int_schema, &as_slices(&int_cols));
        assert!(may_match(&restriction("term = 60.0"), &int_meta), "float probe on int bloom");
        // NOT IN is never refuted by a bloom (needs the complete set).
        assert!(may_match(&restriction("term NOT IN ('term-1')"), &meta));
    }

    /// Two chunks with a value gap between them: rows 0..50 hold 0..49,
    /// rows 50..100 hold 1050..1099.
    fn gapped_meta() -> ShardMeta {
        let schema = Schema::of(&[("v", DataType::Int)]);
        let rows: Vec<Row> =
            (0..100i64).map(|i| Row(vec![Value::Int(if i < 50 { i } else { 1000 + i })])).collect();
        let part =
            Partitioning { row_order: (0..100u32).collect(), chunk_starts: vec![0, 50, 100] };
        let mut meta = ShardMeta::summarize(1, &schema, &rows);
        meta.chunks = 2;
        let cols = transposed(&rows);
        meta.summarize_chunks(&schema, &as_slices(&cols), &part);
        meta
    }

    #[test]
    fn chunk_layer_prunes_inside_the_shard_envelope() {
        let meta = gapped_meta();
        assert_eq!(meta.chunk_metas.len(), 2);
        // The shard zone map spans [0, 1099]: a range in the gap is maybe
        // at shard granularity but provably dead in *every* chunk.
        let gap = restriction("v > 100 AND v < 1000");
        assert!(shard_may_match(&gap, &meta), "shard layer alone cannot refute");
        assert!(
            chunk_verdicts(&gap, &meta).iter().all(|a| *a == ChunkActivity::Skip),
            "both chunks are provably dead"
        );
        assert!(!may_match(&gap, &meta), "zero live chunks prune the shard");
        // A range touching one chunk keeps exactly that chunk live.
        let low = restriction("v < 40");
        let verdicts = chunk_verdicts(&low, &meta);
        assert_ne!(verdicts[0], ChunkActivity::Skip);
        assert_eq!(verdicts[1], ChunkActivity::Skip);
        assert!(may_match(&low, &meta));
        // Fully-covered chunks are recognized as such.
        let all = restriction("v >= 0");
        assert!(chunk_verdicts(&all, &meta).iter().all(|a| *a == ChunkActivity::Full));
    }

    #[test]
    fn virtual_fields_prune_through_partial_evaluation() {
        // §5.1: evaluate `date(timestamp)` over the column's complete
        // value set — the derived set decides restrictions no bare-column
        // zone map could.
        let schema = Schema::of(&[("timestamp", DataType::Int)]);
        let rows: Vec<Row> = (0..90i64)
            .map(|i| Row(vec![Value::Int((i % 3) * 86_400 + 100)])) // 3 distinct days
            .collect();
        let meta = ShardMeta::summarize(0, &schema, &rows);
        assert!(meta.column("timestamp").unwrap().values.is_some());
        assert!(may_match(&restriction("date(timestamp) IN ('1970-01-02')"), &meta));
        assert!(
            !may_match(&restriction("date(timestamp) IN ('1970-01-05')"), &meta),
            "a day outside the derived set prunes"
        );
        // Range restrictions work through the derived extremes too.
        assert!(!may_match(&restriction("date(timestamp) > '1970-01-09'"), &meta));
        assert!(may_match(&restriction("date(timestamp) >= '1970-01-01'"), &meta));
        // Arithmetic expressions derive the same way.
        assert!(!may_match(&restriction("timestamp * 2 > 400000"), &meta));
        // A degraded source set cannot derive: maybe.
        let many: Vec<Row> = (0..100i64).map(|i| Row(vec![Value::Int(i * 86_400)])).collect();
        let degraded = ShardMeta::summarize(0, &schema, &many);
        assert_eq!(degraded.column("timestamp").unwrap().values, None);
        assert!(may_match(&restriction("date(timestamp) IN ('2012-01-01')"), &degraded));
        // Evaluation errors resolve to maybe, never a panic or a prune.
        assert!(may_match(&restriction("nosuchfn(timestamp) IN (1)"), &meta));
        // Multi-column expressions stay opaque.
        let two = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        let ab: Vec<Row> = (0..5i64).map(|i| Row(vec![Value::Int(i), Value::Int(i)])).collect();
        let meta_ab = ShardMeta::summarize(0, &two, &ab);
        assert!(may_match(&restriction("a + b > 100"), &meta_ab));
    }

    #[test]
    fn signed_zero_equality_never_prunes_a_matching_shard() {
        // >MAX_DISTINCT distinct floats, all <= -0.0, so the value set
        // degrades to min/max with max = -0.0. `x = 0` matches the -0.0
        // rows under SQL equality even though Int(0) sits *above* the max
        // in the total order — the shard must not be pruned.
        let schema = Schema::of(&[("x", DataType::Float)]);
        let mut rows: Vec<Row> = (1..=60).map(|i| Row(vec![Value::Float(-(i as f64))])).collect();
        rows.push(Row(vec![Value::Float(-0.0)]));
        let meta = ShardMeta::summarize(0, &schema, &rows);
        assert_eq!(meta.column("x").unwrap().values, None, "set must have degraded");
        assert_eq!(meta.column("x").unwrap().max, Some(Value::Float(-0.0)));
        assert!(may_match(&restriction("x = 0"), &meta));
        // Float-vs-float equality in this engine is total_cmp-based, so
        // the row filter itself rejects `-0.0 = 0.0` — pruning that probe
        // is sound (and correct): only the numeric Int/Float path above
        // crosses the signed-zero boundary.
        assert!(!may_match(&restriction("x = 0.0"), &meta));
        assert!(may_match(&restriction("x = -60"), &meta), "equality with min");
        assert!(!may_match(&restriction("x = 1"), &meta), "still prunes above the range");
        assert!(!may_match(&restriction("x = -61"), &meta), "still prunes below the range");
        // The Bloom layer must respect the same corner: with blooms built,
        // the numeric cross-type probe `x = 0` bails to maybe (Int probe
        // on a Float filter), so the matching shard still survives.
        let mut bloomed = ShardMeta::summarize(0, &schema, &rows);
        let cols = transposed(&rows);
        bloomed.build_blooms(&schema, &as_slices(&cols));
        assert!(may_match(&restriction("x = 0"), &bloomed));
    }

    #[test]
    fn absorb_delta_updates_every_layer() {
        let mut meta = gapped_meta();
        assert_eq!((meta.rows, meta.chunks), (100, 2));
        // A value in the inter-chunk gap arrives as a delta chunk.
        let delta = [Value::Int(500), Value::Int(501), Value::Int(502)];
        meta.absorb_delta(&Schema::of(&[("v", DataType::Int)]), &[&delta], &[2, 1]);
        assert_eq!((meta.rows, meta.chunks), (103, 4));
        assert_eq!(meta.chunk_metas.len(), 4);
        assert_eq!(meta.chunk_metas[2].rows, 2);
        assert_eq!(meta.chunk_metas[3].rows, 1);
        // The gap range now matches via the appended chunks only.
        let gap = restriction("v > 100 AND v < 1000");
        let verdicts = chunk_verdicts(&gap, &meta);
        assert_eq!(verdicts[0], ChunkActivity::Skip);
        assert_eq!(verdicts[1], ChunkActivity::Skip);
        assert_ne!(verdicts[2], ChunkActivity::Skip);
        assert!(may_match(&gap, &meta));
        // Ranges outside everything still prune.
        assert!(!may_match(&restriction("v > 2000"), &meta));
    }

    #[test]
    fn absorb_delta_keeps_blooms_complete_across_the_cap_transition() {
        // 40 distinct strings at load (under MAX_DISTINCT, no bloom); the
        // delta pushes the set past the cap, which must produce an exact
        // fresh filter covering pre-append *and* delta values.
        let schema = Schema::of(&[("term", DataType::Str)]);
        let rows: Vec<Row> = (0..40).map(|i| Row(vec![Value::from(format!("pre-{i}"))])).collect();
        let mut meta = ShardMeta::summarize(0, &schema, &rows);
        let cols = transposed(&rows);
        meta.build_blooms(&schema, &as_slices(&cols));
        assert!(meta.blooms.is_empty(), "exact set needs no bloom");

        let delta: Vec<Value> = (0..20).map(|i| Value::from(format!("new-{i}"))).collect();
        meta.absorb_delta(&schema, &[&delta], &[20]);
        assert_eq!(meta.column("term").unwrap().values, None, "set must have degraded");
        assert_eq!(meta.blooms.len(), 1, "transition must build the filter");
        // No false negatives for either generation of values...
        for i in 0..40 {
            assert!(may_match(&restriction(&format!("term = 'pre-{i}'")), &meta));
        }
        for i in 0..20 {
            assert!(may_match(&restriction(&format!("term = 'new-{i}'")), &meta));
        }
        // ...while provably-absent values still prune through the filter.
        assert!(!may_match(&restriction("term = 'pre-0a'"), &meta));

        // A column already degraded at load keeps its filter and gains the
        // delta's values.
        let many: Vec<Row> =
            (0..200).map(|i| Row(vec![Value::from(format!("term-{i}"))])).collect();
        let mut degraded = ShardMeta::summarize(0, &schema, &many);
        let many_cols = transposed(&many);
        degraded.build_blooms(&schema, &as_slices(&many_cols));
        let late = [Value::from("late-arrival")];
        assert!(!may_match(&restriction("term = 'late-arrival'"), &degraded));
        degraded.absorb_delta(&schema, &[&late], &[1]);
        assert!(may_match(&restriction("term = 'late-arrival'"), &degraded));
        assert!(!may_match(&restriction("term = 'still-absent'"), &degraded));
    }

    #[test]
    fn empty_shards_always_prune() {
        let schema = Schema::of(&[("k", DataType::Str)]);
        let meta = ShardMeta::summarize(0, &schema, &[]);
        assert!(!may_match(&Restriction::True, &meta));
        assert!(!may_match(&restriction("k = 'a'"), &meta));
    }

    #[test]
    fn metas_round_trip_on_the_wire() {
        let mut meta = sample_meta();
        meta.chunks = 4;
        let schema = Schema::of(&[
            ("country", DataType::Str),
            ("latency", DataType::Int),
            ("x", DataType::Float),
        ]);
        let rows: Vec<Row> = (0..100i64)
            .map(|i| {
                Row(vec![
                    Value::from(["DE", "FR"][(i % 2) as usize]),
                    Value::Int(100 + i),
                    Value::Float(i as f64 * 0.5),
                ])
            })
            .collect();
        let part = Partitioning {
            row_order: (0..100u32).collect(),
            chunk_starts: vec![0, 25, 50, 75, 100],
        };
        let cols = transposed(&rows);
        meta.summarize_chunks(&schema, &as_slices(&cols), &part);
        meta.build_blooms(&schema, &as_slices(&cols));
        assert_eq!(meta.chunk_metas.len(), 4);
        assert!(!meta.blooms.is_empty(), "latency degraded, so it carries a bloom");
        let back: ShardMeta = from_bytes(&to_bytes(&meta)).unwrap();
        assert_eq!(back, meta);
        // Truncations error, never panic.
        let bytes = to_bytes(&meta);
        for cut in (0..bytes.len()).step_by(7) {
            assert!(from_bytes::<ShardMeta>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
