//! Driver-side management of the process-split computation tree.
//!
//! [`ProcessTree::build`] turns a sharded table into the paper's §4
//! topology, for real: one `pd-dist-worker` OS process per shard replica
//! (two per shard under replication — the "send the query to both machines
//! holding a partition" pair), plus one process per intermediate merge
//! server whenever the shard count exceeds the [`crate::TreeShape`]
//! fanout. The driver itself is the root: it queries the frontier (the
//! top-most tree level), folds the answers with the same associative
//! merge every other level uses, and finalizes.
//!
//! Workers are spawned against Unix sockets in a private temp directory
//! and torn down on [`Drop`]: a best-effort `Shutdown` request first, then
//! `SIGKILL` — a wedged worker (the very failure mode the deadline path
//! exists for) must not outlive its cluster.

use crate::rpc::{
    fan_out, AttachRequest, ChildHandle, ChildSpec, LoadRequest, QueryRequest, Request, Response,
    RpcClient, SubtreeAnswer, LOAD_TIMEOUT, STARTUP_TIMEOUT,
};
use pd_common::{Error, Result};
use pd_core::BuildOptions;
use pd_data::Table;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Everything the tree builder needs beyond the shard tables.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    pub worker_bin: PathBuf,
    /// Per-hop deadline for leaf subqueries.
    pub deadline: Duration,
    /// Spawn a replica process per shard and fail primaries over to it.
    pub replication: bool,
    /// Children per merge server (the [`crate::TreeShape`] fanout).
    pub fanout: usize,
    /// Worker threads per leaf's chunk scan (0 = auto).
    pub threads: usize,
    /// Uncompressed-cache byte budget per shard.
    pub cache_budget_per_shard: usize,
}

/// Locate the worker binary: an explicit path, the `PD_DIST_WORKER_BIN`
/// environment variable, or `pd-dist-worker` next to the current
/// executable (where cargo puts workspace binaries relative to test
/// executables in `target/<profile>/deps/`).
pub fn resolve_worker_bin(explicit: Option<&Path>) -> Result<PathBuf> {
    if let Some(path) = explicit {
        return Ok(path.to_path_buf());
    }
    if let Ok(path) = std::env::var("PD_DIST_WORKER_BIN") {
        return Ok(PathBuf::from(path));
    }
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors().skip(1).take(3) {
            let candidate = dir.join("pd-dist-worker");
            if candidate.is_file() {
                return Ok(candidate);
            }
        }
    }
    Err(Error::Data(
        "rpc transport: cannot locate the pd-dist-worker binary \
         (set RpcConfig::worker_bin or PD_DIST_WORKER_BIN, or build the \
         `pd-dist-worker` bin target)"
            .into(),
    ))
}

/// A live computation tree of worker processes.
pub struct ProcessTree {
    dir: PathBuf,
    processes: Vec<Child>,
    /// All sockets ever handed out, for shutdown.
    sockets: Vec<PathBuf>,
    /// The top tree level, queried (and failed over) by the driver root.
    frontier: Vec<ChildHandle>,
    /// Per shard: the primary's socket, for control messages (delay
    /// injection) that must reach a specific process.
    leaf_primaries: Vec<PathBuf>,
    deadline: Duration,
}

static TREE_SEQ: AtomicU64 = AtomicU64::new(0);

impl ProcessTree {
    /// Spawn and wire the whole tree: load one worker (pair) per shard
    /// (sub-tables come from `shard_table` one at a time and are dropped
    /// after shipping), then stack merge servers until one level fits the
    /// fanout.
    pub fn build(
        shard_count: usize,
        shard_table: impl Fn(usize) -> Result<Table>,
        build: &BuildOptions,
        config: &TreeConfig,
    ) -> Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "pd-tree-{}-{}",
            std::process::id(),
            TREE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let mut tree = ProcessTree {
            dir,
            processes: Vec::new(),
            sockets: Vec::new(),
            frontier: Vec::new(),
            leaf_primaries: Vec::new(),
            deadline: config.deadline,
        };
        tree.populate(shard_count, shard_table, build, config)?;
        Ok(tree)
    }

    fn populate(
        &mut self,
        shard_count: usize,
        shard_table: impl Fn(usize) -> Result<Table>,
        build: &BuildOptions,
        config: &TreeConfig,
    ) -> Result<()> {
        // Leaves: one loaded worker per shard replica.
        let mut level: Vec<ChildSpec> = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let table = shard_table(shard)?;
            let load = Request::Load(Box::new(LoadRequest {
                shard: shard as u64,
                schema: table.schema().clone(),
                rows: table.iter_rows().collect(),
                build: build.clone(),
                threads: config.threads as u64,
                cache_budget: config.cache_budget_per_shard as u64,
            }));
            drop(table);
            let primary = self.spawn_worker(config, &format!("l{shard}p.sock"), &load)?;
            self.leaf_primaries.push(primary.clone());
            let replica = if config.replication {
                Some(self.spawn_worker(config, &format!("l{shard}r.sock"), &load)?)
            } else {
                None
            };
            level.push(ChildSpec::Leaf {
                shard: shard as u64,
                primary: path_str(&primary)?,
                replica: replica.as_deref().map(path_str).transpose()?,
            });
        }

        // Merge levels: while one server cannot own the whole level, group
        // it into subtrees of `fanout` children each.
        let fanout = config.fanout.max(2);
        let mut height = 1u64;
        while level.len() > fanout {
            let mut next = Vec::with_capacity(level.len().div_ceil(fanout));
            for (i, group) in level.chunks(fanout).enumerate() {
                let attach = Request::Attach(AttachRequest { children: group.to_vec() });
                let socket = self.spawn_worker(config, &format!("m{height}_{i}.sock"), &attach)?;
                next.push(ChildSpec::Node { addr: path_str(&socket)?, height });
            }
            level = next;
            height += 1;
        }
        self.frontier = level.into_iter().map(ChildHandle::new).collect();
        Ok(())
    }

    /// Spawn one worker on `name`, wait for it to answer `Ping`, then send
    /// its role-assignment request (`Load` / `Attach`).
    fn spawn_worker(&mut self, config: &TreeConfig, name: &str, role: &Request) -> Result<PathBuf> {
        let socket = self.dir.join(name);
        let child = Command::new(&config.worker_bin)
            .arg("--socket")
            .arg(&socket)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| Error::Data(format!("spawn {}: {e}", config.worker_bin.display())))?;
        self.processes.push(child);
        self.sockets.push(socket.clone());
        let mut client = RpcClient::new(&socket);
        client.connect_with_retry(STARTUP_TIMEOUT)?;
        expect_ack(client.call(&Request::Ping, STARTUP_TIMEOUT)?, "ping")?;
        expect_ack(client.call(role, LOAD_TIMEOUT)?, "role assignment")?;
        Ok(socket)
    }

    pub fn shard_count(&self) -> usize {
        self.leaf_primaries.len()
    }

    /// Run one query through the tree: fan out to the frontier, fold in
    /// frontier order. `killed` carries this query's [`crate::FailureModel`]
    /// primary kills down to whichever level parents each leaf.
    pub fn query(&self, sql: &str, killed: Vec<u64>) -> Result<SubtreeAnswer> {
        let request = QueryRequest { sql: sql.to_owned(), deadline: self.deadline, killed };
        fan_out(&self.frontier, &request)
    }

    /// Test knob: make shard `shard`'s primary worker sleep before every
    /// answer — the controlled way to drive a deadline expiry.
    pub fn delay_primary(&self, shard: usize, delay: Duration) -> Result<()> {
        let socket = self.leaf_primaries.get(shard).ok_or_else(|| {
            Error::Data(format!("no such shard {shard} (have {})", self.leaf_primaries.len()))
        })?;
        let mut client = RpcClient::new(socket);
        expect_ack(
            client.call(&Request::Delay { micros: delay.as_micros() as u64 }, STARTUP_TIMEOUT)?,
            "delay",
        )
    }
}

impl Drop for ProcessTree {
    fn drop(&mut self) {
        // Polite first: a Shutdown request lets workers exit cleanly.
        for socket in &self.sockets {
            let mut client = RpcClient::new(socket);
            let _ = client.call(&Request::Shutdown, Duration::from_millis(200));
        }
        // Then force: a wedged worker must not leak past its cluster.
        for process in &mut self.processes {
            let _ = process.kill();
            let _ = process.wait();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn path_str(path: &Path) -> Result<String> {
    path.to_str()
        .map(str::to_owned)
        .ok_or_else(|| Error::Data(format!("non-utf8 socket path {}", path.display())))
}

fn expect_ack(response: Response, what: &str) -> Result<()> {
    match response {
        Response::Ok => Ok(()),
        Response::Err(message) => Err(Error::Data(format!("worker {what} failed: {message}"))),
        Response::Malformed(message) => {
            Err(Error::Data(format!("worker rejected the {what} frame: {message}")))
        }
        Response::Answer(_) => {
            Err(Error::Data(format!("worker sent an answer to a {what} request")))
        }
    }
}
