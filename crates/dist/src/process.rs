//! Driver-side management of the process-split computation tree.
//!
//! [`ProcessTree::build`] turns a sharded table into the paper's §4
//! topology, for real: one `pd-dist-worker` OS process per shard replica
//! (two per shard under replication — the "send the query to both machines
//! holding a partition" pair), plus one process per intermediate merge
//! server whenever the shard count exceeds the [`crate::TreeShape`]
//! fanout. The driver itself is the root: it queries the frontier (the
//! top-most tree level), folds the answers with the same associative
//! merge every other level uses, and finalizes.
//!
//! Workers listen on Unix sockets in a private temp directory
//! ([`WorkerAddr::Unix`]) or on ephemeral TCP ports ([`WorkerAddr::Tcp`],
//! the multi-host shape exercised over loopback here); TCP workers
//! announce their kernel-assigned port through a file the spawner polls.
//! Every spawned process sits in a [`ReapGuard`], so a panic anywhere
//! mid-build or mid-test kills and reaps the child on unwind — a wedged
//! worker (the very failure mode the deadline path exists for) must not
//! outlive its cluster, and a red test must not poison later suites with
//! orphan processes.

use crate::chaos::ChaosDirective;
use crate::meta::ShardMeta;
use crate::rpc::{
    backoff_sleep, encode_frame, fan_out, Addr, AppendRequest, AttachRequest, ChildHandle,
    ChildSpec, LoadRequest, QueryRequest, Request, Response, RpcClient, SubtreeAnswer, BACKOFF_CAP,
    LOAD_TIMEOUT, STARTUP_TIMEOUT,
};
use pd_common::rng::Rng;
use pd_common::{fx_hash64, Error, Result};
use pd_core::BuildOptions;
use pd_data::Table;
use pd_encoding::TableDelta;
use pd_sql::AnalyzedQuery;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Which socket shape spawned workers listen on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum WorkerAddr {
    /// Unix sockets in a private temp directory — the single-box default.
    #[default]
    Unix,
    /// TCP on the given interface (e.g. `127.0.0.1`), one ephemeral port
    /// per worker. Loopback today; the same wiring reaches real hosts once
    /// a remote spawner exists (the protocol is already host-agnostic —
    /// addresses travel as `tcp:host:port` strings).
    Tcp { host: String },
}

impl WorkerAddr {
    /// The conventional loopback TCP shape.
    pub fn loopback() -> WorkerAddr {
        WorkerAddr::Tcp { host: "127.0.0.1".into() }
    }
}

/// Kills and reaps a spawned worker on drop. Every child process the tree
/// spawns lives inside one of these from the instant `spawn` returns, so
/// unwinding (a failed build, a panicking test, an `assert!` mid-query)
/// reaps the process instead of leaking it to poison later suites.
pub struct ReapGuard {
    child: Option<Child>,
    /// Filesystem residue (unix socket paths, announce files) removed
    /// after the child is reaped, so a rerun in the same directory can
    /// never adopt a dead worker's stale address.
    cleanup: Vec<PathBuf>,
}

impl ReapGuard {
    pub fn new(child: Child) -> ReapGuard {
        ReapGuard { child: Some(child), cleanup: Vec::new() }
    }

    /// Register a path to delete once the child is reaped.
    pub fn remove_on_exit(&mut self, path: PathBuf) {
        self.cleanup.push(path);
    }

    /// Disarm the guard and hand the child back (the caller now owns
    /// reaping it — and the registered paths stay put).
    pub fn disarm(mut self) -> Child {
        self.cleanup.clear();
        self.child.take().expect("armed guard")
    }

    /// Has the child already exited? Non-blocking; `None` while running.
    pub fn try_wait(&mut self) -> Option<std::process::ExitStatus> {
        self.child.as_mut().and_then(|c| c.try_wait().ok().flatten())
    }
}

impl Drop for ReapGuard {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        // Only after the kill: removing a live worker's socket path would
        // strand it listening on an unlinked inode.
        for path in self.cleanup.drain(..) {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Everything the tree builder needs beyond the shard tables.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    pub worker_bin: PathBuf,
    /// Time budget for one whole query through the tree: decremented by
    /// every node's queueing delay on the way down, enforced absolutely
    /// by every caller on the way up.
    pub budget: Duration,
    /// Spawn a replica process per shard and fail primaries over to it.
    pub replication: bool,
    /// Children per merge server (the [`crate::TreeShape`] fanout).
    pub fanout: usize,
    /// Worker threads per leaf's chunk scan (0 = auto).
    pub threads: usize,
    /// Uncompressed-cache byte budget per shard.
    pub cache_budget_per_shard: usize,
    /// Capacity (signatures) of every tree node's own result cache —
    /// leaves and merge servers alike; 0 disables worker-side caching.
    pub cache_entries: usize,
    /// Rebuild epoch the tree is built at; shipped in every `Load` and
    /// `Attach` so the workers' cache-invalidation contract starts
    /// aligned with the driver.
    pub epoch: u64,
    /// Socket shape workers listen on.
    pub addr: WorkerAddr,
    /// Compress RPC frames (negotiated per connection, applied down the
    /// whole tree).
    pub compress: bool,
    /// Use the chunk-granular metadata layers (per-chunk zone maps) for
    /// edge pruning and leaf scan seeding; off, pruning is shard-granular
    /// only. Results are identical either way.
    pub chunk_pruning: bool,
}

/// Locate the worker binary: an explicit path, the `PD_DIST_WORKER_BIN`
/// environment variable, or `pd-dist-worker` next to the current
/// executable (where cargo puts workspace binaries relative to test
/// executables in `target/<profile>/deps/`).
pub fn resolve_worker_bin(explicit: Option<&Path>) -> Result<PathBuf> {
    if let Some(path) = explicit {
        return Ok(path.to_path_buf());
    }
    if let Ok(path) = std::env::var("PD_DIST_WORKER_BIN") {
        return Ok(PathBuf::from(path));
    }
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors().skip(1).take(3) {
            let candidate = dir.join("pd-dist-worker");
            if candidate.is_file() {
                return Ok(candidate);
            }
        }
    }
    Err(Error::Data(
        "rpc transport: cannot locate the pd-dist-worker binary \
         (set RpcConfig::worker_bin or PD_DIST_WORKER_BIN, or build the \
         `pd-dist-worker` bin target)"
            .into(),
    ))
}

/// A live computation tree of worker processes.
pub struct ProcessTree {
    dir: PathBuf,
    processes: Vec<ReapGuard>,
    /// All worker addresses ever handed out, for shutdown.
    addrs: Vec<Addr>,
    /// The top tree level, queried (and failed over) by the driver root.
    frontier: Vec<ChildHandle>,
    /// Per shard: the primary's address, for control messages (delay
    /// injection) that must reach a specific process.
    leaf_primaries: Vec<Addr>,
    /// Every tree node's name (`l0p`, `l0r`, `m1_0`, ...), in spawn
    /// order — the name space chaos directives target.
    names: Vec<String>,
    /// The leaf level's child specs (shard, addresses, current metadata),
    /// retained so an in-place [`ProcessTree::append`] can refresh the
    /// per-shard metas and re-wire the merge levels without a respawn.
    leaf_specs: Vec<ChildSpec>,
    /// Merge servers per level (bottom-up): address + tree name. Appends
    /// re-`Attach` each one so its pruning metas and epoch track the data.
    merge_levels: Vec<Vec<(Addr, String)>>,
    /// Cumulative serialized bytes of data-bearing requests (`Load` and
    /// `Append` frames) shipped to workers — the cost an incremental
    /// append is measured against a full respawn by.
    bytes_shipped: u64,
    fanout: usize,
    cache_entries: usize,
    budget: Duration,
    compress: bool,
    chunk_pruning: bool,
}

static TREE_SEQ: AtomicU64 = AtomicU64::new(0);

impl ProcessTree {
    /// Spawn and wire the whole tree: load one worker (pair) per shard
    /// (sub-tables come from `shard_table` one at a time and are dropped
    /// after shipping), then stack merge servers until one level fits the
    /// fanout.
    pub fn build(
        shard_count: usize,
        shard_table: impl Fn(usize) -> Result<Table>,
        build: &BuildOptions,
        config: &TreeConfig,
    ) -> Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "pd-tree-{}-{}",
            std::process::id(),
            TREE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let mut tree = ProcessTree {
            dir,
            processes: Vec::new(),
            addrs: Vec::new(),
            frontier: Vec::new(),
            leaf_primaries: Vec::new(),
            names: Vec::new(),
            leaf_specs: Vec::new(),
            merge_levels: Vec::new(),
            bytes_shipped: 0,
            fanout: config.fanout.max(2),
            cache_entries: config.cache_entries,
            budget: config.budget,
            compress: config.compress,
            chunk_pruning: config.chunk_pruning,
        };
        tree.populate(shard_count, shard_table, build, config)?;
        Ok(tree)
    }

    fn populate(
        &mut self,
        shard_count: usize,
        shard_table: impl Fn(usize) -> Result<Table>,
        build: &BuildOptions,
        config: &TreeConfig,
    ) -> Result<()> {
        // Leaves: one loaded worker per shard replica. The primary's Load
        // ack carries the shard's metadata summary, which every parent up
        // the tree uses to prune non-matching subtrees.
        let mut level: Vec<ChildSpec> = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let table = shard_table(shard)?;
            let mut load = Request::Load(Box::new(LoadRequest {
                shard: shard as u64,
                schema: table.schema().clone(),
                rows: table.iter_rows().collect(),
                build: build.clone(),
                threads: config.threads as u64,
                cache_budget: config.cache_budget_per_shard as u64,
                cache_entries: config.cache_entries as u64,
                epoch: config.epoch,
                name: format!("l{shard}p"),
            }));
            drop(table);
            let (primary, meta) = self.spawn_worker(config, &format!("l{shard}p"), &load)?;
            let meta = meta
                .ok_or_else(|| Error::Data(format!("shard {shard}: load ack carried no meta")))?;
            self.leaf_primaries.push(primary.clone());
            let replica = if config.replication {
                // Same shard bytes, its own name — retagged in place so
                // the shipped rows are not cloned per replica.
                if let Request::Load(l) = &mut load {
                    l.name = format!("l{shard}r");
                }
                Some(self.spawn_worker(config, &format!("l{shard}r"), &load)?.0)
            } else {
                None
            };
            level.push(ChildSpec::Leaf { shard: shard as u64, primary, replica, meta });
        }
        self.leaf_specs = level.clone();

        // Merge levels: while one server cannot own the whole level, group
        // it into subtrees of `fanout` children each. Each node's spec
        // accumulates the shard summaries beneath it, so pruning works at
        // any depth.
        let fanout = self.fanout;
        let mut height = 1u64;
        while level.len() > fanout {
            let mut next = Vec::with_capacity(level.len().div_ceil(fanout));
            let mut servers = Vec::with_capacity(next.capacity());
            for (i, group) in level.chunks(fanout).enumerate() {
                let metas: Vec<ShardMeta> =
                    group.iter().flat_map(|c| c.metas().iter().cloned()).collect();
                let name = format!("m{height}_{i}");
                let attach = Request::Attach(AttachRequest {
                    children: group.to_vec(),
                    compress: config.compress,
                    cache_entries: config.cache_entries as u64,
                    epoch: config.epoch,
                    name: name.clone(),
                });
                let (addr, _) = self.spawn_worker(config, &name, &attach)?;
                servers.push((addr.clone(), name));
                next.push(ChildSpec::Node { addr, height, metas });
            }
            self.merge_levels.push(servers);
            level = next;
            height += 1;
        }
        self.frontier =
            level.into_iter().map(|spec| ChildHandle::new(spec, config.compress)).collect();
        Ok(())
    }

    /// Spawn one worker named `name`, wait for it to answer `Ping`, then
    /// send its role-assignment request (`Load` / `Attach`). Returns the
    /// worker's address and, for a `Load`, the shard metadata it reported.
    fn spawn_worker(
        &mut self,
        config: &TreeConfig,
        name: &str,
        role: &Request,
    ) -> Result<(Addr, Option<ShardMeta>)> {
        // Decide the address story once: a unix worker listens where the
        // driver says; a tcp worker binds port 0 and reports back through
        // its announce file.
        enum Spawned {
            At(Addr),
            Announced(PathBuf),
        }
        let mut command = Command::new(&config.worker_bin);
        let spawned = match &config.addr {
            WorkerAddr::Unix => {
                let path = self.dir.join(format!("{name}.sock"));
                // A stale socket path from a dead worker would make the
                // fresh bind fail (or worse, a poller adopt a corpse's
                // address) — clear it before spawning.
                let _ = std::fs::remove_file(&path);
                let addr = Addr::Unix(path);
                command.arg("--listen").arg(addr.to_string());
                Spawned::At(addr)
            }
            WorkerAddr::Tcp { host } => {
                let announce = self.dir.join(format!("{name}.addr"));
                // Same staleness rule: an old announce file would hand
                // the poller a dead worker's port.
                let _ = std::fs::remove_file(&announce);
                command
                    .arg("--listen")
                    .arg(format!("tcp:{host}:0"))
                    .arg("--announce")
                    .arg(&announce);
                Spawned::Announced(announce)
            }
        };
        let child = command
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| Error::Data(format!("spawn {}: {e}", config.worker_bin.display())))?;
        let mut guard = ReapGuard::new(child);
        let addr = match &spawned {
            Spawned::At(addr) => {
                if let Addr::Unix(path) = addr {
                    guard.remove_on_exit(path.clone());
                }
                addr.clone()
            }
            Spawned::Announced(announce) => {
                guard.remove_on_exit(announce.clone());
                wait_for_announce(announce, &mut guard)?
            }
        };
        self.names.push(name.to_string());
        self.processes.push(guard);
        self.addrs.push(addr.clone());
        let mut client = RpcClient::new(addr.clone(), config.compress);
        client.connect_with_retry(STARTUP_TIMEOUT)?;
        expect_ack(client.call(&Request::Ping, STARTUP_TIMEOUT)?, "ping").map(|_| ())?;
        let meta = expect_ack(client.call(role, LOAD_TIMEOUT)?, "role assignment")?;
        if matches!(role, Request::Load(_)) {
            // Data-bearing shipping cost: what an append path is compared
            // against. (Attach frames are wiring, not data.)
            self.bytes_shipped += encode_frame(role, config.compress)?.len() as u64;
        }
        Ok((addr, meta))
    }

    pub fn shard_count(&self) -> usize {
        self.leaf_primaries.len()
    }

    /// Cumulative serialized bytes of data-bearing requests (`Load` +
    /// `Append`) shipped into the tree since it was built.
    pub fn shipped_bytes(&self) -> u64 {
        self.bytes_shipped
    }

    /// Stream new rows into the live tree — the in-place alternative to a
    /// full respawn. `deltas[shard]` is the dictionary-delta table for
    /// that shard (`None` = shard unchanged: nothing is shipped; the epoch
    /// rule makes the leaf drop its caches at its next query). Each delta
    /// goes to the shard's primary *and* replica (both must serve the new
    /// rows or failover would travel back in time), the primary's ack
    /// refreshes the shard's metadata, and every merge server is then
    /// re-`Attach`ed bottom-up so parent-side pruning and the epoch track
    /// the appended data. Returns the serialized request bytes shipped.
    pub fn append(&mut self, deltas: &[Option<TableDelta>], epoch: u64) -> Result<u64> {
        if deltas.len() != self.leaf_specs.len() {
            return Err(Error::Data(format!(
                "append carries {} shard deltas for {} shards",
                deltas.len(),
                self.leaf_specs.len()
            )));
        }
        let mut shipped = 0u64;
        for (shard, delta) in deltas.iter().enumerate() {
            let Some(delta) = delta else { continue };
            let request = Request::Append(Box::new(AppendRequest {
                shard: shard as u64,
                delta: delta.clone(),
                epoch,
            }));
            let frame_len = encode_frame(&request, self.compress)?.len() as u64;
            let ChildSpec::Leaf { primary, replica, meta, .. } = &mut self.leaf_specs[shard] else {
                return Err(Error::Data("append: leaf level holds a non-leaf spec".into()));
            };
            let mut client = RpcClient::new(primary.clone(), self.compress);
            client.connect_with_retry(STARTUP_TIMEOUT)?;
            let refreshed = expect_ack(client.call(&request, LOAD_TIMEOUT)?, "append")?
                .ok_or_else(|| Error::Data(format!("shard {shard}: append ack carried no meta")))?;
            shipped += frame_len;
            if let Some(replica) = replica {
                let mut client = RpcClient::new(replica.clone(), self.compress);
                client.connect_with_retry(STARTUP_TIMEOUT)?;
                expect_ack(client.call(&request, LOAD_TIMEOUT)?, "append")?;
                shipped += frame_len;
            }
            *meta = refreshed;
        }
        self.reattach(epoch)?;
        self.bytes_shipped += shipped;
        Ok(shipped)
    }

    /// Re-wire the merge levels bottom-up from the current leaf specs:
    /// every merge server gets a fresh `Attach` (same children grouping,
    /// same tree name, refreshed metas, new epoch — a total role reset,
    /// so its cache is dropped with the wiring), and the driver's
    /// frontier handles are rebuilt from the top level.
    fn reattach(&mut self, epoch: u64) -> Result<()> {
        let mut level = self.leaf_specs.clone();
        for (li, servers) in self.merge_levels.iter().enumerate() {
            let height = (li + 1) as u64;
            let mut next = Vec::with_capacity(servers.len());
            for ((addr, name), group) in servers.iter().zip(level.chunks(self.fanout)) {
                let metas: Vec<ShardMeta> =
                    group.iter().flat_map(|c| c.metas().iter().cloned()).collect();
                let attach = Request::Attach(AttachRequest {
                    children: group.to_vec(),
                    compress: self.compress,
                    cache_entries: self.cache_entries as u64,
                    epoch,
                    name: name.clone(),
                });
                let mut client = RpcClient::new(addr.clone(), self.compress);
                client.connect_with_retry(STARTUP_TIMEOUT)?;
                expect_ack(client.call(&attach, LOAD_TIMEOUT)?, "re-attach").map(|_| ())?;
                next.push(ChildSpec::Node { addr: addr.clone(), height, metas });
            }
            level = next;
        }
        self.frontier =
            level.into_iter().map(|spec| ChildHandle::new(spec, self.compress)).collect();
        Ok(())
    }

    /// Every tree node's name, in spawn order — the targets a
    /// [`crate::ChaosModel`] draws faults over.
    pub fn node_names(&self) -> &[String] {
        &self.names
    }

    /// Run one query through the tree: fan out to the frontier, fold in
    /// frontier order. `killed` carries this query's [`crate::FailureModel`]
    /// primary kills down to whichever level parents each leaf; `epoch` is
    /// the driver's current rebuild epoch, which every node checks against
    /// its result cache before answering; `hedge_micros` is the hedge
    /// delay for leaf replica races (0 = sequential failover); `chaos`
    /// carries this query's injected faults down the whole tree.
    pub fn query(
        &self,
        analyzed: &AnalyzedQuery,
        killed: Vec<u64>,
        epoch: u64,
        hedge_micros: u64,
        chaos: Vec<ChaosDirective>,
    ) -> Result<SubtreeAnswer> {
        let request = QueryRequest {
            query: analyzed.clone(),
            budget: self.budget,
            hedge_micros,
            killed,
            epoch,
            chaos,
            chunk_pruning: self.chunk_pruning,
        };
        fan_out(&self.frontier, &request)
    }

    /// Test knob: make shard `shard`'s primary worker sleep before every
    /// answer — the controlled way to drive a deadline expiry.
    pub fn delay_primary(&self, shard: usize, delay: Duration) -> Result<()> {
        let addr = self.leaf_primaries.get(shard).ok_or_else(|| {
            Error::Data(format!("no such shard {shard} (have {})", self.leaf_primaries.len()))
        })?;
        let mut client = RpcClient::new(addr.clone(), self.compress);
        expect_ack(
            client.call(&Request::Delay { micros: delay.as_micros() as u64 }, STARTUP_TIMEOUT)?,
            "delay",
        )
        .map(|_| ())
    }
}

impl Drop for ProcessTree {
    fn drop(&mut self) {
        // Polite first: a Shutdown request lets workers exit cleanly.
        for addr in &self.addrs {
            let mut client = RpcClient::new(addr.clone(), false);
            let _ = client.call(&Request::Shutdown, Duration::from_millis(200));
        }
        // Then force: dropping the guards kills and reaps whatever is
        // left — a wedged worker must not leak past its cluster.
        self.processes.clear();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Poll for a TCP worker's announce file (written atomically after bind).
/// A worker that dies before announcing (bad host, port in use) fails the
/// build immediately with its exit status instead of running out the full
/// startup timeout once per worker.
fn wait_for_announce(path: &Path, worker: &mut ReapGuard) -> Result<Addr> {
    let deadline = Instant::now() + STARTUP_TIMEOUT;
    // Jittered exponential backoff instead of a fixed busy-poll: dozens of
    // workers spawning at once must not all hammer the filesystem on the
    // same 2ms beat, and an overall deadline still bounds the wait.
    let mut backoff = Duration::from_millis(1);
    let mut jitter = Rng::seed_from_u64(fx_hash64(path.to_string_lossy().as_ref()));
    loop {
        match std::fs::read_to_string(path) {
            Ok(contents) if !contents.trim().is_empty() => {
                return Addr::parse(contents.trim());
            }
            _ => {
                if let Some(status) = worker.try_wait() {
                    return Err(Error::Data(format!(
                        "rpc: worker exited ({status}) before announcing its address \
                         (bad --listen host or port?)"
                    )));
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(Error::Data(format!(
                        "rpc: worker never announced its address at {}",
                        path.display()
                    )));
                }
                backoff_sleep(&mut backoff, BACKOFF_CAP, left, &mut jitter);
            }
        }
    }
}

fn expect_ack(response: Response, what: &str) -> Result<Option<ShardMeta>> {
    match response {
        Response::Ok => Ok(None),
        Response::Loaded(meta) => Ok(Some(*meta)),
        Response::Err(message) => Err(Error::Data(format!("worker {what} failed: {message}"))),
        Response::Fault(fault) => Err(Error::Rpc(fault)),
        Response::Malformed(message) => {
            Err(Error::Data(format!("worker rejected the {what} frame: {message}")))
        }
        Response::Answer(_) => {
            Err(Error::Data(format!("worker sent an answer to a {what} request")))
        }
    }
}
